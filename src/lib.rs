//! Workspace-level integration test and example support for the MariusGNN reproduction.
