//! `marius` — the public facade of the MariusGNN reproduction.
//!
//! This crate re-exports the whole workspace and wraps the task-generic
//! training engine of [`marius_core`] behind one entry point: the [`Session`]
//! builder. A session owns a dataset, a model configuration, a storage
//! selection (in-memory or out-of-core) and an optional pipelined runtime,
//! and runs training/evaluation with eval-cadence and checkpoint hooks:
//!
//! ```no_run
//! use marius::{ModelConfig, Session, Storage, TrainConfig};
//! use marius::graph::datasets::{DatasetSpec, ScaledDataset};
//!
//! let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.05), 42);
//! let mut session = Session::builder()
//!     .dataset(data)
//!     .model(ModelConfig::paper_link_prediction_graphsage(32))
//!     .train(TrainConfig::quick(5, 42))
//!     .storage(Storage::Disk(marius::DiskConfig::comet(16, 4)))
//!     .pipeline(marius::PipelineConfig::with_workers(2))
//!     .build()
//!     .expect("valid session");
//! let report = session.train().expect("training succeeds");
//! println!("{}", report.to_table());
//! ```
//!
//! Tasks are selected with [`SessionBuilder::task`]; link prediction is the
//! default and [`NodeClassificationTask`] is the other built-in workload. Any
//! type implementing [`Task`] plugs into the same machinery.
//!
//! # Workspace map
//!
//! * [`tensor`] / [`gnn`] — dense kernels, layers, decoders, optimizers.
//! * [`graph`] — edge lists, CSR subgraphs, partitioning, synthetic datasets.
//! * [`sampling`] — DENSE multi-hop sampling and negative sampling.
//! * [`storage`] — the partition store/buffer and replacement policies
//!   (COMET, BETA, training-node caching).
//! * [`pipeline`] — the staged runtime overlapping disk IO, batch
//!   construction and compute.
//! * [`core`] — models, the [`Task`] trait and the generic
//!   [`Trainer`]`<T>` this facade wraps.
//! * [`baselines`] — DGL/PyG-style cost models used by the benchmark
//!   harnesses.

pub use marius_baselines as baselines;
pub use marius_core as core;
pub use marius_gnn as gnn;
pub use marius_graph as graph;
pub use marius_pipeline as pipeline;
pub use marius_sampling as sampling;
pub use marius_storage as storage;
pub use marius_tensor as tensor;

pub use marius_core::{
    DiskConfig, EncoderKind, EpochHook, EpochReport, ExperimentReport, LinkPredictionTask,
    ModelConfig, NodeClassificationTask, PipelineConfig, PolicyKind, Task, TrainConfig, Trainer,
};
#[allow(deprecated)]
pub use marius_core::{LinkPredictionTrainer, NodeClassificationTrainer};
pub use marius_storage::{IoCostModel, Result, StorageError};

use marius_graph::datasets::ScaledDataset;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Where base representations live during training.
#[derive(Debug, Clone)]
pub enum Storage {
    /// The full graph and all representations stay in memory (M-GNN_Mem).
    InMemory,
    /// Out-of-core training over a partitioned on-disk layout (M-GNN_Disk),
    /// driven by the disk configuration's replacement policy.
    Disk(DiskConfig),
}

/// Builder for [`Session`]. Obtain one with [`Session::builder`].
pub struct SessionBuilder<T: Task = LinkPredictionTask> {
    task: T,
    dataset: Option<ScaledDataset>,
    model: Option<ModelConfig>,
    train: TrainConfig,
    storage: Storage,
    pipeline: PipelineConfig,
    emulated_device: Option<IoCostModel>,
    eval_every: usize,
    epoch_hook: Option<EpochHook>,
    checkpoint: Option<(usize, PathBuf)>,
}

impl Default for SessionBuilder<LinkPredictionTask> {
    fn default() -> Self {
        SessionBuilder::with_task(LinkPredictionTask)
    }
}

impl<T: Task> SessionBuilder<T> {
    /// Starts a builder for an explicit task value.
    pub fn with_task(task: T) -> Self {
        SessionBuilder {
            task,
            dataset: None,
            model: None,
            train: TrainConfig::default(),
            storage: Storage::InMemory,
            pipeline: PipelineConfig::disabled(),
            emulated_device: None,
            eval_every: 1,
            epoch_hook: None,
            checkpoint: None,
        }
    }

    /// Switches the session to a different task (e.g.
    /// [`NodeClassificationTask`]), keeping every other setting.
    pub fn task<U: Task>(self, task: U) -> SessionBuilder<U> {
        SessionBuilder {
            task,
            dataset: self.dataset,
            model: self.model,
            train: self.train,
            storage: self.storage,
            pipeline: self.pipeline,
            emulated_device: self.emulated_device,
            eval_every: self.eval_every,
            epoch_hook: self.epoch_hook,
            checkpoint: self.checkpoint,
        }
    }

    /// The dataset to train on (required).
    pub fn dataset(mut self, data: ScaledDataset) -> Self {
        self.dataset = Some(data);
        self
    }

    /// The model architecture (required).
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = Some(model);
        self
    }

    /// Batch/epoch configuration (defaults to [`TrainConfig::default`]).
    pub fn train(mut self, train: TrainConfig) -> Self {
        self.train = train;
        self
    }

    /// In-memory or out-of-core storage (defaults to [`Storage::InMemory`]).
    pub fn storage(mut self, storage: Storage) -> Self {
        self.storage = storage;
        self
    }

    /// Enables the staged pipelined runtime for disk-based training.
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Runs disk training against an emulated IO device instead of the raw
    /// local filesystem (see `PartitionStore::with_emulated_device`).
    pub fn emulated_device(mut self, model: IoCostModel) -> Self {
        self.emulated_device = Some(model);
        self
    }

    /// Evaluates the task metric only every `every` epochs (plus the final
    /// epoch); skipped epochs report `metric = NaN`. Evaluation consumes RNG
    /// draws, so changing the cadence changes subsequent trajectories.
    pub fn eval_every(mut self, every: usize) -> Self {
        self.eval_every = every;
        self
    }

    /// Installs a callback invoked after every completed epoch.
    pub fn on_epoch(mut self, hook: impl Fn(&EpochReport) + Send + Sync + 'static) -> Self {
        self.epoch_hook = Some(Box::new(hook));
        self
    }

    /// Writes a training-progress checkpoint (the
    /// [`ExperimentReport::to_json`] of all epochs so far) to `path` every
    /// `every` epochs. The file is rewritten in place; a new training run on
    /// the same session restarts the accumulated epochs.
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint = Some((every.max(1), path.into()));
        self
    }

    /// Validates the configuration and assembles the [`Session`].
    pub fn build(self) -> Result<Session<T>> {
        let data = self.dataset.ok_or_else(|| StorageError::InvalidPlan {
            reason: "Session requires a dataset (SessionBuilder::dataset)".into(),
        })?;
        let model = self.model.ok_or_else(|| StorageError::InvalidPlan {
            reason: "Session requires a model configuration (SessionBuilder::model)".into(),
        })?;
        // Fail fast on a policy/task mismatch instead of at train() time.
        if let Storage::Disk(disk) = &self.storage {
            self.task.disk_label(disk)?;
        }

        let total_epochs = self.train.epochs;
        let mut trainer = Trainer::with_task(self.task, model, self.train)
            .with_pipeline(self.pipeline)
            .with_eval_every(self.eval_every);
        if let Some(io) = self.emulated_device {
            trainer = trainer.with_emulated_device(io);
        }

        // Compose the user hook with the checkpoint writer: epochs accumulate
        // in a shared report and the JSON is rewritten on the cadence (and
        // always after the final epoch, so the file never misses the tail of
        // a run whose epoch count is not a cadence multiple).
        let user_hook = self.epoch_hook;
        match self.checkpoint {
            Some((every, path)) => {
                let acc: Arc<Mutex<ExperimentReport>> = Arc::new(Mutex::new(
                    ExperimentReport::new("checkpoint", data.spec.name.clone()),
                ));
                trainer = trainer.with_epoch_hook(move |epoch| {
                    if let Some(hook) = &user_hook {
                        hook(epoch);
                    }
                    let mut report = acc.lock().expect("checkpoint state poisoned");
                    if epoch.epoch == 0 {
                        report.epochs.clear();
                    }
                    report.epochs.push(epoch.clone());
                    if report.epochs.len().is_multiple_of(every) || epoch.epoch + 1 == total_epochs
                    {
                        if let Err(e) = std::fs::write(&path, report.to_json()) {
                            eprintln!(
                                "warning: could not write checkpoint {}: {e}",
                                path.display()
                            );
                        }
                    }
                });
            }
            None => {
                if let Some(hook) = user_hook {
                    trainer = trainer.with_epoch_hook(hook);
                }
            }
        }

        Ok(Session {
            trainer,
            data,
            storage: self.storage,
            last_report: None,
        })
    }
}

/// A configured training session: the single public entry point of the
/// facade. See the crate docs for a usage example.
pub struct Session<T: Task> {
    trainer: Trainer<T>,
    data: ScaledDataset,
    storage: Storage,
    last_report: Option<ExperimentReport>,
}

impl Session<LinkPredictionTask> {
    /// Starts building a session (link prediction by default; switch with
    /// [`SessionBuilder::task`]).
    pub fn builder() -> SessionBuilder<LinkPredictionTask> {
        SessionBuilder::default()
    }
}

impl<T: Task> Session<T> {
    /// Trains per the session's configuration and returns (and caches) the
    /// experiment report.
    pub fn train(&mut self) -> Result<ExperimentReport> {
        let report = match &self.storage {
            Storage::InMemory => self.trainer.train_in_memory(&self.data),
            Storage::Disk(disk) => self.trainer.train_disk(&self.data, disk),
        }?;
        self.last_report = Some(report.clone());
        Ok(report)
    }

    /// The task metric (MRR / accuracy) of the most recent training run,
    /// training first if the session has not run yet.
    pub fn evaluate(&mut self) -> Result<f64> {
        if self.last_report.is_none() {
            self.train()?;
        }
        Ok(self
            .last_report
            .as_ref()
            .expect("populated by train() above")
            .final_metric())
    }

    /// The report of the most recent [`Session::train`] call, if any.
    pub fn last_report(&self) -> Option<&ExperimentReport> {
        self.last_report.as_ref()
    }

    /// The human-readable name of the task metric ("MRR", "accuracy").
    pub fn metric_name(&self) -> &'static str {
        self.trainer.task.metric_name()
    }

    /// The dataset this session trains on.
    pub fn dataset(&self) -> &ScaledDataset {
        &self.data
    }

    /// The underlying trainer (for advanced configuration inspection).
    pub fn trainer(&self) -> &Trainer<T> {
        &self.trainer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::datasets::DatasetSpec;

    fn tiny_lp() -> ScaledDataset {
        ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.01), 5)
    }

    fn quick_train() -> TrainConfig {
        let mut train = TrainConfig::quick(2, 5);
        train.batch_size = 128;
        train.num_negatives = 16;
        train.eval_negatives = 32;
        train
    }

    fn expect_err<T>(result: Result<T>) -> StorageError {
        match result {
            Err(e) => e,
            Ok(_) => panic!("expected the session builder to reject the configuration"),
        }
    }

    #[test]
    fn builder_requires_dataset_and_model() {
        let err = expect_err(Session::builder().build());
        assert!(format!("{err}").contains("dataset"));
        let err = expect_err(Session::builder().dataset(tiny_lp()).build());
        assert!(format!("{err}").contains("model"));
    }

    #[test]
    fn builder_rejects_mismatched_policy_up_front() {
        let err = expect_err(
            Session::builder()
                .dataset(tiny_lp())
                .model(ModelConfig::paper_distmult(8))
                .storage(Storage::Disk(DiskConfig::node_cache(8, 4)))
                .build(),
        );
        assert!(format!("{err}").contains("node classification"));
    }

    #[test]
    fn in_memory_session_trains_and_evaluates() {
        let mut session = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(quick_train())
            .build()
            .unwrap();
        let report = session.train().unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(session.metric_name(), "MRR");
        assert_eq!(session.evaluate().unwrap(), report.final_metric());
        assert!(session.last_report().is_some());
    }

    #[test]
    fn evaluate_triggers_training_when_needed() {
        let mut session = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(quick_train())
            .build()
            .unwrap();
        let metric = session.evaluate().unwrap();
        assert!(metric > 0.0);
        assert_eq!(session.last_report().unwrap().epochs.len(), 2);
    }

    #[test]
    fn node_classification_session_via_task_switch() {
        let spec = DatasetSpec::ogbn_arxiv().scaled(0.006);
        let data = ScaledDataset::generate(&spec, 8);
        let mut model = ModelConfig::paper_node_classification(spec.feat_dim, 12);
        model.num_layers = 1;
        model.fanouts = vec![5];
        let mut train = TrainConfig::quick(1, 8);
        train.batch_size = 128;
        let mut session = Session::builder()
            .task(NodeClassificationTask)
            .dataset(data)
            .model(model)
            .train(train)
            .storage(Storage::Disk(DiskConfig::node_cache(8, 6)))
            .build()
            .unwrap();
        let report = session.train().unwrap();
        assert_eq!(session.metric_name(), "accuracy");
        assert!(report.final_metric() > 0.0);
    }

    #[test]
    fn checkpoint_and_epoch_hooks_fire() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = std::env::temp_dir().join(format!(
            "marius-session-ckpt-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let mut session = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(quick_train())
            .on_epoch(move |_| {
                seen.fetch_add(1, Ordering::SeqCst);
            })
            .checkpoint_to(&path, 1)
            .build()
            .unwrap();
        session.train().unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"system\":\"checkpoint\""));
        assert_eq!(json.matches("\"epoch\":").count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_flushes_the_final_epoch_off_cadence() {
        let dir = std::env::temp_dir().join(format!(
            "marius-session-ckpt-tail-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("checkpoint.json");
        let mut train = quick_train();
        train.epochs = 3; // not a multiple of the cadence below
        let mut session = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(train)
            .checkpoint_to(&path, 2)
            .build()
            .unwrap();
        session.train().unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert_eq!(json.matches("\"epoch\":").count(), 3, "final epoch missing");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
