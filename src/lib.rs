//! `marius` — the public facade of the MariusGNN reproduction.
//!
//! This crate re-exports the whole workspace and wraps the task-generic
//! training engine of [`marius_core`] behind one entry point: the [`Session`]
//! builder. A session owns a dataset, a model configuration, a storage
//! selection (in-memory or out-of-core) and an optional pipelined runtime,
//! and runs training/evaluation with eval-cadence and checkpoint hooks:
//!
//! ```no_run
//! use marius::{ModelConfig, Session, Storage, TrainConfig};
//! use marius::graph::datasets::{DatasetSpec, ScaledDataset};
//!
//! let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.05), 42);
//! let mut session = Session::builder()
//!     .dataset(data)
//!     .model(ModelConfig::paper_link_prediction_graphsage(32))
//!     .train(TrainConfig::quick(5, 42))
//!     .storage(Storage::Disk(marius::DiskConfig::comet(16, 4)))
//!     .pipeline(marius::PipelineConfig::with_workers(2))
//!     .build()
//!     .expect("valid session");
//! let report = session.train().expect("training succeeds");
//! println!("{}", report.to_table());
//! ```
//!
//! Tasks are selected with [`SessionBuilder::task`]; link prediction is the
//! default and [`NodeClassificationTask`] is the other built-in workload. Any
//! type implementing [`Task`] plugs into the same machinery.
//!
//! # Durable checkpoints and resume
//!
//! [`SessionBuilder::checkpoint_to`] writes *full* checkpoints at epoch
//! boundaries — model parameters and optimizer accumulators, the embedding
//! table or a partition-store snapshot, the RNG cursor, and the progress
//! report — as versioned directories swapped atomically (temp-dir + rename; a
//! crash can never tear a checkpoint). [`Session::resume_from`] rebuilds the
//! whole session from the newest checkpoint alone, and the resumed run's loss
//! trajectory is **bit-identical** to the uninterrupted run's:
//!
//! ```no_run
//! use marius::graph::datasets::{DatasetSpec, ScaledDataset};
//! use marius::{LinkPredictionTask, ModelConfig, Session, TrainConfig};
//!
//! # fn main() -> marius::Result<()> {
//! // A run checkpoints every epoch, then is interrupted...
//! let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.05), 42);
//! let mut session = Session::builder()
//!     .dataset(data)
//!     .model(ModelConfig::paper_distmult(32))
//!     .train(TrainConfig::quick(4, 42))
//!     .checkpoint_to("run/checkpoints", 1)
//!     .build()?;
//! session.train()?;
//!
//! // ...and a later process picks up exactly where it stopped (the dataset,
//! // task, model, optimizer state and RNG streams all come from the
//! // manifest; `resume_from_until` additionally raises the epoch target).
//! let mut resumed: Session<LinkPredictionTask> =
//!     Session::resume_from("run/checkpoints")?;
//! let report = resumed.train()?;
//! # let _ = report;
//! # Ok(())
//! # }
//! ```
//!
//! See `marius_core::checkpoint` for the on-disk layout (manifest schema,
//! blob format, versioning rules).
//!
//! # Fault tolerance
//!
//! The storage layer injects deterministic faults ([`storage::IoFaultPlan`]),
//! retries transient failures with bounded exponential backoff
//! ([`storage::RetryPolicy`]), and supervises every pipeline stage, so a
//! flaky disk costs retries, never correctness: a run whose transient faults
//! are all absorbed by the retry layer is **bit-identical** to the fault-free
//! run (faults and retries live entirely inside the store, outside every RNG
//! stream). Faults that outlast the retry budget surface as typed
//! [`StorageError::Pipeline`] errors after an orderly pipeline shutdown, and
//! [`Session::train_with_recovery`] turns those into automatic resumes from
//! the newest checkpoint, up to a bounded restart budget:
//!
//! ```no_run
//! use marius::graph::datasets::{DatasetSpec, ScaledDataset};
//! use marius::storage::IoFaultPlan;
//! use marius::{ModelConfig, Session, Storage, TrainConfig};
//!
//! # fn main() -> marius::Result<()> {
//! let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.05), 42);
//! let mut session = Session::builder()
//!     .dataset(data)
//!     .model(ModelConfig::paper_distmult(32))
//!     .train(TrainConfig::quick(4, 42))
//!     .storage(Storage::Disk(marius::DiskConfig::comet(16, 4)))
//!     .fault_plan(IoFaultPlan::flaky(7)) // chaos testing; omit on real devices
//!     .checkpoint_to("run/checkpoints", 1)
//!     .build()?;
//! // Transient faults retry invisibly; anything worse auto-resumes from the
//! // newest checkpoint, at most 3 times.
//! let report = session.train_with_recovery(3)?;
//! # let _ = report;
//! # Ok(())
//! # }
//! ```
//!
//! See `marius_storage::fault` for the fault model and error taxonomy.
//!
//! # Telemetry
//!
//! [`SessionBuilder::telemetry`] attaches a [`Telemetry`] recorder to the
//! whole run: the trainer's epoch loop, checkpoint writes, every pipeline
//! stage thread and bounded queue, and the partition store/buffer record
//! spans and metrics into it. Recording reads only monotonic clocks — never
//! RNG — so trajectories are bit-identical with telemetry on or off, and the
//! default (a disabled handle) costs nothing:
//!
//! ```no_run
//! use marius::graph::datasets::{DatasetSpec, ScaledDataset};
//! use marius::{ModelConfig, Session, Storage, Telemetry, TrainConfig};
//!
//! # fn main() -> marius::Result<()> {
//! let telemetry = Telemetry::enabled();
//! let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.05), 42);
//! let mut session = Session::builder()
//!     .dataset(data)
//!     .model(ModelConfig::paper_distmult(32))
//!     .train(TrainConfig::quick(2, 42))
//!     .storage(Storage::Disk(marius::DiskConfig::comet(16, 4)))
//!     .pipeline(marius::PipelineConfig::with_workers(2))
//!     .telemetry(&telemetry)
//!     .build()?;
//! session.train()?;
//! // Load trace.json in chrome://tracing or https://ui.perfetto.dev;
//! // metrics.json aggregates mirror the EpochReport fields exactly.
//! telemetry.write_chrome_trace("trace.json")?;
//! telemetry.write_metrics_json("metrics.json")?;
//! # Ok(())
//! # }
//! ```
//!
//! See `marius_telemetry` for the event model and overhead guarantees.
//!
//! # Serving a trained model
//!
//! Checkpoints are not just for resuming: [`Server`] (from `marius-serve`)
//! opens one read-only and answers link-prediction queries — pairwise
//! scoring, top-k tail prediction, k-NN over embeddings — from any number of
//! threads, bit-identically to a single-threaded run. Train, checkpoint,
//! serve:
//!
//! ```no_run
//! use marius::graph::datasets::{DatasetSpec, ScaledDataset};
//! use marius::{ModelConfig, ServeConfig, Server, Session, Storage, TrainConfig};
//!
//! # fn main() -> marius::Result<()> {
//! // Train a decoder-only DistMult model out of core and checkpoint it.
//! let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.05), 42);
//! let mut session = Session::builder()
//!     .dataset(data)
//!     .model(ModelConfig::paper_distmult(32))
//!     .train(TrainConfig::quick(2, 42))
//!     .storage(Storage::Disk(marius::DiskConfig::comet(16, 4)))
//!     .checkpoint_to("run/checkpoints", 1)
//!     .build()?;
//! session.train()?;
//!
//! // Serve the checkpoint: in memory via `session.serve()`, or out of core
//! // behind a byte-budgeted hot-partition read cache whose admission set
//! // reuses the checkpoint's COMET/BETA policy machinery.
//! let server = Server::from_checkpoint_with("run/checkpoints", ServeConfig::read_cache(1 << 20))?;
//! let score = server.score(0, 3, 17)?;
//! let tails = server.top_k(0, 3, 10)?;
//! let similar = server.knn(0, 5)?;
//! # let _ = (score, tails, similar);
//! # Ok(())
//! # }
//! ```
//!
//! See `marius_serve` for the query API, cache-policy reuse and the
//! consistency guarantees (thread-count, backend and chunking invariance).
//!
//! # Continuous training: train → checkpoint → reload → serve
//!
//! A server is not stuck on the checkpoint it opened. [`Server::reload`]
//! atomically hot-swaps in the newest `epoch-NNNNNN/` version (in-flight
//! queries finish on the snapshot they pinned), and
//! [`Session::serve_watching`] wires that into a background poll loop so a
//! long-lived server tracks a training run as it publishes checkpoints:
//!
//! ```no_run
//! use std::time::Duration;
//! use marius::graph::datasets::{DatasetSpec, ScaledDataset};
//! use marius::{LinkPredictionTask, ModelConfig, ServeConfig, Session, Storage, TrainConfig};
//!
//! # fn main() -> marius::Result<()> {
//! let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.05), 42);
//! let mut session = Session::builder()
//!     .dataset(data)
//!     .model(ModelConfig::paper_distmult(32))
//!     .train(TrainConfig::quick(2, 42))
//!     .storage(Storage::Disk(marius::DiskConfig::comet(16, 4)))
//!     .checkpoint_to("run/checkpoints", 1)
//!     .build()?;
//! session.train()?;
//!
//! // Serve with hardening: bounded in-flight budget, per-query deadline,
//! // and a watcher that hot-swaps each new checkpoint as training publishes
//! // it. Queries keep answering (on the old epoch) throughout every swap.
//! let config = ServeConfig::read_cache(1 << 20)
//!     .with_max_in_flight(64)
//!     .with_deadline(Duration::from_millis(250));
//! let (server, watcher) = session.serve_watching(config, Duration::from_millis(100))?;
//!
//! // Keep training: the watcher reloads epoch 3's checkpoint within a poll.
//! let mut session: Session<LinkPredictionTask> =
//!     Session::resume_from_until("run/checkpoints", 3)?;
//! session.train()?;
//!
//! println!("{:?}", server.health()); // readiness: epoch, errors, shed, reloads
//! watcher.stop(); // stops polling; the server keeps serving its snapshot
//! # Ok(())
//! # }
//! ```
//!
//! Under faults the read path degrades predictably — transient read errors
//! retry (seeded [`IoFaultPlan`] chaos schedules attach via
//! [`ServeConfig`]), corrupt cached blocks quarantine and re-read from disk,
//! overload sheds with typed [`ServeError`]s — see `marius_serve`'s
//! "degradation modes & reload semantics" docs.
//!
//! # Streaming ingest: a training set that grows mid-run
//!
//! [`Session::stream`] closes the loop the other way: instead of a frozen
//! dataset, a seeded [`EdgeStream`] feeds new edges into the run itself.
//! Each cycle fine-tunes for K epochs, then (at the write-back safe point of
//! the epoch boundary) an [`Ingestor`] stages the next N batches as
//! crash-atomic delta files and applies them to the edge buckets — the next
//! cycle trains over the grown graph while the
//! [`TemporalLinkPredictionTask`] keeps evaluating on its frozen
//! chronological windows. Every checkpoint records the stream cursor, so
//! [`Session::resume_streamed`] reproduces an interrupted streamed run
//! bit-for-bit by replaying the stream, and a [`Session::serve_watching`]
//! server follows the fine-tuned epochs live:
//!
//! ```no_run
//! use marius::graph::datasets::{DatasetSpec, ScaledDataset};
//! use marius::{
//!     ModelConfig, Session, Storage, StreamConfig, TemporalLinkPredictionTask, TrainConfig,
//! };
//!
//! # fn main() -> marius::Result<()> {
//! let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.05), 42);
//! let mut session = Session::builder()
//!     .task(TemporalLinkPredictionTask)
//!     .dataset(data)
//!     .model(ModelConfig::paper_distmult(32))
//!     .train(TrainConfig::quick(1, 42)) // epoch target comes from the stream config
//!     .storage(Storage::Disk(marius::DiskConfig::comet(16, 4)))
//!     .checkpoint_to("run/checkpoints", 1)
//!     .build()?;
//! // 3 cycles × (fine-tune 2 epochs, then ingest 4 batches of 64 edges).
//! let report = session.stream(StreamConfig::new(7, 64, 4, 2, 3))?;
//! assert!(report.epochs.iter().any(|e| e.edges_ingested > 0));
//! # Ok(())
//! # }
//! ```
//!
//! See `marius_stream` for the ingest atomicity and epoch-boundary
//! semantics, and `marius_graph::temporal` for the split rules.
//!
//! # Workspace map
//!
//! * [`tensor`] / [`gnn`] — dense kernels, layers, decoders, optimizers.
//! * [`graph`] — edge lists, CSR subgraphs, partitioning, synthetic datasets.
//! * [`sampling`] — DENSE multi-hop sampling and negative sampling.
//! * [`storage`] — the partition store/buffer and replacement policies
//!   (COMET, BETA, training-node caching).
//! * [`pipeline`] — the staged runtime overlapping disk IO, batch
//!   construction and compute.
//! * [`core`] — models, the [`Task`] trait and the generic
//!   [`Trainer`]`<T>` this facade wraps.
//! * [`baselines`] — DGL/PyG-style cost models used by the benchmark
//!   harnesses.

pub use marius_baselines as baselines;
pub use marius_core as core;
pub use marius_gnn as gnn;
pub use marius_graph as graph;
pub use marius_pipeline as pipeline;
pub use marius_sampling as sampling;
pub use marius_serve as serve;
pub use marius_storage as storage;
pub use marius_stream as stream;
pub use marius_telemetry as telemetry;
pub use marius_tensor as tensor;

pub use marius_telemetry::Telemetry;

pub use marius_core::{
    Checkpoint, DiskConfig, EncoderKind, EpochHook, EpochReport, ExperimentReport,
    LinkPredictionTask, ModelConfig, NodeClassificationTask, Persist, PipelineConfig, PolicyKind,
    StateDict, StreamState, Task, TemporalLinkPredictionTask, TrainConfig, Trainer,
};
#[allow(deprecated)]
pub use marius_core::{LinkPredictionTrainer, NodeClassificationTrainer};
pub use marius_serve::{
    CheckpointWatcher, Prediction, ServeConfig, ServeError, ServeMode, ServeResult, Server,
    ServerHealth, ZipfWorkload,
};
pub use marius_storage::{
    FaultInjector, IoCostModel, IoFaultPlan, Result, RetryPolicy, StorageError,
};
pub use marius_stream::{EdgeStream, Ingestor};

use marius_core::StorageKind;
use marius_graph::datasets::ScaledDataset;
use marius_storage::PartitionStore;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Where base representations live during training.
#[derive(Debug, Clone)]
pub enum Storage {
    /// The full graph and all representations stay in memory (M-GNN_Mem).
    InMemory,
    /// Out-of-core training over a partitioned on-disk layout (M-GNN_Disk),
    /// driven by the disk configuration's replacement policy.
    Disk(DiskConfig),
}

/// Configuration of a continuous-training loop ([`Session::stream`]): each
/// cycle fine-tunes for `epochs_per_cycle` epochs, then ingests
/// `batches_per_cycle` batches of `batch_size` edges from a seeded
/// [`EdgeStream`] at the epoch boundary's write-back safe point. The final
/// cycle does not ingest (edges arriving after the last epoch would never be
/// fine-tuned; they belong to the next [`Session::resume_streamed`] run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamConfig {
    /// Seed of the edge stream (independent of the training seed).
    pub seed: u64,
    /// Edges per stream batch.
    pub batch_size: usize,
    /// Stream batches ingested at each cycle boundary.
    pub batches_per_cycle: usize,
    /// Fine-tuning epochs per cycle.
    pub epochs_per_cycle: usize,
    /// Number of ingest→fine-tune cycles (total epochs = `cycles ×
    /// epochs_per_cycle`, overriding the session's configured epoch count).
    pub cycles: usize,
}

impl StreamConfig {
    /// Creates a stream configuration; see the field docs for the meaning of
    /// each knob.
    pub fn new(
        seed: u64,
        batch_size: usize,
        batches_per_cycle: usize,
        epochs_per_cycle: usize,
        cycles: usize,
    ) -> Self {
        StreamConfig {
            seed,
            batch_size,
            batches_per_cycle,
            epochs_per_cycle,
            cycles,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.batch_size == 0
            || self.batches_per_cycle == 0
            || self.epochs_per_cycle == 0
            || self.cycles == 0
        {
            return Err(StorageError::InvalidPlan {
                reason: "StreamConfig requires non-zero batch_size, batches_per_cycle, \
                         epochs_per_cycle and cycles"
                    .into(),
            });
        }
        Ok(())
    }
}

/// Builder for [`Session`]. Obtain one with [`Session::builder`].
pub struct SessionBuilder<T: Task = LinkPredictionTask> {
    task: T,
    dataset: Option<ScaledDataset>,
    model: Option<ModelConfig>,
    train: TrainConfig,
    storage: Storage,
    pipeline: PipelineConfig,
    emulated_device: Option<IoCostModel>,
    faults: Option<Arc<FaultInjector>>,
    retry: Option<RetryPolicy>,
    eval_every: usize,
    epoch_hook: Option<EpochHook>,
    checkpoint: Option<(usize, PathBuf)>,
    telemetry: Telemetry,
}

impl Default for SessionBuilder<LinkPredictionTask> {
    fn default() -> Self {
        SessionBuilder::with_task(LinkPredictionTask)
    }
}

impl<T: Task> SessionBuilder<T> {
    /// Starts a builder for an explicit task value.
    pub fn with_task(task: T) -> Self {
        SessionBuilder {
            task,
            dataset: None,
            model: None,
            train: TrainConfig::default(),
            storage: Storage::InMemory,
            pipeline: PipelineConfig::disabled(),
            emulated_device: None,
            faults: None,
            retry: None,
            eval_every: 1,
            epoch_hook: None,
            checkpoint: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Switches the session to a different task (e.g.
    /// [`NodeClassificationTask`]), keeping every other setting.
    pub fn task<U: Task>(self, task: U) -> SessionBuilder<U> {
        SessionBuilder {
            task,
            dataset: self.dataset,
            model: self.model,
            train: self.train,
            storage: self.storage,
            pipeline: self.pipeline,
            emulated_device: self.emulated_device,
            faults: self.faults,
            retry: self.retry,
            eval_every: self.eval_every,
            epoch_hook: self.epoch_hook,
            checkpoint: self.checkpoint,
            telemetry: self.telemetry,
        }
    }

    /// The dataset to train on (required).
    pub fn dataset(mut self, data: ScaledDataset) -> Self {
        self.dataset = Some(data);
        self
    }

    /// The model architecture (required).
    pub fn model(mut self, model: ModelConfig) -> Self {
        self.model = Some(model);
        self
    }

    /// Batch/epoch configuration (defaults to [`TrainConfig::default`]).
    pub fn train(mut self, train: TrainConfig) -> Self {
        self.train = train;
        self
    }

    /// In-memory or out-of-core storage (defaults to [`Storage::InMemory`]).
    pub fn storage(mut self, storage: Storage) -> Self {
        self.storage = storage;
        self
    }

    /// Enables the staged pipelined runtime for disk-based training.
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Runs disk training against an emulated IO device instead of the raw
    /// local filesystem (see `PartitionStore::with_emulated_device`).
    pub fn emulated_device(mut self, model: IoCostModel) -> Self {
        self.emulated_device = Some(model);
        self
    }

    /// Arms a deterministic IO fault plan on the run's partition store (chaos
    /// testing): disk training and checkpoint placement then experience the
    /// plan's seeded schedule of transient failures, torn writes and latency
    /// spikes. Faults absorbed by the retry layer leave the loss trajectory
    /// bit-identical to a fault-free run. See `marius_storage::fault`.
    pub fn fault_plan(self, plan: IoFaultPlan) -> Self {
        self.fault_injector(plan.build())
    }

    /// Attaches an existing fault injector (shared, so callers can read its
    /// counters or arm outage/permanent windows mid-run).
    pub fn fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Overrides the bounded-exponential-backoff policy the store applies to
    /// transient IO failures ([`RetryPolicy::default_transient`] otherwise).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Evaluates the task metric only every `every` epochs (plus the final
    /// epoch); skipped epochs report `metric = NaN`. Evaluation consumes RNG
    /// draws, so changing the cadence changes subsequent trajectories.
    pub fn eval_every(mut self, every: usize) -> Self {
        self.eval_every = every;
        self
    }

    /// Installs a callback invoked after every completed epoch.
    pub fn on_epoch(mut self, hook: impl Fn(&EpochReport) + Send + Sync + 'static) -> Self {
        self.epoch_hook = Some(Box::new(move |epoch| {
            hook(epoch);
            Ok(())
        }));
        self
    }

    /// Installs a fallible epoch callback: an `Err` aborts training and
    /// surfaces from [`Session::train`] as the run's [`StorageError`].
    pub fn on_epoch_fallible(
        mut self,
        hook: impl Fn(&EpochReport) -> Result<()> + Send + Sync + 'static,
    ) -> Self {
        self.epoch_hook = Some(Box::new(hook));
        self
    }

    /// Attaches a [`Telemetry`] recorder to the run: the trainer's epoch
    /// loop, checkpoint writes, every pipeline stage thread and bounded
    /// queue, and the partition store/buffer all record spans and metrics
    /// into the cloned handle. Recording reads only monotonic clocks — never
    /// an RNG stream — so the loss trajectory is bit-identical with telemetry
    /// attached or not. The default is a disabled handle whose every
    /// operation is a single-branch no-op. After the run, export with
    /// [`Telemetry::write_chrome_trace`] / [`Telemetry::write_metrics_json`].
    pub fn telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// Writes a full durable checkpoint under the directory `path` every
    /// `every` epochs (and always after the final epoch): model parameters
    /// and optimizer accumulators, the embedding table or a snapshot of the
    /// partition store, the RNG cursor, and the progress report, laid out as
    /// versioned subdirectories with an atomically swapped `LATEST` pointer
    /// so a crash can never tear a checkpoint. [`Session::resume_from`] picks
    /// a run back up from the newest version, bit-exactly. See
    /// `marius_core::checkpoint` for the on-disk format.
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint = Some((every.max(1), path.into()));
        self
    }

    /// Validates the configuration and assembles the [`Session`].
    pub fn build(self) -> Result<Session<T>> {
        let data = self.dataset.ok_or_else(|| StorageError::InvalidPlan {
            reason: "Session requires a dataset (SessionBuilder::dataset)".into(),
        })?;
        let model = self.model.ok_or_else(|| StorageError::InvalidPlan {
            reason: "Session requires a model configuration (SessionBuilder::model)".into(),
        })?;
        // Fail fast on a policy/task mismatch instead of at train() time.
        if let Storage::Disk(disk) = &self.storage {
            self.task.disk_label(disk)?;
        }

        let mut trainer = Trainer::with_task(self.task, model, self.train)
            .with_pipeline(self.pipeline)
            .with_eval_every(self.eval_every)
            .with_telemetry(&self.telemetry);
        if let Some(io) = self.emulated_device {
            trainer = trainer.with_emulated_device(io);
        }
        if let Some(injector) = self.faults {
            trainer = trainer.with_fault_injector(injector);
        }
        if let Some(policy) = self.retry {
            trainer = trainer.with_retry_policy(policy);
        }
        // Checkpointing lives inside the trainer (it owns the model and the
        // store at epoch boundaries); the user hook rides along unchanged,
        // and any hook failure propagates as the run's StorageError instead
        // of panicking through a poisoned accumulator.
        let checkpoint_dir = self.checkpoint.as_ref().map(|(_, path)| path.clone());
        if let Some((every, path)) = self.checkpoint {
            trainer = trainer.with_checkpoint(path, every);
        }
        if let Some(hook) = self.epoch_hook {
            trainer = trainer.with_fallible_epoch_hook(hook);
        }

        Ok(Session {
            trainer,
            data,
            storage: self.storage,
            retry: self.retry,
            checkpoint_dir,
            last_report: None,
        })
    }
}

/// A configured training session: the single public entry point of the
/// facade. See the crate docs for a usage example.
pub struct Session<T: Task> {
    trainer: Trainer<T>,
    data: ScaledDataset,
    storage: Storage,
    /// Retry-policy override, carried so recovery resumes re-apply it.
    retry: Option<RetryPolicy>,
    /// Checkpoint root, when the session checkpoints — the anchor
    /// [`Session::train_with_recovery`] resumes from.
    checkpoint_dir: Option<PathBuf>,
    last_report: Option<ExperimentReport>,
}

impl Session<LinkPredictionTask> {
    /// Starts building a session (link prediction by default; switch with
    /// [`SessionBuilder::task`]).
    pub fn builder() -> SessionBuilder<LinkPredictionTask> {
        SessionBuilder::default()
    }
}

impl<T: Task + Default> Session<T> {
    /// Rebuilds a session from the newest checkpoint under `path` (a
    /// directory previously passed to [`SessionBuilder::checkpoint_to`]):
    /// the dataset is regenerated from the manifest's spec and seed, the
    /// task/model/storage/pipeline configuration is restored, and the next
    /// [`Session::train`] continues from the checkpointed epoch with the
    /// saved parameters, optimizer accumulators and RNG streams — producing
    /// the same loss trajectory, bit for bit, as the run would have without
    /// the interruption. The resumed session keeps checkpointing to `path`
    /// on the recorded cadence.
    ///
    /// The checkpoint's task must match `T` (compared by `Task::slug`);
    /// resuming a node-classification checkpoint requires
    /// `Session::<NodeClassificationTask>::resume_from`.
    pub fn resume_from(path: impl AsRef<Path>) -> Result<Session<T>> {
        Self::resume(path, None, None, None, Telemetry::disabled())
    }

    /// Like [`Session::resume_from`], but raises the run's total epoch target
    /// to `epochs` — the way to *extend* a finished run, or to express
    /// "2 epochs done, train to 4" when the interrupted run had a shorter
    /// target. `epochs` below the checkpointed progress is rejected.
    pub fn resume_from_until(path: impl AsRef<Path>, epochs: usize) -> Result<Session<T>> {
        Self::resume(path, Some(epochs), None, None, Telemetry::disabled())
    }

    /// Trains to completion, automatically resuming from the newest
    /// checkpoint when a run fails, up to `max_restarts` times. The session
    /// must checkpoint ([`SessionBuilder::checkpoint_to`]); each recovery
    /// re-opens the checkpoint directory, rebuilds the run bit-exactly
    /// ([`Session::resume_from_until`] semantics, keeping this session's
    /// fault injector and retry policy attached), and continues. A resume
    /// that itself fails (the device still down during the restore) consumes
    /// restart budget and is retried like any other failure. When the budget
    /// is exhausted the last failure surfaces unchanged.
    ///
    /// The returned report's [`EpochReport::recoveries`] field records, per
    /// epoch, how many recoveries preceded it. Epoch hooks do not survive a
    /// recovery (closures cannot be rebuilt from a manifest); epochs trained
    /// after the first restart run without the hook.
    pub fn train_with_recovery(&mut self, max_restarts: usize) -> Result<ExperimentReport> {
        let Some(dir) = self.checkpoint_dir.clone() else {
            return Err(StorageError::InvalidPlan {
                reason: "train_with_recovery requires a checkpoint directory \
                         (SessionBuilder::checkpoint_to)"
                    .into(),
            });
        };
        let target_epochs = self.trainer.train.epochs;
        let faults = self.trainer.fault_injector().cloned();
        // Epoch indices at which a recovery successfully resumed, for the
        // report stamp; `attempts` also counts resumes that failed before
        // training restarted (a device still down during the restore), so
        // the budget bounds every kind of restart.
        let mut resumed_at: Vec<usize> = Vec::new();
        let mut attempts = 0usize;
        let mut outcome = self.train();
        while let Err(err) = outcome {
            if attempts >= max_restarts {
                return Err(err);
            }
            attempts += 1;
            match Session::<T>::resume(
                &dir,
                Some(target_epochs),
                faults.clone(),
                self.retry,
                self.trainer.telemetry().clone(),
            ) {
                Ok(mut next) => {
                    resumed_at.push(next.trainer.resume_start_epoch().unwrap_or(0));
                    outcome = next.train();
                }
                Err(e) => outcome = Err(e),
            }
        }
        let mut report = outcome?;
        for epoch in &mut report.epochs {
            epoch.recoveries = resumed_at.iter().filter(|&&at| at <= epoch.epoch).count();
        }
        self.last_report = Some(report.clone());
        Ok(report)
    }

    /// Rebuilds an interrupted *streamed* run ([`Session::stream`]) from the
    /// newest checkpoint under `path`. On top of [`Session::resume_from`]
    /// semantics, the manifest's stream cursor is replayed: the base dataset
    /// is regenerated from its spec and seed, every already-applied stream
    /// batch is re-derived from `(config.seed, batch index)` and appended to
    /// the edge list, and the ingest hook is re-armed at the cursor — so the
    /// resumed loop continues ingesting and fine-tuning exactly where the
    /// interrupted one stopped, with a bit-identical trajectory.
    ///
    /// `config` carries the original run's stream geometry (it is not
    /// recorded in the manifest): the seed and batch size are checked
    /// against the checkpointed cursor, and the run's epoch target becomes
    /// `cycles × epochs_per_cycle` — equal to the original target to finish
    /// an interrupted loop bit-exactly, or larger to extend a finished one
    /// with further cycles ([`Session::resume_from_until`] semantics; a
    /// target below the checkpointed progress is rejected). A checkpoint
    /// without a stream cursor (a frozen-dataset run) is rejected — use
    /// [`Session::resume_from`] for those.
    pub fn resume_streamed(path: impl AsRef<Path>, config: StreamConfig) -> Result<Session<T>> {
        config.validate()?;
        let path = path.as_ref();
        let ckpt = Checkpoint::open(path)?;
        let cursor = ckpt.stream.ok_or_else(|| {
            StorageError::checkpoint(format!(
                "checkpoint at {} records no stream cursor; use Session::resume_from",
                path.display()
            ))
        })?;
        let total = config.cycles * config.epochs_per_cycle;
        drop(ckpt);
        let mut session = Self::resume(path, Some(total), None, None, Telemetry::disabled())?;
        let stream = EdgeStream::new(
            config.seed,
            session.data.num_nodes(),
            session.data.spec.num_relations,
            config.batch_size,
        );
        // Replay the stream up to the cursor: the grown edge list makes the
        // construction replay inside train_disk rebuild the same buckets the
        // uninterrupted run grew incrementally (chronological split: base
        // train ++ streamed edges, in time order).
        for k in 0..cursor.batches_applied {
            for edge in stream.batch(k) {
                session.data.graph.push(edge).map_err(|e| {
                    StorageError::checkpoint(format!("stream replay produced an invalid edge: {e}"))
                })?;
            }
        }
        let ingestor = session.make_ingestor(stream)?.resume_at(cursor)?;
        session.arm_stream(ingestor, &config);
        Ok(session)
    }

    fn resume(
        path: impl AsRef<Path>,
        epochs: Option<usize>,
        faults: Option<Arc<FaultInjector>>,
        retry: Option<RetryPolicy>,
        telemetry: Telemetry,
    ) -> Result<Session<T>> {
        let path = path.as_ref();
        let ckpt = Checkpoint::open(path)?;
        let task = T::default();
        if ckpt.task_slug != task.slug() {
            return Err(StorageError::checkpoint(format!(
                "checkpoint at {} was written by task {:?}, not {:?}",
                path.display(),
                ckpt.task_slug,
                task.slug()
            )));
        }
        let mut train = ckpt.train.clone();
        if let Some(epochs) = epochs {
            if epochs < ckpt.epochs_completed {
                return Err(StorageError::checkpoint(format!(
                    "cannot resume to {epochs} epochs: checkpoint already completed {}",
                    ckpt.epochs_completed
                )));
            }
            train.epochs = epochs;
        }
        let data = ScaledDataset::generate(&ckpt.dataset_spec, ckpt.dataset_seed);
        let storage = match &ckpt.storage {
            StorageKind::InMemory => Storage::InMemory,
            StorageKind::Disk(disk) => Storage::Disk(disk.clone()),
        };
        let mut trainer = Trainer::with_task(task, ckpt.model.clone(), train)
            .with_pipeline(ckpt.pipeline.clone())
            .with_eval_every(ckpt.eval_every)
            .with_checkpoint(path, ckpt.every)
            .with_resume(ckpt.resume_state())
            .with_telemetry(&telemetry);
        if let Some(io) = ckpt.emulated_device {
            trainer = trainer.with_emulated_device(io);
        }
        if let Some(injector) = faults {
            trainer = trainer.with_fault_injector(injector);
        }
        if let Some(policy) = retry {
            trainer = trainer.with_retry_policy(policy);
        }
        Ok(Session {
            trainer,
            data,
            storage,
            retry,
            checkpoint_dir: Some(path.to_path_buf()),
            last_report: None,
        })
    }
}

impl<T: Task> Session<T> {
    /// Runs the continuous-training loop: per cycle, fine-tune
    /// `epochs_per_cycle` epochs, then ingest `batches_per_cycle` seeded
    /// stream batches at the epoch boundary (write-back safe point), so the
    /// next cycle trains over the grown edge set. Requires disk storage; the
    /// session's total epoch target becomes `cycles × epochs_per_cycle`.
    ///
    /// Checkpoints written during the loop record the stream cursor, making
    /// the run resumable with [`Session::resume_streamed`] and followable by
    /// a [`Session::serve_watching`] server. Use the
    /// [`TemporalLinkPredictionTask`]: its chronological split derives the
    /// training set from the full timestamped edge list, which is what makes
    /// a resumed run's bucket rebuild agree bit-for-bit with the
    /// uninterrupted run's incremental delta application (tasks whose train
    /// split ignores streamed edges would train on them mid-run but lose
    /// them on resume).
    ///
    /// The loop is deterministic end to end: the stream is a pure function
    /// of `(config.seed, batch index)`, ingest consumes no trainer RNG, and
    /// application happens outside the seeded epoch executors — so streamed
    /// runs are bit-identical across reruns and across the sequential and
    /// pipelined executors, exactly like frozen-dataset runs.
    pub fn stream(&mut self, config: StreamConfig) -> Result<ExperimentReport> {
        config.validate()?;
        if !matches!(self.storage, Storage::Disk(_)) {
            return Err(StorageError::InvalidPlan {
                reason: "Session::stream requires out-of-core storage (Storage::Disk)".into(),
            });
        }
        self.trainer.train.epochs = config.cycles * config.epochs_per_cycle;
        let stream = EdgeStream::new(
            config.seed,
            self.data.num_nodes(),
            self.data.spec.num_relations,
            config.batch_size,
        );
        let ingestor = self.make_ingestor(stream)?;
        self.arm_stream(ingestor, &config);
        self.train()
    }

    /// Builds the staging-side [`Ingestor`] for `stream`, wiring the
    /// session's fault injector, retry policy and telemetry into the delta
    /// staging store so ingest IO degrades (and is observed) exactly like
    /// training IO.
    fn make_ingestor(&self, stream: EdgeStream) -> Result<Ingestor> {
        let staging = PartitionStore::open_temp(&format!("stream-staging-{}", stream.seed()))?;
        staging.clear()?;
        let staging = match self.trainer.fault_injector() {
            Some(injector) => staging.with_fault_injector(Arc::clone(injector)),
            None => staging,
        };
        let staging = match self.retry {
            Some(policy) => staging.with_retry_policy(policy),
            None => staging,
        };
        let staging = staging.with_telemetry(self.trainer.telemetry());
        Ok(Ingestor::new(stream, staging).with_telemetry(self.trainer.telemetry()))
    }

    /// Arms the trainer's ingest hook and stream cursor for a continuous
    /// loop: ingest fires at every `epochs_per_cycle`-th epoch boundary
    /// except the final one. Boundaries are indexed absolutely, so a resumed
    /// run ingests at the same epochs the uninterrupted run did.
    fn arm_stream(&mut self, ingestor: Ingestor, config: &StreamConfig) {
        let total = self.trainer.train.epochs;
        let per_cycle = config.epochs_per_cycle;
        let batches = config.batches_per_cycle;
        self.trainer.set_stream_state(ingestor.state_handle());
        let ingestor = Arc::new(ingestor);
        self.trainer.set_ingest_hook(move |setup, epoch_idx| {
            if (epoch_idx + 1).is_multiple_of(per_cycle) && epoch_idx + 1 < total {
                ingestor.ingest(setup, batches)
            } else {
                Ok(0)
            }
        });
    }

    /// Trains per the session's configuration and returns (and caches) the
    /// experiment report.
    pub fn train(&mut self) -> Result<ExperimentReport> {
        let report = match &self.storage {
            Storage::InMemory => self.trainer.train_in_memory(&self.data),
            Storage::Disk(disk) => self.trainer.train_disk(&self.data, disk),
        }?;
        self.last_report = Some(report.clone());
        Ok(report)
    }

    /// The task metric (MRR / accuracy) of the most recent training run,
    /// training first if the session has not run yet.
    pub fn evaluate(&mut self) -> Result<f64> {
        if self.last_report.is_none() {
            self.train()?;
        }
        Ok(self
            .last_report
            .as_ref()
            .expect("populated by train() above")
            .final_metric())
    }

    /// The report of the most recent [`Session::train`] call, if any.
    pub fn last_report(&self) -> Option<&ExperimentReport> {
        self.last_report.as_ref()
    }

    /// The human-readable name of the task metric ("MRR", "accuracy").
    pub fn metric_name(&self) -> &'static str {
        self.trainer.task.metric_name()
    }

    /// The dataset this session trains on.
    pub fn dataset(&self) -> &ScaledDataset {
        &self.data
    }

    /// The underlying trainer (for advanced configuration inspection).
    pub fn trainer(&self) -> &Trainer<T> {
        &self.trainer
    }

    /// Opens a read-only [`Server`] over this session's checkpoint directory
    /// (in-memory serving, telemetry disabled); requires
    /// [`SessionBuilder::checkpoint_to`] and at least one completed
    /// checkpointed epoch. Use [`Session::serve_with`] to pick the
    /// out-of-core read-cache backend or attach telemetry.
    pub fn serve(&self) -> Result<Server> {
        self.serve_with(ServeConfig::in_memory())
    }

    /// Like [`Session::serve`], with an explicit [`ServeConfig`].
    pub fn serve_with(&self, config: ServeConfig) -> Result<Server> {
        let dir = self
            .checkpoint_dir
            .as_ref()
            .ok_or_else(|| StorageError::InvalidPlan {
                reason: "Session::serve requires a checkpoint directory \
                         (SessionBuilder::checkpoint_to)"
                    .into(),
            })?;
        Server::from_checkpoint_with(dir, config)
    }

    /// Like [`Session::serve_with`], but additionally spawns a
    /// [`CheckpointWatcher`] that polls this session's checkpoint directory
    /// every `poll` interval and hot-swaps each newly published
    /// `epoch-NNNNNN/` version into the returned server ([`Server::reload`]
    /// semantics: in-flight queries finish on the snapshot they pinned). Use
    /// this for continuous train→checkpoint→reload→serve loops; see the
    /// crate-level "Continuous training" example.
    pub fn serve_watching(
        &self,
        config: ServeConfig,
        poll: std::time::Duration,
    ) -> Result<(Arc<Server>, CheckpointWatcher)> {
        let server = Arc::new(self.serve_with(config)?);
        let watcher = server.watch_checkpoints(poll);
        Ok((server, watcher))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::datasets::DatasetSpec;

    fn tiny_lp() -> ScaledDataset {
        ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.01), 5)
    }

    fn quick_train() -> TrainConfig {
        let mut train = TrainConfig::quick(2, 5);
        train.batch_size = 128;
        train.num_negatives = 16;
        train.eval_negatives = 32;
        train
    }

    fn expect_err<T>(result: Result<T>) -> StorageError {
        match result {
            Err(e) => e,
            Ok(_) => panic!("expected the session builder to reject the configuration"),
        }
    }

    #[test]
    fn builder_requires_dataset_and_model() {
        let err = expect_err(Session::builder().build());
        assert!(format!("{err}").contains("dataset"));
        let err = expect_err(Session::builder().dataset(tiny_lp()).build());
        assert!(format!("{err}").contains("model"));
    }

    #[test]
    fn builder_rejects_mismatched_policy_up_front() {
        let err = expect_err(
            Session::builder()
                .dataset(tiny_lp())
                .model(ModelConfig::paper_distmult(8))
                .storage(Storage::Disk(DiskConfig::node_cache(8, 4)))
                .build(),
        );
        assert!(format!("{err}").contains("node classification"));
    }

    #[test]
    fn in_memory_session_trains_and_evaluates() {
        let mut session = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(quick_train())
            .build()
            .unwrap();
        let report = session.train().unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert_eq!(session.metric_name(), "MRR");
        assert_eq!(session.evaluate().unwrap(), report.final_metric());
        assert!(session.last_report().is_some());
    }

    #[test]
    fn evaluate_triggers_training_when_needed() {
        let mut session = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(quick_train())
            .build()
            .unwrap();
        let metric = session.evaluate().unwrap();
        assert!(metric > 0.0);
        assert_eq!(session.last_report().unwrap().epochs.len(), 2);
    }

    #[test]
    fn node_classification_session_via_task_switch() {
        let spec = DatasetSpec::ogbn_arxiv().scaled(0.006);
        let data = ScaledDataset::generate(&spec, 8);
        let mut model = ModelConfig::paper_node_classification(spec.feat_dim, 12);
        model.num_layers = 1;
        model.fanouts = vec![5];
        let mut train = TrainConfig::quick(1, 8);
        train.batch_size = 128;
        let mut session = Session::builder()
            .task(NodeClassificationTask)
            .dataset(data)
            .model(model)
            .train(train)
            .storage(Storage::Disk(DiskConfig::node_cache(8, 6)))
            .build()
            .unwrap();
        let report = session.train().unwrap();
        assert_eq!(session.metric_name(), "accuracy");
        assert!(report.final_metric() > 0.0);
    }

    fn temp_ckpt_dir(label: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "marius-session-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_and_epoch_hooks_fire() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let dir = temp_ckpt_dir("ckpt");
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let mut session = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(quick_train())
            .on_epoch(move |_| {
                seen.fetch_add(1, Ordering::SeqCst);
            })
            .checkpoint_to(&dir, 1)
            .build()
            .unwrap();
        session.train().unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        // A full versioned checkpoint: LATEST pointer, manifest, state blobs,
        // human-readable progress.
        let latest = std::fs::read_to_string(dir.join("LATEST")).unwrap();
        assert_eq!(latest, "epoch-000002");
        let version = dir.join(latest);
        assert!(version.join("manifest.json").exists());
        assert!(version.join("state.bin").exists());
        let progress = std::fs::read_to_string(version.join("progress.json")).unwrap();
        assert_eq!(progress.matches("\"epoch\":").count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_flushes_the_final_epoch_off_cadence() {
        let dir = temp_ckpt_dir("ckpt-tail");
        let mut train = quick_train();
        train.epochs = 3; // not a multiple of the cadence below
        let mut session = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(train)
            .checkpoint_to(&dir, 2)
            .build()
            .unwrap();
        session.train().unwrap();
        // Cadence hits at epoch 2, and the off-cadence final epoch flushes too.
        assert_eq!(
            std::fs::read_to_string(dir.join("LATEST")).unwrap(),
            "epoch-000003"
        );
        let ckpt = Checkpoint::open(&dir).unwrap();
        assert_eq!(ckpt.epochs_completed, 3);
        assert_eq!(ckpt.prior_epochs.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_from_rejects_task_mismatch_and_missing_roots() {
        let dir = temp_ckpt_dir("ckpt-mismatch");
        let err = expect_err(Session::<LinkPredictionTask>::resume_from(&dir));
        assert!(format!("{err}").contains("no checkpoint"), "{err}");
        let mut session = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(quick_train())
            .checkpoint_to(&dir, 1)
            .build()
            .unwrap();
        session.train().unwrap();
        let err = expect_err(Session::<NodeClassificationTask>::resume_from(&dir));
        assert!(format!("{err}").contains("task"), "{err}");
        // Shrinking the epoch target below completed progress is rejected.
        let err = expect_err(Session::<LinkPredictionTask>::resume_from_until(&dir, 1));
        assert!(format!("{err}").contains("already completed"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failing_epoch_hook_aborts_training_with_its_error() {
        let mut session = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(quick_train())
            .on_epoch_fallible(|epoch| {
                if epoch.epoch == 0 {
                    Err(StorageError::InvalidPlan {
                        reason: "hook said stop".into(),
                    })
                } else {
                    Ok(())
                }
            })
            .build()
            .unwrap();
        let err = session.train().unwrap_err();
        assert!(format!("{err}").contains("hook said stop"), "{err}");
    }

    #[test]
    fn resumed_session_reproduces_the_uninterrupted_trajectory() {
        let dir = temp_ckpt_dir("ckpt-resume");
        let mut full_train = quick_train();
        full_train.epochs = 4;
        let mut full = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(full_train)
            .build()
            .unwrap();
        let full_report = full.train().unwrap();

        let mut half = Session::builder()
            .dataset(tiny_lp())
            .model(ModelConfig::paper_distmult(8))
            .train(quick_train()) // 2 epochs
            .checkpoint_to(&dir, 1)
            .build()
            .unwrap();
        half.train().unwrap();
        let mut resumed: Session<LinkPredictionTask> = Session::resume_from_until(&dir, 4).unwrap();
        assert_eq!(resumed.dataset().spec, full.dataset().spec);
        let resumed_report = resumed.train().unwrap();
        assert_eq!(resumed_report.epochs.len(), 4);
        for (a, b) in full_report.epochs.iter().zip(&resumed_report.epochs) {
            assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "epoch {}", a.epoch);
            assert_eq!(a.metric.to_bits(), b.metric.to_bits(), "epoch {}", a.epoch);
            assert_eq!(a.examples, b.examples, "epoch {}", a.epoch);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
