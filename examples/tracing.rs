//! Traced out-of-core training: attach a telemetry recorder to a pipelined
//! disk session, export a Chrome trace plus a metrics snapshot, and print the
//! top-3 stall sources of the run.
//!
//! The recorder rides along every layer — trainer epoch loop, the five
//! pipeline stage threads and their bounded queues, the partition
//! store/buffer — and reads only monotonic clocks, so the loss trajectory is
//! bit-identical to an untraced run. Load `target/tracing_trace.json` in
//! `chrome://tracing` or <https://ui.perfetto.dev> to see one track per stage
//! with step/partition-labelled spans.
//!
//! Run with: `cargo run --release --example tracing`

use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::{DiskConfig, ModelConfig, PipelineConfig, Session, Storage, Telemetry, TrainConfig};

fn main() -> marius::Result<()> {
    let spec = DatasetSpec::fb15k_237().scaled(0.05);
    let data = ScaledDataset::generate(&spec, 123);
    println!(
        "Dataset {}: {} nodes, {} train edges",
        spec.name,
        data.num_nodes(),
        data.train_edges.len()
    );

    let model = ModelConfig::paper_link_prediction_graphsage(16).shrunk(10, 16);
    let mut train = TrainConfig::quick(2, 123);
    train.batch_size = 512;
    train.num_negatives = 64;

    let telemetry = Telemetry::enabled();
    let mut session = Session::builder()
        .dataset(data)
        .model(model)
        .train(train)
        .storage(Storage::Disk(DiskConfig::comet(16, 4)))
        .pipeline(PipelineConfig::with_workers(2))
        .telemetry(&telemetry)
        .build()?;
    let report = session.train()?;
    println!("{}", report.to_table());

    // Example artifacts belong under target/, not the repo root.
    std::fs::create_dir_all("target")?;
    telemetry.write_chrome_trace("target/tracing_trace.json")?;
    telemetry.write_metrics_json("target/tracing_metrics.json")?;
    println!("wrote target/tracing_trace.json and target/tracing_metrics.json");

    // Rank where the pipeline lost time: every *_stall/_wait counter in the
    // snapshot is nanoseconds a stage spent blocked rather than working.
    let snapshot = telemetry.metrics_snapshot();
    let mut stalls: Vec<(&str, u64)> = snapshot
        .counters
        .iter()
        .filter(|(name, _)| {
            name.starts_with("pipeline.")
                && (name.ends_with("_stall_ns") || name.ends_with("_wait_ns"))
        })
        .map(|(name, v)| (name.as_str(), *v))
        .collect();
    if let Some(throttle) = snapshot.counter("storage.throttle_wait_ns") {
        stalls.push(("storage.throttle_wait_ns", throttle));
    }
    stalls.sort_by_key(|&(_, ns)| std::cmp::Reverse(ns));

    println!("\nTop stall sources:");
    for (name, ns) in stalls.iter().take(3) {
        println!("  {name:<28} {:>8.3} s", *ns as f64 / 1e9);
    }
    let depth = snapshot.histogram("pipeline.queue_depth.batch");
    if let Some(depth) = depth {
        println!(
            "\nbatch queue depth: mean {:.2} over {} samples (deeper = sampling ahead of compute)",
            depth.mean(),
            depth.total
        );
    }
    Ok(())
}
