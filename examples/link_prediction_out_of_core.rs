//! Out-of-core link prediction: COMET versus BETA partition replacement.
//!
//! Trains the same GraphSage + DistMult model on an FB15k-237-shaped graph three
//! ways — full graph in memory, disk-based with COMET, disk-based with the
//! greedy BETA policy — and prints the per-epoch MRR and IO so the accuracy gap
//! the paper describes (§5.1, Table 8) is visible directly.
//!
//! Run with: `cargo run --release --example link_prediction_out_of_core`

use marius_core::{DiskConfig, LinkPredictionTrainer, ModelConfig, TrainConfig};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};

fn main() {
    let spec = DatasetSpec::fb15k_237().scaled(0.05);
    let data = ScaledDataset::generate(&spec, 123);
    println!(
        "Dataset {}: {} nodes, {} train edges",
        spec.name,
        data.num_nodes(),
        data.train_edges.len()
    );

    let model = ModelConfig::paper_link_prediction_graphsage(32).shrunk(10, 32);
    let mut train = TrainConfig::quick(4, 123);
    train.batch_size = 512;
    train.num_negatives = 128;
    let trainer = LinkPredictionTrainer::new(model, train);

    println!("== Full graph in memory ==");
    let mem = trainer.train_in_memory(&data);
    println!("{}", mem.to_table());

    // A buffer holding a quarter of the partitions, as in the paper's Table 8 setup.
    let partitions = 16u32;
    let capacity = 4usize;

    println!("== Disk-based, COMET policy ==");
    let comet = trainer
        .train_disk(&data, &DiskConfig::comet(partitions, capacity))
        .expect("disk training");
    println!("{}", comet.to_table());

    println!("== Disk-based, BETA policy (prior state of the art) ==");
    let beta = trainer
        .train_disk(&data, &DiskConfig::beta(partitions, capacity))
        .expect("disk training");
    println!("{}", beta.to_table());

    println!("\nSummary (MRR):");
    println!("  in-memory : {:.4}", mem.final_metric());
    println!("  COMET disk: {:.4}", comet.final_metric());
    println!("  BETA  disk: {:.4}", beta.final_metric());
}
