//! Out-of-core link prediction: COMET versus BETA partition replacement.
//!
//! Trains the same GraphSage + DistMult model on an FB15k-237-shaped graph three
//! ways — full graph in memory, disk-based with COMET, disk-based with the
//! greedy BETA policy — and prints the per-epoch MRR and IO so the accuracy gap
//! the paper describes (§5.1, Table 8) is visible directly. The three runs are
//! three `marius::Session`s over the same dataset, differing only in their
//! `Storage` selection.
//!
//! Run with: `cargo run --release --example link_prediction_out_of_core`

use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::{DiskConfig, ModelConfig, Session, Storage, TrainConfig};

fn main() {
    let spec = DatasetSpec::fb15k_237().scaled(0.05);
    let data = ScaledDataset::generate(&spec, 123);
    println!(
        "Dataset {}: {} nodes, {} train edges",
        spec.name,
        data.num_nodes(),
        data.train_edges.len()
    );

    let model = ModelConfig::paper_link_prediction_graphsage(32).shrunk(10, 32);
    let mut train = TrainConfig::quick(4, 123);
    train.batch_size = 512;
    train.num_negatives = 128;

    // A buffer holding a quarter of the partitions, as in the paper's Table 8 setup.
    let partitions = 16u32;
    let capacity = 4usize;

    let run = |label: &str, storage: Storage| {
        println!("== {label} ==");
        let mut session = Session::builder()
            .dataset(data.clone())
            .model(model.clone())
            .train(train.clone())
            .storage(storage)
            .build()
            .expect("valid session configuration");
        let report = session.train().expect("training");
        println!("{}", report.to_table());
        report
    };

    let mem = run("Full graph in memory", Storage::InMemory);
    let comet = run(
        "Disk-based, COMET policy",
        Storage::Disk(DiskConfig::comet(partitions, capacity)),
    );
    let beta = run(
        "Disk-based, BETA policy (prior state of the art)",
        Storage::Disk(DiskConfig::beta(partitions, capacity)),
    );

    println!("\nSummary (MRR):");
    println!("  in-memory : {:.4}", mem.final_metric());
    println!("  COMET disk: {:.4}", comet.final_metric());
    println!("  BETA  disk: {:.4}", beta.final_metric());
}
