//! Applies the §6 auto-tuning rules to the paper's datasets on each AWS P3
//! instance and prints the chosen (p, l, c) configuration — the decision
//! MariusGNN makes "out of the box" before disk-based training starts.
//!
//! Run with: `cargo run --release --example autotune`

use marius::baselines::AwsInstance;
use marius::graph::datasets::{DatasetSpec, Task};
use marius::storage::auto_tune;

fn main() {
    let block_size = 128 * 1024u64; // EBS effective block size used in the paper.
    let instances = [
        AwsInstance::P3_2xLarge,
        AwsInstance::P3_8xLarge,
        AwsInstance::P3_16xLarge,
    ];
    println!(
        "{:<16} {:<12} | {:>6} {:>6} {:>6} | mode",
        "dataset", "instance", "p", "l", "c"
    );
    for spec in DatasetSpec::table1() {
        for instance in instances {
            let learnable = !spec.fixed_features && spec.task == Task::LinkPrediction;
            // Reserve ~10% of RAM as working memory (the fudge factor F).
            let fudge = instance.cpu_memory_bytes() / 10;
            let bytes_per_edge = if spec.num_relations > 1 { 12 } else { 8 };
            let cfg = auto_tune(
                spec.num_nodes,
                spec.feat_dim,
                spec.num_edges,
                bytes_per_edge,
                instance.cpu_memory_bytes(),
                block_size,
                fudge,
                learnable,
            );
            println!(
                "{:<16} {:<12} | {:>6} {:>6} {:>6} | {}",
                spec.name,
                instance.name(),
                cfg.physical_partitions,
                cfg.logical_partitions,
                cfg.buffer_capacity,
                if cfg.fits_in_memory {
                    "in-memory"
                } else {
                    "disk-based"
                }
            );
        }
    }
    println!(
        "\nReading the table: a (1, 1, 1) in-memory row means the dataset fits in that\n\
         instance's CPU memory and no partitioning is needed; otherwise the rules of §6\n\
         pick the partition count from the disk block size and the buffer from the\n\
         memory budget, with l = 2p/c logical partitions."
    );
}
