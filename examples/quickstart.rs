//! Quickstart: train a link-prediction model through the `marius::Session`
//! facade, interrupt it, and resume from a durable checkpoint.
//!
//! Generates a small synthetic knowledge graph (an FB15k-237-shaped dataset at
//! 5% scale), then demonstrates the durable-state contract end to end:
//!
//! 1. an *uninterrupted* 4-epoch run is the oracle;
//! 2. a second run trains 2 epochs while writing full checkpoints (model
//!    parameters, optimizer state, RNG cursor) every epoch, then stops — the
//!    "interrupt";
//! 3. `Session::resume_from_until` rebuilds the whole session from the
//!    checkpoint directory alone and trains the remaining 2 epochs.
//!
//! The resumed trajectory matches the oracle **bit for bit** — asserted at
//! the bottom, which makes this example the CI resume-smoke test.
//!
//! Run with: `cargo run --release --example quickstart`

use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::{LinkPredictionTask, ModelConfig, Session, Storage, TrainConfig};

fn model() -> ModelConfig {
    ModelConfig::paper_link_prediction_graphsage(32).shrunk(10, 32)
}

fn train_config(epochs: usize) -> TrainConfig {
    let mut train = TrainConfig::quick(epochs, 42);
    train.batch_size = 512;
    train.num_negatives = 128;
    train.eval_negatives = 200;
    train
}

fn main() {
    let spec = DatasetSpec::fb15k_237().scaled(0.05);
    println!(
        "Generating {}: {} nodes, {} edges, {} relations",
        spec.name, spec.num_nodes, spec.num_edges, spec.num_relations
    );
    let data = ScaledDataset::generate(&spec, 42);

    // The oracle: 4 epochs, no interruption.
    let mut oracle = Session::builder()
        .dataset(data.clone())
        .model(model())
        .train(train_config(4))
        .storage(Storage::InMemory)
        .build()
        .expect("valid session configuration");
    let oracle_report = oracle.train().expect("uninterrupted training");

    // The interrupted run: 2 epochs with a full checkpoint after each.
    let ckpt_dir = std::env::temp_dir().join(format!("marius-quickstart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mut session = Session::builder()
        .dataset(data)
        .model(model())
        .train(train_config(2))
        .storage(Storage::InMemory)
        .on_epoch(|e| println!("epoch {}: loss {:.4}, MRR {:.4}", e.epoch, e.loss, e.metric))
        .checkpoint_to(&ckpt_dir, 1)
        .build()
        .expect("valid session configuration");
    session.train().expect("interrupted training");
    drop(session); // the "crash": only the checkpoint directory survives
    println!(
        "-- interrupted after 2 epochs; resuming from {} --",
        ckpt_dir.display()
    );

    // Resume: dataset, model, optimizer state and RNG streams all come from
    // the checkpoint manifest; raise the epoch target to the oracle's 4.
    let mut resumed: Session<LinkPredictionTask> =
        Session::resume_from_until(&ckpt_dir, 4).expect("resume from checkpoint");
    let report = resumed.train().expect("resumed training");
    println!("{}", report.to_table());
    println!(
        "Final {} after {} epochs: {:.4} (avg epoch time {:.2}s)",
        resumed.metric_name(),
        report.epochs.len(),
        report.final_metric(),
        report.avg_epoch_time().as_secs_f64()
    );

    // The durable-state guarantee, asserted: interrupt + resume changed
    // nothing — the final loss and metric match the uninterrupted run at the
    // bit level.
    assert_eq!(report.epochs.len(), oracle_report.epochs.len());
    for (a, b) in oracle_report.epochs.iter().zip(&report.epochs) {
        assert_eq!(
            a.loss.to_bits(),
            b.loss.to_bits(),
            "epoch {} loss drifted across resume",
            a.epoch
        );
        assert_eq!(
            a.metric.to_bits(),
            b.metric.to_bits(),
            "epoch {} metric drifted across resume",
            a.epoch
        );
    }
    println!(
        "resume == uninterrupted: all {} epochs bit-identical",
        report.epochs.len()
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
