//! Quickstart: train a GraphSage + DistMult link-prediction model through the
//! `marius::Session` facade.
//!
//! Generates a small synthetic knowledge graph (an FB15k-237-shaped dataset at
//! 5% scale), trains for a few epochs with the full graph in memory, and prints
//! the per-epoch loss and MRR — the minimal end-to-end path through the system
//! (mirroring the paper artifact's "minimal working example").
//!
//! Run with: `cargo run --release --example quickstart`

use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::{ModelConfig, Session, Storage, TrainConfig};

fn main() {
    let spec = DatasetSpec::fb15k_237().scaled(0.05);
    println!(
        "Generating {}: {} nodes, {} edges, {} relations",
        spec.name, spec.num_nodes, spec.num_edges, spec.num_relations
    );
    let data = ScaledDataset::generate(&spec, 42);

    let model = ModelConfig::paper_link_prediction_graphsage(32).shrunk(10, 32);
    let mut train = TrainConfig::quick(5, 42);
    train.batch_size = 512;
    train.num_negatives = 128;
    train.eval_negatives = 200;

    let mut session = Session::builder()
        .dataset(data)
        .model(model)
        .train(train)
        .storage(Storage::InMemory)
        .on_epoch(|e| println!("epoch {}: loss {:.4}, MRR {:.4}", e.epoch, e.loss, e.metric))
        .build()
        .expect("valid session configuration");

    let report = session.train().expect("in-memory training");
    println!("{}", report.to_table());
    println!(
        "Final {} after {} epochs: {:.4} (avg epoch time {:.2}s)",
        session.metric_name(),
        report.epochs.len(),
        report.final_metric(),
        report.avg_epoch_time().as_secs_f64()
    );
}
