//! Train → checkpoint → serve: stand up a read-only query server over a
//! finished out-of-core run and answer link-prediction queries from four
//! threads.
//!
//! The server pages node embeddings through a byte-budgeted hot-partition
//! read cache (admission ranked by COMET plan heat), so only the hottest
//! partitions stay resident while cold ones read through to disk. Queries
//! are pure lookups plus decoder kernels — no RNG — so every answer is
//! bit-identical regardless of thread count or cache budget.
//!
//! All artifacts stay under `target/`; nothing is written to the repo root.
//!
//! Run with: `cargo run --release --example serve`

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::{
    DiskConfig, ModelConfig, ServeConfig, Session, Storage, Telemetry, TrainConfig, ZipfWorkload,
};

fn main() -> marius::Result<()> {
    let ckpt_dir = std::path::Path::new("target/serve-example/checkpoints");
    let _ = std::fs::remove_dir_all(ckpt_dir);

    // 1. Train a small decoder-only (DistMult) model out of core and
    //    checkpoint every epoch. Serving is decoder-only by design: base
    //    embeddings are directly comparable without an encoder pass.
    let spec = DatasetSpec::fb15k_237().scaled(0.05);
    let data = ScaledDataset::generate(&spec, 7);
    println!(
        "Training DistMult on {}: {} nodes, {} train edges",
        spec.name,
        data.num_nodes(),
        data.train_edges.len()
    );
    let mut train = TrainConfig::quick(2, 7);
    train.batch_size = 512;
    train.num_negatives = 64;
    let mut session = Session::builder()
        .dataset(data)
        .model(ModelConfig::paper_distmult(16))
        .train(train)
        .storage(Storage::Disk(DiskConfig::comet(16, 4)))
        .checkpoint_to(ckpt_dir, 1)
        .build()?;
    let report = session.train()?;
    println!("{}", report.to_table());

    // 2. Reopen the checkpoint as a server. A budget of 32 KiB holds only
    //    the hottest partitions; the rest read through on demand.
    let telemetry = Telemetry::enabled();
    let server =
        session.serve_with(ServeConfig::read_cache(32 << 10).with_telemetry(&telemetry))?;
    println!(
        "\nServing {} nodes x {} dims, {} relations; cache admits {}/{} partitions ({} bytes of {})",
        server.num_nodes(),
        server.dim(),
        server.num_relations(),
        server.cache_admitted_partitions().unwrap_or(0),
        16,
        server.cache_admitted_bytes().unwrap_or(0),
        server.cache_budget_bytes().unwrap_or(0),
    );

    // 3. Ask some questions single-threaded.
    println!("\nTop-5 tails for (node 0, relation 3):");
    for p in server.top_k(0, 3, 5)? {
        println!("  node {:>6}  score {:+.4}", p.node, p.score);
    }
    println!("Nearest neighbours of node 42:");
    for p in server.knn(42, 5)? {
        println!("  node {:>6}  cosine-free dot {:+.4}", p.node, p.score);
    }
    let pairs = [(0, 3, 17), (42, 1, 7)];
    println!(
        "Pairwise scores for {pairs:?}: {:?}",
        server.score_pairs(&pairs)?
    );

    // 4. Hammer it from four threads with a zipfian mix and report QPS.
    let queries_per_thread = 500usize;
    let answered = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let server = &server;
            let answered = &answered;
            scope.spawn(move || {
                let mut workload =
                    ZipfWorkload::new(server.num_nodes(), server.num_relations() as u32, 1.0, t);
                for _ in 0..queries_per_thread {
                    let (src, rel, _) = workload.next_triple();
                    server.top_k(src, rel, 10).expect("query");
                    answered.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "\n4 threads answered {} top-10 queries in {elapsed:.2} s ({:.0} QPS)",
        answered.load(Ordering::Relaxed),
        answered.load(Ordering::Relaxed) as f64 / elapsed
    );

    // 5. The cache counters explain the latency profile, and the health
    //    snapshot is what a readiness probe would scrape: served epoch,
    //    in-flight load, and every degradation counter (errors, shed,
    //    deadline trips, quarantines, reloads).
    let snap = telemetry.metrics_snapshot();
    for key in [
        "server.cache.hit",
        "server.cache.miss",
        "server.cache.bypass",
    ] {
        println!("  {key:<22} {}", snap.counter(key).unwrap_or(0));
    }
    println!("\nhealth: {:?}", server.health());
    std::fs::create_dir_all("target")?;
    telemetry.write_metrics_json("target/serve_metrics.json")?;
    println!("wrote target/serve_metrics.json");
    Ok(())
}
