//! Continuous train→serve loop: ingest streamed edges at epoch boundaries,
//! fine-tune between them, checkpoint every epoch, and let a `serve_watching`
//! server hot-swap each published version — until it answers a query over an
//! edge that did not exist when the server started.
//!
//! The stream is a pure function of `(seed, batch index)`, so the example can
//! name a future edge up front, prove it is absent from the base dataset,
//! start a server, grow the run past that edge's arrival, and then score it
//! on the hot-reloaded model.
//!
//! All artifacts stay under `target/`; nothing is written to the repo root.
//!
//! Run with: `cargo run --release --example stream`

use std::time::{Duration, Instant};

use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::{
    DiskConfig, EdgeStream, ModelConfig, ServeConfig, Session, Storage, StreamConfig, Telemetry,
    TemporalLinkPredictionTask, TrainConfig,
};

fn main() -> marius::Result<()> {
    let ckpt_dir = std::path::Path::new("target/stream-example/checkpoints");
    let _ = std::fs::remove_dir_all(ckpt_dir);

    // 1. The base dataset and the stream that will grow it. Batch k of an
    //    EdgeStream is a pure function of (seed, k), so the edge the last
    //    ingest cycle will deliver can be named before anything trains.
    let spec = DatasetSpec::fb15k_237().scaled(0.02);
    let data = ScaledDataset::generate(&spec, 7);
    let stream_cfg = StreamConfig::new(23, 64, 2, 1, 2);
    let stream = EdgeStream::new(23, data.num_nodes(), spec.num_relations, 64);
    // Phase 1 (two cycles, one ingest boundary) applies batches 0 and 1;
    // batch 2 arrives only in phase 2, after the server is up.
    let future_edge = stream.batch(2)[0];
    assert!(
        !data.graph.edges().contains(&future_edge)
            && !stream.batch(0).contains(&future_edge)
            && !stream.batch(1).contains(&future_edge),
        "picked a future edge that already exists at server startup"
    );
    println!(
        "Base graph: {} nodes, {} edges. Streamed edge ({} -[{}]-> {}) does not exist yet.",
        data.num_nodes(),
        data.graph.edges().len(),
        future_edge.src,
        future_edge.rel,
        future_edge.dst
    );

    // 2. Phase 1: two fine-tuning epochs with one ingest boundary between
    //    them, checkpointed every epoch — enough for a server to come up on
    //    a model that has never seen `future_edge`.
    let telemetry = Telemetry::enabled();
    let mut train = TrainConfig::quick(1, 7);
    train.batch_size = 256;
    train.num_negatives = 32;
    let mut session = Session::builder()
        .task(TemporalLinkPredictionTask)
        .dataset(data)
        .model(ModelConfig::paper_distmult(16))
        .train(train)
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .checkpoint_to(ckpt_dir, 1)
        .telemetry(&telemetry)
        .build()?;
    session.stream(stream_cfg)?;

    // 3. Start a watching server on the checkpoint directory. It serves the
    //    phase-1 model — trained before any streamed edge existed — and will
    //    hot-swap every version the extended run publishes.
    let (server, watcher) =
        session.serve_watching(ServeConfig::in_memory(), Duration::from_millis(10))?;
    println!(
        "serve_watching up on epoch {} ({} nodes x {} dims)",
        server.epoch(),
        server.num_nodes(),
        server.dim()
    );

    // 4. Phase 2: extend the streamed run by two more cycles. The boundary
    //    after epoch 2 ingests batches 2 and 3 — the first delivers
    //    `future_edge` — fine-tunes, and checkpoints; the watcher follows.
    let extended = StreamConfig::new(23, 64, 2, 1, 4);
    let mut resumed = Session::<TemporalLinkPredictionTask>::resume_streamed(ckpt_dir, extended)?;
    let report = resumed.train()?;
    println!("{}", report.to_table());
    let ingested: u64 = report.epochs.iter().map(|e| e.edges_ingested).sum();
    println!("continuous loop ingested {ingested} edges across the run");

    // 5. Wait for the watcher to hot-swap to the final fine-tuned epoch,
    //    then answer a query over the edge that did not exist at startup.
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.epoch() != report.epochs.len() {
        assert!(Instant::now() < deadline, "watcher never caught up");
        std::thread::sleep(Duration::from_millis(10));
    }
    let score = server.score_pairs(&[(future_edge.src, future_edge.rel, future_edge.dst)])?[0];
    println!(
        "epoch {} serves the streamed edge ({} -[{}]-> {}): score {score:+.4}",
        server.epoch(),
        future_edge.src,
        future_edge.rel,
        future_edge.dst
    );
    watcher.stop();

    // 6. The ingest counters summarise the loop's storage-side work.
    let snap = telemetry.metrics_snapshot();
    for key in [
        "ingest.batches_staged",
        "ingest.deltas_applied",
        "ingest.edges_appended",
    ] {
        println!("  {key:<24} {}", snap.counter(key).unwrap_or(0));
    }
    std::fs::create_dir_all("target")?;
    telemetry.write_metrics_json("target/stream_metrics.json")?;
    println!("wrote target/stream_metrics.json");
    Ok(())
}
