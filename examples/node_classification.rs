//! Node classification with a three-layer GraphSage GNN, in memory and
//! out-of-core (the §5.2 training-node caching policy), through the
//! `marius::Session` facade with the task switched to
//! [`marius::NodeClassificationTask`].
//!
//! Uses an OGBN-Arxiv-shaped synthetic graph. The disk run partitions the graph,
//! caches the partitions holding labeled training nodes in the buffer for the
//! whole epoch, and reports the IO it performed alongside accuracy — the
//! workload behind Table 3 of the paper, at laptop scale.
//!
//! Run with: `cargo run --release --example node_classification`

use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::{DiskConfig, ModelConfig, NodeClassificationTask, Session, Storage, TrainConfig};

fn main() {
    let spec = DatasetSpec::ogbn_arxiv().scaled(0.02);
    println!(
        "Generating {}: {} nodes, {} edges, {} classes, {} features",
        spec.name,
        spec.num_nodes,
        spec.num_edges,
        spec.num_classes.unwrap(),
        spec.feat_dim
    );
    let data = ScaledDataset::generate(&spec, 7);

    let mut model = ModelConfig::paper_node_classification(spec.feat_dim, 32);
    model.num_layers = 2;
    model.fanouts = vec![10, 10];
    let mut train = TrainConfig::quick(3, 7);
    train.batch_size = 256;

    let run = |label: &str, storage: Storage| {
        println!("== {label} ==");
        let mut session = Session::builder()
            .task(NodeClassificationTask)
            .dataset(data.clone())
            .model(model.clone())
            .train(train.clone())
            .storage(storage)
            .build()
            .expect("valid session configuration");
        let report = session.train().expect("training");
        println!("{}", report.to_table());
        report
    };

    let mem = run("In-memory training (M-GNN_Mem)", Storage::InMemory);
    let disk = run(
        "Disk-based training with training-node caching (M-GNN_Disk)",
        Storage::Disk(DiskConfig::node_cache(8, 6)),
    );

    println!(
        "accuracy: in-memory {:.4} vs disk {:.4}; disk read {:.1} MiB/epoch",
        mem.final_metric(),
        disk.final_metric(),
        disk.epochs.last().map(|e| e.io_bytes_read).unwrap_or(0) as f64 / (1024.0 * 1024.0)
    );
}
