//! Offline subset of the `criterion` benchmarking API.
//!
//! Implements the slice used by `crates/bench/benches/kernels.rs`:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! `criterion_group!`/`criterion_main!`, and [`black_box`]. Measurement is a
//! simple warm-up + timed-batch mean (no statistics, HTML reports, or
//! comparison to saved baselines); results print as `name: mean time/iter`.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    config: MeasurementConfig,
    /// Mean time per iteration of the last `iter` call.
    last_mean: Duration,
    iters: u64,
}

#[derive(Debug, Clone, Copy)]
struct MeasurementConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Bencher {
    /// Times `routine`, first warming up, then averaging over enough
    /// iterations to fill the configured measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.config.measurement_time.as_secs_f64();
        let total_iters =
            ((budget / per_iter.max(1e-9)) as u64).clamp(self.config.sample_size as u64, 5_000_000);

        let start = Instant::now();
        for _ in 0..total_iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.last_mean = elapsed / total_iters.max(1) as u32;
        self.iters = total_iters;
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    config: MeasurementConfig,
    /// In `--test` mode (as passed by `cargo test`) every body runs once.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            config: MeasurementConfig::default(),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the nominal sample size (used as the minimum iteration count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the warm-up window per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        if self.test_mode {
            // Smoke-run the body once with a minimal window.
            let mut b = Bencher {
                config: MeasurementConfig {
                    sample_size: 1,
                    measurement_time: Duration::from_millis(1),
                    warm_up_time: Duration::from_millis(1),
                },
                last_mean: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            println!("test {label} ... ok");
            return;
        }
        let mut b = Bencher {
            config: self.config,
            last_mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        println!(
            "{label:<40} {:>12}/iter  ({} iterations)",
            format_duration(b.last_mean),
            b.iters
        );
    }

    /// Benchmarks a single function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labelled by `id` within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        self.criterion.run_one(&label, |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, optionally with a custom config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        c.test_mode = false;
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(5)).contains("µs"));
        assert!(format_duration(Duration::from_millis(5)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains("s"));
    }
}
