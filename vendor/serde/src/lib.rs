//! Offline shim for the `serde` facade.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros from the
//! vendored `serde_derive` so `#[derive(Serialize, Deserialize)]` compiles.
//! The trait definitions exist purely as markers; no serialization framework
//! is provided (the build environment cannot fetch the real crate).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in this shim).
pub trait SerializeMarker {}

/// Marker trait mirroring `serde::Deserialize` (no methods in this shim).
pub trait DeserializeMarker {}
