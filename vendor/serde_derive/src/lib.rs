//! Offline no-op derive macros for the vendored `serde` shim.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as markers on
//! config structs; nothing serializes at runtime, so the derives expand to
//! nothing. If real serialization is ever needed, replace the `vendor/serde*`
//! crates with the upstream ones.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
