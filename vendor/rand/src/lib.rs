//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors
//! the small slice of the `rand 0.8` API the repository actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`seq::SliceRandom`] (`shuffle`, `choose`) and
//! [`seq::index::sample`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic for a given seed, which is all the reproduction's
//! experiments and tests rely on (no code depends on the upstream value
//! stream).

/// Low-level entropy source: a stream of `u64`/`u32` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types that can be produced uniformly by `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A half-open or inclusive range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing random-value API, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        <f64 as Standard>::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministically).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: used to stretch a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** with SplitMix64
    /// seeding. (The upstream `StdRng` is a different algorithm; nothing in
    /// this workspace depends on the exact value stream.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut seed);
            }
            // xoshiro state must not be all zero; SplitMix64 of any seed never
            // produces four zero words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }

        /// The generator's raw xoshiro256** state words. Together with
        /// [`StdRng::from_raw_state`] this lets callers checkpoint and restore
        /// the exact position of a random stream (upstream `rand` exposes the
        /// same capability through serde on the core RNGs).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at the exact stream position captured by
        /// [`StdRng::state`]. An all-zero state (never produced by a real
        /// generator) is remapped to a valid non-zero state.
        pub fn from_raw_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return StdRng::from_state(0);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API familiarity; identical to [`StdRng`] here.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    pub mod index {
        //! Index sampling without replacement.

        use super::super::Rng;

        /// The result of [`sample`]: a list of distinct indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            /// The indices as a vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indices from `0..length` uniformly.
        ///
        /// Panics if `amount > length` (matching upstream behaviour).
        pub fn sample<R: Rng + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from 0..{length}"
            );
            // Partial Fisher–Yates over an index table: O(length) memory but the
            // call sites only use it with small neighbour lists.
            let mut indices: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                indices.swap(i, j);
            }
            indices.truncate(amount);
            IndexVec(indices)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::index::sample;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let d = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn index_sample_is_distinct_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(4);
        let idx = sample(&mut rng, 100, 10).into_vec();
        assert_eq!(idx.len(), 10);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        assert!(sorted.iter().all(|&i| i < 100));
        // Every index of a small domain eventually appears.
        let mut seen = [false; 5];
        for _ in 0..200 {
            for i in sample(&mut rng, 5, 2) {
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn raw_state_roundtrip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            let _ = a.gen::<u64>();
        }
        let snapshot = a.state();
        let mut b = StdRng::from_raw_state(snapshot);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        // The all-zero guard still yields a working generator.
        let mut z = StdRng::from_raw_state([0; 4]);
        let _ = z.gen::<u64>();
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let dynrng: &mut StdRng = &mut rng;
        assert!(draw(dynrng) < 100);
    }
}
