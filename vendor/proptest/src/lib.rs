//! Offline subset of the `proptest` property-testing crate.
//!
//! Supports the surface this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`strategy::Just`], `prop_oneof!`,
//! the `proptest!`
//! macro with `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//! Generation is driven by the vendored deterministic `rand` shim; there is no
//! shrinking — a failing case panics with the generated values, and the
//! per-test deterministic seeding makes every failure reproducible.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// The result of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options` (must be non-empty).
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A length specification: exact, half-open, or inclusive.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    //! The usual imports for writing property tests.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

/// Asserts a condition inside a property test (no shrinking: plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(Box::new($option)),+];
        $crate::strategy::Union::new(options)
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute comes from the input) running the body
/// over `cases` generated inputs with deterministic per-test seeding.
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)) => {};
    (@cfg ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            // Deterministic per-test seed: derived from the test name so
            // different tests explore different inputs.
            let name_hash: u64 = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                });
            for case in 0..config.cases as u64 {
                let mut proptest_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                    name_hash.wrapping_add(case),
                );
                $(let $pat = ($strat).generate(&mut proptest_rng);)+
                $body
            }
        }
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 10u32..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(v in pair(), x in 0usize..5) {
            prop_assert!(v.0 < 10 && (10..20).contains(&v.1));
            prop_assert!(x < 5);
        }

        #[test]
        fn vec_and_map(xs in collection::vec(0u64..100, 1..20).prop_map(|mut v| { v.sort_unstable(); v })) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn flat_map_and_oneof(
            (len, xs) in (1usize..6).prop_flat_map(|n| (Just(n), collection::vec(0u8..3, n))),
            pick in prop_oneof![Just(1u8), Just(2u8)],
        ) {
            prop_assert_eq!(xs.len(), len);
            prop_assert!(pick == 1 || pick == 2);
        }
    }
}
