//! Golden streamed-run suite (ISSUE 10): the continuous-training loop's
//! determinism and serving obligations.
//!
//! A streamed run — ingest seeded edge batches at epoch boundaries, fine-tune
//! between them — must be **bit-identical** across reruns, across the
//! sequential and pipelined executors, and when resumed from a mid-loop
//! checkpoint (the manifest's stream cursor replayed over the base dataset).
//! And a `serve_watching` server following the run's checkpoint directory
//! must answer every query exactly like a fresh `Server::from_checkpoint`
//! oracle, epoch by epoch.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::graph::{NodeId, RelId};
use marius::{
    DiskConfig, EpochReport, ExperimentReport, ModelConfig, PipelineConfig, Prediction,
    ServeConfig, Server, Session, Storage, StorageError, StreamConfig, Telemetry,
    TemporalLinkPredictionTask, TrainConfig, ZipfWorkload,
};

fn dataset() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.015), 3)
}

fn model() -> ModelConfig {
    ModelConfig::paper_distmult(8)
}

fn train_config() -> TrainConfig {
    // The epoch target is overridden by `Session::stream` (cycles × epochs
    // per cycle); only the seed and batch geometry matter here.
    let mut train = TrainConfig::quick(1, 9);
    train.batch_size = 128;
    train.num_negatives = 32;
    train.eval_negatives = 64;
    train
}

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "marius-stream-test-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Loss/metric/examples/ingest stamps must match bit for bit, epoch by epoch.
fn assert_bit_identical(a: &ExperimentReport, b: &ExperimentReport, label: &str) {
    assert_eq!(a.epochs.len(), b.epochs.len(), "{label}: epoch count");
    for (x, y) in a.epochs.iter().zip(b.epochs.iter()) {
        assert_eq!(
            x.loss.to_bits(),
            y.loss.to_bits(),
            "{label}: epoch {} loss {} != {}",
            x.epoch,
            x.loss,
            y.loss
        );
        assert_eq!(
            x.metric.to_bits(),
            y.metric.to_bits(),
            "{label}: epoch {} metric {} != {}",
            x.epoch,
            x.metric,
            y.metric
        );
        assert_eq!(
            x.examples, y.examples,
            "{label}: epoch {} examples",
            x.epoch
        );
        assert_eq!(
            x.edges_ingested, y.edges_ingested,
            "{label}: epoch {} edges_ingested",
            x.epoch
        );
    }
}

#[derive(Debug, Clone)]
enum Query {
    Pairwise(Vec<(NodeId, RelId, NodeId)>),
    TopK(NodeId, RelId),
    Knn(NodeId),
}

fn make_queries(count: usize, num_nodes: u64, num_relations: u32, seed: u64) -> Vec<Query> {
    let mut workload = ZipfWorkload::new(num_nodes, num_relations, 1.0, seed);
    (0..count)
        .map(|i| match i % 3 {
            0 => Query::Pairwise((0..8).map(|_| workload.next_triple()).collect()),
            1 => {
                let (src, rel, _) = workload.next_triple();
                Query::TopK(src, rel)
            }
            _ => Query::Knn(workload.next_node()),
        })
        .collect()
}

/// Runs one query and encodes the answer as exact bit patterns, so equality
/// comparisons are bit-identity, not approximate.
fn run_query(server: &Server, query: &Query) -> Vec<u64> {
    fn encode(preds: &[Prediction]) -> Vec<u64> {
        preds
            .iter()
            .flat_map(|p| [p.node, p.score.to_bits() as u64])
            .collect()
    }
    match query {
        Query::Pairwise(triples) => server
            .score_pairs(triples)
            .unwrap()
            .iter()
            .map(|s| s.to_bits() as u64)
            .collect(),
        Query::TopK(src, rel) => encode(&server.top_k(*src, *rel, 10).unwrap()),
        Query::Knn(node) => encode(&server.knn(*node, 10).unwrap()),
    }
}

/// One streamed run: temporal task, out-of-core COMET storage, the given
/// executor, `cfg`'s ingest/fine-tune loop.
fn streamed_run(
    cfg: StreamConfig,
    pipeline: PipelineConfig,
    telemetry: &Telemetry,
) -> ExperimentReport {
    let mut session = Session::builder()
        .task(TemporalLinkPredictionTask)
        .dataset(dataset())
        .model(model())
        .train(train_config())
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .pipeline(pipeline)
        .telemetry(telemetry)
        .build()
        .unwrap();
    session.stream(cfg).unwrap()
}

/// Reruns and the sequential/pipelined executor pair produce bit-identical
/// trajectories; `edges_ingested` is stamped exactly at ingest boundaries;
/// the `ingest.*` counters account for every staged delta.
#[test]
fn streamed_run_is_bit_identical_across_reruns_and_executors() {
    // 3 cycles × 1 epoch, 2 batches of 32 per boundary; the final boundary
    // never ingests, so epochs 0 and 1 grow the graph and epoch 2 does not.
    let cfg = StreamConfig::new(11, 32, 2, 1, 3);

    let telemetry = Telemetry::enabled();
    let first = streamed_run(cfg, PipelineConfig::disabled(), &telemetry);
    let rerun = streamed_run(cfg, PipelineConfig::disabled(), &Telemetry::disabled());
    let piped = streamed_run(cfg, PipelineConfig::with_workers(2), &Telemetry::disabled());

    assert_bit_identical(&first, &rerun, "rerun");
    assert_bit_identical(&first, &piped, "sequential vs pipelined");

    let stamps: Vec<u64> = first.epochs.iter().map(|e| e.edges_ingested).collect();
    assert_eq!(stamps, vec![64, 64, 0], "ingest stamps at boundaries only");

    assert_eq!(telemetry.counter("ingest.edges_appended").get(), 128);
    assert_eq!(telemetry.counter("ingest.batches_staged").get(), 4);
    assert_eq!(telemetry.counter("ingest.deltas_applied").get(), 4);
    assert!(telemetry.counter("ingest.apply_ns").get() > 0);
}

/// An interrupted streamed run resumed via `Session::resume_streamed`
/// reproduces the uninterrupted run bit for bit — including the
/// `edges_ingested` stamps of the already-completed epochs, which round-trip
/// through the checkpoint manifest.
#[test]
fn resumed_streamed_run_matches_the_uninterrupted_run() {
    // 3 cycles × 2 epochs = 6 total; ingest boundaries at epochs 1 and 3.
    let cfg = StreamConfig::new(13, 24, 2, 2, 3);

    let full_dir = temp_dir("full");
    let mut full_session = Session::builder()
        .task(TemporalLinkPredictionTask)
        .dataset(dataset())
        .model(model())
        .train(train_config())
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .checkpoint_to(&full_dir, 1)
        .build()
        .unwrap();
    let full = full_session.stream(cfg).unwrap();

    // The interrupted twin: the epoch hook fails after epoch 3's training and
    // ingest but *before* that boundary's checkpoint, so the newest
    // checkpoint on disk is epoch 2's — a genuine mid-loop cut.
    let int_dir = temp_dir("interrupted");
    let mut interrupted = Session::builder()
        .task(TemporalLinkPredictionTask)
        .dataset(dataset())
        .model(model())
        .train(train_config())
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .checkpoint_to(&int_dir, 1)
        .on_epoch_fallible(|epoch| {
            if epoch.epoch == 3 {
                Err(StorageError::checkpoint("simulated operator interruption"))
            } else {
                Ok(())
            }
        })
        .build()
        .unwrap();
    let err = interrupted.stream(cfg).unwrap_err();
    assert!(format!("{err}").contains("interruption"));

    let mut resumed =
        Session::<TemporalLinkPredictionTask>::resume_streamed(&int_dir, cfg).unwrap();
    let report = resumed.train().unwrap();
    assert_bit_identical(&full, &report, "interrupt + resume_streamed");

    let _ = std::fs::remove_dir_all(&full_dir);
    let _ = std::fs::remove_dir_all(&int_dir);
}

/// `resume_streamed` rejects a frozen-dataset checkpoint and a cursor from a
/// different stream, instead of silently diverging.
#[test]
fn resume_streamed_rejects_foreign_checkpoints() {
    let dir = temp_dir("frozen");
    let mut frozen = Session::builder()
        .task(TemporalLinkPredictionTask)
        .dataset(dataset())
        .model(model())
        .train({
            let mut t = train_config();
            t.epochs = 1;
            t
        })
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .checkpoint_to(&dir, 1)
        .build()
        .unwrap();
    frozen.train().unwrap();

    let err = match Session::<TemporalLinkPredictionTask>::resume_streamed(
        &dir,
        StreamConfig::new(1, 8, 1, 1, 2),
    ) {
        Ok(_) => panic!("frozen-dataset checkpoint accepted"),
        Err(e) => e,
    };
    assert!(format!("{err}").contains("no stream cursor"));

    // A streamed checkpoint, resumed with the wrong stream seed.
    let sdir = temp_dir("foreign-seed");
    let cfg = StreamConfig::new(5, 16, 1, 1, 2);
    let mut streamed = Session::builder()
        .task(TemporalLinkPredictionTask)
        .dataset(dataset())
        .model(model())
        .train(train_config())
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .checkpoint_to(&sdir, 1)
        .build()
        .unwrap();
    streamed.stream(cfg).unwrap();
    let err = match Session::<TemporalLinkPredictionTask>::resume_streamed(
        &sdir,
        StreamConfig::new(6, 16, 1, 1, 2),
    ) {
        Ok(_) => panic!("foreign stream seed accepted"),
        Err(e) => e,
    };
    assert!(format!("{err}").contains("does not match"));

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&sdir);
}

/// A server over the run's checkpoint directory, hot-reloaded at every epoch
/// boundary, answers bit-for-bit like a fresh `Server::from_checkpoint`
/// oracle; and a `serve_watching` watcher follows an extended streamed run
/// live to its final fine-tuned epoch.
#[test]
fn serve_watching_matches_a_fresh_oracle_for_every_fine_tuned_epoch() {
    let dir = temp_dir("serve");
    let cfg = StreamConfig::new(17, 24, 1, 1, 3);

    // Per-epoch leg: the hook runs before the boundary's checkpoint is
    // published, so at epoch e the newest on-disk version is epoch e-1's.
    // Reload the long-lived server there and race it against a fresh oracle.
    let served: Arc<Mutex<Option<Server>>> = Arc::new(Mutex::new(None));
    let compared: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let hook = {
        let dir = dir.clone();
        let served = Arc::clone(&served);
        let compared = Arc::clone(&compared);
        move |epoch: &EpochReport| {
            if epoch.epoch == 0 {
                return; // nothing published yet
            }
            let mut slot = served.lock().unwrap();
            let server = slot.get_or_insert_with(|| Server::from_checkpoint(&dir).unwrap());
            server.reload().unwrap();
            let oracle = Server::from_checkpoint(&dir).unwrap();
            assert_eq!(server.epoch(), oracle.epoch(), "reload lagged the oracle");
            let queries = make_queries(12, oracle.num_nodes(), oracle.num_relations() as u32, 99);
            for (i, query) in queries.iter().enumerate() {
                assert_eq!(
                    run_query(server, query),
                    run_query(&oracle, query),
                    "epoch {}: query {i} diverged from the oracle",
                    server.epoch()
                );
            }
            compared.lock().unwrap().push(server.epoch());
        }
    };

    let mut session = Session::builder()
        .task(TemporalLinkPredictionTask)
        .dataset(dataset())
        .model(model())
        .train(train_config())
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .checkpoint_to(&dir, 1)
        .on_epoch(hook)
        .build()
        .unwrap();
    // Server::epoch() reports epochs *completed*: the hook at epoch index e
    // serves the boundary checkpoint of epoch e-1, i.e. e completed epochs.
    session.stream(cfg).unwrap();
    assert_eq!(*compared.lock().unwrap(), vec![1, 2]);

    // Live leg: a watcher spawned on the finished run's directory follows an
    // *extended* streamed resume (two more cycles) as it checkpoints.
    let (watched, watcher) = session
        .serve_watching(ServeConfig::in_memory(), Duration::from_millis(5))
        .unwrap();
    assert_eq!(watched.epoch(), 3);

    let extended = StreamConfig::new(17, 24, 1, 1, 5);
    let mut resumed =
        Session::<TemporalLinkPredictionTask>::resume_streamed(&dir, extended).unwrap();
    resumed.train().unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    while watched.epoch() != 5 {
        assert!(
            Instant::now() < deadline,
            "watcher never hot-swapped to the final epoch (stuck at {})",
            watched.epoch()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let oracle = Server::from_checkpoint(&dir).unwrap();
    assert_eq!(oracle.epoch(), 5);
    let queries = make_queries(12, oracle.num_nodes(), oracle.num_relations() as u32, 41);
    for (i, query) in queries.iter().enumerate() {
        assert_eq!(
            run_query(&watched, query),
            run_query(&oracle, query),
            "watched server: query {i} diverged from the final-epoch oracle"
        );
    }
    watcher.stop();

    let _ = std::fs::remove_dir_all(&dir);
}
