//! Serve chaos suite: the read path under injected faults, overload, and
//! hot reload.
//!
//! The contract under test is the serving robustness invariant: faults
//! degrade service *predictably, never into wrong answers*. Concretely —
//!
//! * a seeded flaky device serves every query **bit-identical** to a
//!   fault-free in-memory oracle, with nonzero, seed-deterministic
//!   `server.error.transient`/retry counters;
//! * a permanent device failure surfaces as a typed
//!   [`ServeError::Permanent`], never a panic;
//! * a hot reload during a 4-thread query storm answers every query
//!   bit-identical to exactly one of the two checkpoint oracles — no torn or
//!   erroring queries during the swap;
//! * overload sheds and deadlines trip as typed rejections while admitted
//!   queries keep answering bit-exactly;
//! * a corrupted cached block quarantines its partition and the query serves
//!   verified bytes from disk.
//!
//! Seeds come from `MARIUS_SERVE_CHAOS_SEED` (a single u64) when set — the
//! CI serve-chaos matrix fans one job per seed — else a fixed local pair.
//! Set `MARIUS_SERVE_CHAOS_JSON=1` to emit `BENCH_serve_chaos_<seed>.json`
//! counter evidence per seed.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::graph::{NodeId, RelId};
use marius::{
    DiskConfig, IoFaultPlan, LinkPredictionTask, ModelConfig, Prediction, RetryPolicy, ServeConfig,
    ServeError, Server, Session, Storage, Telemetry, TrainConfig, ZipfWorkload,
};

fn serve_chaos_seeds() -> Vec<u64> {
    match std::env::var("MARIUS_SERVE_CHAOS_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("MARIUS_SERVE_CHAOS_SEED must be a u64")],
        Err(_) => vec![11, 4242],
    }
}

fn tiny_lp() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.01), 5)
}

fn quick_train(epochs: usize) -> TrainConfig {
    let mut train = TrainConfig::quick(epochs, 5);
    train.batch_size = 128;
    train.num_negatives = 16;
    train.eval_negatives = 32;
    train
}

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "marius-serve-chaos-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Trains a tiny decoder-only model out of core and checkpoints it into `dir`.
fn train_disk_checkpoint(dir: &Path, epochs: usize) {
    let mut session = Session::builder()
        .dataset(tiny_lp())
        .model(ModelConfig::paper_distmult(8))
        .train(quick_train(epochs))
        .storage(Storage::Disk(DiskConfig::comet(8, 2)))
        .checkpoint_to(dir, 1)
        .build()
        .unwrap();
    session.train().unwrap();
}

/// Admits some but not all of the eight partitions, so flaky disk reads stay
/// on the hot path (bypassed partitions re-read the device every touch).
const PARTIAL_BUDGET: u64 = 1200;

#[derive(Debug, Clone)]
enum Query {
    Pairwise(Vec<(NodeId, RelId, NodeId)>),
    TopK(NodeId, RelId),
    Knn(NodeId),
}

fn make_queries(count: usize, num_nodes: u64, num_relations: u32, seed: u64) -> Vec<Query> {
    let mut workload = ZipfWorkload::new(num_nodes, num_relations, 1.0, seed);
    (0..count)
        .map(|i| match i % 3 {
            0 => Query::Pairwise((0..8).map(|_| workload.next_triple()).collect()),
            1 => {
                let (src, rel, _) = workload.next_triple();
                Query::TopK(src, rel)
            }
            _ => Query::Knn(workload.next_node()),
        })
        .collect()
}

/// Runs one query and encodes the answer as exact bit patterns, so equality
/// comparisons are bit-identity, not approximate.
fn try_query(server: &Server, query: &Query) -> Result<Vec<u64>, ServeError> {
    fn encode(preds: &[Prediction]) -> Vec<u64> {
        preds
            .iter()
            .flat_map(|p| [p.node, p.score.to_bits() as u64])
            .collect()
    }
    Ok(match query {
        Query::Pairwise(triples) => server
            .score_pairs(triples)?
            .iter()
            .map(|s| s.to_bits() as u64)
            .collect(),
        Query::TopK(src, rel) => encode(&server.top_k(*src, *rel, 10)?),
        Query::Knn(node) => encode(&server.knn(*node, 10)?),
    })
}

fn run_query(server: &Server, query: &Query) -> Vec<u64> {
    try_query(server, query).expect("query failed")
}

/// `(query index, bit-encoded answer or typed rejection)` per attempt.
type Outcome = (usize, Result<Vec<u64>, ServeError>);

/// A read-fault regime tuned so the *store-level* retry budget (1 retry)
/// gets exhausted a few times per workload — each exhaustion must be
/// absorbed by the serve-level whole-query retry, counting into
/// `server.error.transient` without ever failing a query.
fn exhausting_plan(seed: u64) -> IoFaultPlan {
    IoFaultPlan {
        read_fail: 0.15,
        ..IoFaultPlan::quiet(seed)
    }
}

/// Fault-free oracle answers for a fixed query workload over `dir`.
fn oracle_answers(dir: &Path, queries: &[Query]) -> Vec<Vec<u64>> {
    let oracle = Server::from_checkpoint(dir).unwrap();
    queries.iter().map(|q| run_query(&oracle, q)).collect()
}

/// Flaky-disk serving, part A: single-threaded with a deliberately tight
/// store retry budget, so store-budget exhaustions actually occur and the
/// serve layer's whole-query retry has to absorb them. Every answer is
/// bit-identical to the fault-free oracle, and every degradation counter is
/// deterministic for the seed (asserted by running the workload twice).
#[test]
fn flaky_reads_serve_bit_identical_with_deterministic_counters() {
    let dir = temp_dir("flaky-tight");
    train_disk_checkpoint(&dir, 2);

    for seed in serve_chaos_seeds() {
        let queries = {
            let oracle = Server::from_checkpoint(&dir).unwrap();
            make_queries(36, oracle.num_nodes(), oracle.num_relations() as u32, seed)
        };
        let expected = oracle_answers(&dir, &queries);

        let run = || {
            let telemetry = Telemetry::enabled();
            let tight = RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default_transient()
            };
            let server = Server::from_checkpoint_with(
                &dir,
                ServeConfig::read_cache(PARTIAL_BUDGET)
                    .with_telemetry(&telemetry)
                    .with_fault_plan(exhausting_plan(seed))
                    .with_retry_policy(tight)
                    .with_query_retries(8),
            )
            .unwrap();
            for (i, query) in queries.iter().enumerate() {
                let got = try_query(&server, query)
                    .unwrap_or_else(|e| panic!("seed {seed} query {i} failed under faults: {e}"));
                assert_eq!(got, expected[i], "seed {seed} query {i} diverged");
            }
            let health = server.health();
            let snap = telemetry.metrics_snapshot();
            assert_eq!(
                snap.counter("server.error.transient").unwrap_or(0),
                health.transient_errors,
                "telemetry and health disagree on transient errors"
            );
            assert_eq!(health.permanent_errors, 0, "seed {seed}");
            (
                health.transient_errors,
                health.store_retries,
                health.faults_injected,
            )
        };

        let (transient_a, retries_a, faults_a) = run();
        let (transient_b, retries_b, faults_b) = run();
        assert_eq!(
            (transient_a, retries_a, faults_a),
            (transient_b, retries_b, faults_b),
            "seed {seed}: degradation counters must be deterministic"
        );
        assert!(transient_a > 0, "seed {seed}: no store-budget exhaustions");
        assert!(retries_a > 0, "seed {seed}: no store-level retries");
        assert!(faults_a > 0, "seed {seed}: no faults injected");

        if std::env::var("MARIUS_SERVE_CHAOS_JSON").as_deref() == Ok("1") {
            let json = format!(
                "{{\n  \"suite\": \"serve_chaos\",\n  \"seed\": {seed},\n  \
                 \"queries\": {},\n  \"transient_errors\": {transient_a},\n  \
                 \"store_retries\": {retries_a},\n  \"faults_injected\": {faults_a},\n  \
                 \"bit_identical_to_oracle\": true\n}}\n",
                queries.len()
            );
            std::fs::write(format!("BENCH_serve_chaos_{seed}.json"), json)
                .expect("write serve chaos evidence");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Flaky-disk serving, part B: a 4-thread storm under the *default* store
/// retry budget (4 retries > the plan's consecutive-failure cap of 2), so
/// every store read succeeds within budget regardless of interleaving —
/// queries never error and every answer is bit-identical to the oracle.
#[test]
fn flaky_reads_survive_a_concurrent_storm() {
    let dir = temp_dir("flaky-storm");
    train_disk_checkpoint(&dir, 2);

    for seed in serve_chaos_seeds() {
        let queries = {
            let oracle = Server::from_checkpoint(&dir).unwrap();
            make_queries(36, oracle.num_nodes(), oracle.num_relations() as u32, seed)
        };
        let expected = oracle_answers(&dir, &queries);

        let server = Server::from_checkpoint_with(
            &dir,
            ServeConfig::read_cache(PARTIAL_BUDGET).with_fault_plan(IoFaultPlan::flaky(seed)),
        )
        .unwrap();
        let results: Mutex<Vec<Option<Vec<u64>>>> = Mutex::new(vec![None; queries.len()]);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let server = &server;
                let queries = &queries;
                let results = &results;
                scope.spawn(move || {
                    for (i, query) in queries.iter().enumerate() {
                        if i % 4 == t {
                            let answer = run_query(server, query);
                            results.lock().unwrap()[i] = Some(answer);
                        }
                    }
                });
            }
        });
        for (i, (got, want)) in results
            .into_inner()
            .unwrap()
            .iter()
            .zip(&expected)
            .enumerate()
        {
            assert_eq!(
                got.as_ref().expect("every query answered"),
                want,
                "seed {seed} query {i} diverged under flaky storm"
            );
        }
        let injector = server.fault_injector().expect("injector attached");
        assert!(injector.faults_injected() > 0, "seed {seed}: quiet device");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// A dead device surfaces as a typed permanent error — counted, not panicked.
#[test]
fn permanent_fault_surfaces_as_typed_error() {
    let dir = temp_dir("permanent");
    train_disk_checkpoint(&dir, 2);

    // A shared quiet injector that the test arms *after* load, so the server
    // opens cleanly and only the query path hits the dead device. The tiny
    // budget keeps most partitions bypassing the cache (fresh disk reads).
    let injector = IoFaultPlan::quiet(3).build();
    let server = Server::from_checkpoint_with(
        &dir,
        ServeConfig::read_cache(1).with_fault_injector(injector.clone()),
    )
    .unwrap();

    // Healthy first: a full-scan query answers while the device is alive.
    let warm = server.top_k(0, 1, 5).unwrap();
    assert_eq!(warm.len(), 5);

    injector.arm_permanent(0);
    let err = server.top_k(0, 1, 5).unwrap_err();
    assert!(
        matches!(err, ServeError::Permanent { .. }),
        "expected a permanent serve error, got: {err}"
    );
    assert!(!err.is_transient());
    let health = server.health();
    assert!(health.permanent_errors >= 1, "{health:?}");
    assert_eq!(health.epoch, 2);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Hot reload under a 4-thread query storm: every answer is bit-identical to
/// exactly one of the two checkpoint oracles (the epoch it pinned), no query
/// errors during the swap, and the server lands on the new epoch.
#[test]
fn hot_reload_storm_answers_from_exactly_one_epoch() {
    let dir = temp_dir("reload-storm");
    train_disk_checkpoint(&dir, 2);

    let server =
        Server::from_checkpoint_with(&dir, ServeConfig::read_cache(PARTIAL_BUDGET)).unwrap();
    assert_eq!(server.epoch(), 2);
    let queries = make_queries(36, server.num_nodes(), server.num_relations() as u32, 17);
    let before = oracle_answers(&dir, &queries);

    // Publish epoch 3 while the epoch-2 server stays open.
    let mut resumed: Session<LinkPredictionTask> = Session::resume_from_until(&dir, 3).unwrap();
    resumed.train().unwrap();
    let after = oracle_answers(&dir, &queries);
    assert_ne!(
        before, after,
        "another epoch of training should move the embeddings"
    );

    // Storm: four threads loop the workload while the main thread swaps the
    // snapshot mid-flight. Answers are collected with the epoch-agnostic
    // contract: each must match one oracle *exactly* — no torn mixtures.
    let answers: Mutex<Vec<(usize, Vec<u64>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for t in 0..4 {
            let server = &server;
            let queries = &queries;
            let answers = &answers;
            scope.spawn(move || {
                for round in 0..3 {
                    for (i, query) in queries.iter().enumerate() {
                        if i % 4 == t {
                            let got = try_query(server, query).unwrap_or_else(|e| {
                                panic!("query {i} round {round} errored during reload: {e}")
                            });
                            answers.lock().unwrap().push((i, got));
                        }
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(5));
        let swapped = server.reload().unwrap();
        assert_eq!(swapped, Some(3), "reload should publish epoch 3");
    });

    for (i, got) in answers.into_inner().unwrap() {
        assert!(
            got == before[i] || got == after[i],
            "query {i} matches neither the epoch-2 nor the epoch-3 oracle"
        );
    }
    assert_eq!(server.epoch(), 3);
    assert_eq!(server.reload().unwrap(), None, "already newest");
    let health = server.health();
    assert_eq!(health.reloads, 1, "{health:?}");
    assert_eq!(health.reload_errors, 0, "{health:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// `Session::serve_watching` tracks a training run: the background watcher
/// hot-swaps the new checkpoint within a few polls, no restart needed.
#[test]
fn checkpoint_watcher_follows_continued_training() {
    let dir = temp_dir("watcher");
    let mut session = Session::builder()
        .dataset(tiny_lp())
        .model(ModelConfig::paper_distmult(8))
        .train(quick_train(2))
        .storage(Storage::Disk(DiskConfig::comet(8, 2)))
        .checkpoint_to(&dir, 1)
        .build()
        .unwrap();
    session.train().unwrap();

    let (server, watcher) = session
        .serve_watching(
            ServeConfig::read_cache(PARTIAL_BUDGET),
            Duration::from_millis(10),
        )
        .unwrap();
    assert_eq!(server.epoch(), 2);

    let mut resumed: Session<LinkPredictionTask> = Session::resume_from_until(&dir, 3).unwrap();
    resumed.train().unwrap();

    // The watcher polls every 10 ms; give it ample slack on a loaded box.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server.epoch() != 3 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.epoch(), 3, "watcher never picked up epoch 3");

    // The swapped-in snapshot answers bit-identically to a fresh oracle.
    let queries = make_queries(9, server.num_nodes(), server.num_relations() as u32, 23);
    let expected = oracle_answers(&dir, &queries);
    for (i, query) in queries.iter().enumerate() {
        assert_eq!(run_query(&server, query), expected[i], "query {i}");
    }
    watcher.stop();
    assert!(server.health().reloads >= 1);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Reload + retention: checkpoint pruning keeps the two newest versions, so
/// a server that opened the older retained epoch keeps serving (its version
/// directory survives the prune) and picks up the newest on reload.
#[test]
fn reload_survives_checkpoint_pruning() {
    let dir = temp_dir("retention");
    train_disk_checkpoint(&dir, 2);

    // Serving epoch 2 (the newest; epoch 1 is the older retained version).
    let server =
        Server::from_checkpoint_with(&dir, ServeConfig::read_cache(PARTIAL_BUDGET)).unwrap();
    let queries = make_queries(12, server.num_nodes(), server.num_relations() as u32, 41);
    let expected = oracle_answers(&dir, &queries);

    // Training to epoch 3 prunes epoch 1; epoch 2 — the one this server
    // holds — survives as the older retained version, so concurrent queries
    // keep answering bit-identically throughout the prune.
    std::thread::scope(|scope| {
        let server = &server;
        let queries = &queries;
        let expected = &expected;
        let trainer = scope.spawn(|| {
            let mut resumed: Session<LinkPredictionTask> =
                Session::resume_from_until(&dir, 3).unwrap();
            resumed.train().unwrap();
        });
        while !trainer.is_finished() {
            for (i, query) in queries.iter().enumerate() {
                assert_eq!(
                    run_query(server, query),
                    expected[i],
                    "query {i} diverged while training pruned old versions"
                );
            }
        }
    });
    assert!(
        dir.join("epoch-000002").is_dir() && dir.join("epoch-000003").is_dir(),
        "pruning should retain the two newest versions"
    );
    assert!(
        !dir.join("epoch-000001").is_dir(),
        "pruning should drop the third-newest version"
    );

    // The served snapshot is still epoch 2 until an explicit reload.
    assert_eq!(server.epoch(), 2);
    assert_eq!(server.reload().unwrap(), Some(3));
    let fresh = oracle_answers(&dir, &queries);
    for (i, query) in queries.iter().enumerate() {
        assert_eq!(run_query(&server, query), fresh[i], "post-reload query {i}");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control: a zero deadline trips deterministically as a typed
/// rejection, and a one-slot in-flight budget sheds a concurrent storm while
/// every admitted query still answers bit-identically to the oracle.
#[test]
fn overload_sheds_and_deadlines_trip_as_typed_rejections() {
    let dir = temp_dir("overload");
    train_disk_checkpoint(&dir, 2);

    // Zero deadline: every query is abandoned at its first chunk boundary.
    let strict =
        Server::from_checkpoint_with(&dir, ServeConfig::in_memory().with_deadline(Duration::ZERO))
            .unwrap();
    let err = strict.top_k(0, 1, 5).unwrap_err();
    assert!(
        matches!(err, ServeError::DeadlineExceeded { .. }),
        "expected a deadline rejection, got: {err}"
    );
    assert!(err.is_transient(), "deadline rejections are retryable");
    assert!(strict.health().deadline_exceeded >= 1);

    // One admission slot + a latency-spiking device stretches each query so
    // four hammering threads must collide: excess arrivals shed typed.
    let slow_plan = IoFaultPlan {
        latency_spike: 1.0,
        spike: Duration::from_micros(500),
        ..IoFaultPlan::quiet(9)
    };
    let server = Server::from_checkpoint_with(
        &dir,
        ServeConfig::read_cache(1)
            .with_fault_plan(slow_plan)
            .with_max_in_flight(1),
    )
    .unwrap();
    let oracle = Server::from_checkpoint(&dir).unwrap();
    let queries = make_queries(12, server.num_nodes(), server.num_relations() as u32, 77);
    let expected: Vec<Vec<u64>> = queries.iter().map(|q| run_query(&oracle, q)).collect();

    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let server = &server;
            let queries = &queries;
            let outcomes = &outcomes;
            scope.spawn(move || {
                for (i, query) in queries.iter().enumerate() {
                    let got = try_query(server, query);
                    outcomes.lock().unwrap().push((i, got));
                }
            });
        }
    });

    let outcomes = outcomes.into_inner().unwrap();
    let mut answered = 0usize;
    for (i, outcome) in &outcomes {
        match outcome {
            Ok(got) => {
                answered += 1;
                assert_eq!(got, &expected[*i], "admitted query {i} diverged");
            }
            Err(ServeError::Overloaded { .. }) => {}
            Err(other) => panic!("unexpected failure mode for query {i}: {other}"),
        }
    }
    let health = server.health();
    assert!(answered > 0, "at least the first admitted query answers");
    assert!(
        health.shed > 0,
        "a one-slot budget must shed a 4-thread storm"
    );
    assert_eq!(
        health.shed as usize + answered,
        outcomes.len(),
        "every query either answered or shed: {health:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Quarantine degraded mode end to end: corrupting a resident cached block
/// flips the partition to verified read-through — answers stay bit-identical
/// to the oracle and the quarantine is visible through health.
#[test]
fn corrupted_cache_block_quarantines_and_serves_verified_bytes() {
    let dir = temp_dir("quarantine");
    train_disk_checkpoint(&dir, 2);

    let telemetry = Telemetry::enabled();
    // Generous budget: all partitions admitted, so a full scan caches all.
    let server = Server::from_checkpoint_with(
        &dir,
        ServeConfig::read_cache(1 << 20).with_telemetry(&telemetry),
    )
    .unwrap();
    let queries = make_queries(12, server.num_nodes(), server.num_relations() as u32, 13);
    let expected = oracle_answers(&dir, &queries);

    // Warm the cache, then corrupt one resident block in place.
    for (i, query) in queries.iter().enumerate() {
        assert_eq!(run_query(&server, query), expected[i], "warmup query {i}");
    }
    let corrupted = (0..8).find(|&p| server.debug_corrupt_cached_partition(p));
    assert!(corrupted.is_some(), "no resident cached block to corrupt");

    // Every answer still matches the oracle: the poisoned hit is detected,
    // the partition quarantined, and the bytes re-read from disk.
    for (i, query) in queries.iter().enumerate() {
        assert_eq!(
            run_query(&server, query),
            expected[i],
            "query {i} served corrupt bytes"
        );
    }
    assert_eq!(server.cache_quarantined_partitions(), Some(1));
    let snap = telemetry.metrics_snapshot();
    assert_eq!(snap.counter("server.cache.quarantine"), Some(1));
    let health = server.health();
    assert_eq!(health.cache_quarantined_partitions, Some(1), "{health:?}");

    let _ = std::fs::remove_dir_all(&dir);
}
