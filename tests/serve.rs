//! End-to-end serving tests: checkpoint → `Server`, concurrent queries
//! bit-identical to a single-threaded oracle, deterministic cache telemetry,
//! and checkpoint relocation.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::graph::{NodeId, RelId};
use marius::{
    DiskConfig, LinkPredictionTask, ModelConfig, Prediction, ServeConfig, Server, Session, Storage,
    Telemetry, TrainConfig, ZipfWorkload,
};

fn tiny_lp() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.01), 5)
}

fn quick_train(epochs: usize) -> TrainConfig {
    let mut train = TrainConfig::quick(epochs, 5);
    train.batch_size = 128;
    train.num_negatives = 16;
    train.eval_negatives = 32;
    train
}

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "marius-serve-test-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Trains a tiny decoder-only model out of core and checkpoints it into `dir`.
fn train_disk_checkpoint(dir: &Path) {
    let mut session = Session::builder()
        .dataset(tiny_lp())
        .model(ModelConfig::paper_distmult(8))
        .train(quick_train(2))
        .storage(Storage::Disk(DiskConfig::comet(8, 2)))
        .checkpoint_to(dir, 1)
        .build()
        .unwrap();
    session.train().unwrap();
}

/// A byte budget that admits some but not all of the tiny checkpoint's eight
/// partitions, so hit, miss and bypass all occur.
const PARTIAL_BUDGET: u64 = 1200;

#[derive(Debug, Clone)]
enum Query {
    Pairwise(Vec<(NodeId, RelId, NodeId)>),
    TopK(NodeId, RelId),
    Knn(NodeId),
}

fn make_queries(count: usize, num_nodes: u64, num_relations: u32, seed: u64) -> Vec<Query> {
    let mut workload = ZipfWorkload::new(num_nodes, num_relations, 1.0, seed);
    (0..count)
        .map(|i| match i % 3 {
            0 => Query::Pairwise((0..8).map(|_| workload.next_triple()).collect()),
            1 => {
                let (src, rel, _) = workload.next_triple();
                Query::TopK(src, rel)
            }
            _ => Query::Knn(workload.next_node()),
        })
        .collect()
}

/// Runs one query and encodes the answer as exact bit patterns, so equality
/// comparisons are bit-identity, not approximate.
fn run_query(server: &Server, query: &Query) -> Vec<u64> {
    fn encode(preds: &[Prediction]) -> Vec<u64> {
        preds
            .iter()
            .flat_map(|p| [p.node, p.score.to_bits() as u64])
            .collect()
    }
    match query {
        Query::Pairwise(triples) => server
            .score_pairs(triples)
            .unwrap()
            .iter()
            .map(|s| s.to_bits() as u64)
            .collect(),
        Query::TopK(src, rel) => encode(&server.top_k(*src, *rel, 10).unwrap()),
        Query::Knn(node) => encode(&server.knn(*node, 10).unwrap()),
    }
}

#[test]
fn concurrent_queries_are_bit_identical_to_the_oracle() {
    let dir = temp_dir("concurrent");
    train_disk_checkpoint(&dir);

    // The oracle: single-threaded, fully in-memory backend.
    let oracle = Server::from_checkpoint(&dir).unwrap();
    let queries = make_queries(36, oracle.num_nodes(), oracle.num_relations() as u32, 99);
    let expected: Vec<Vec<u64>> = queries.iter().map(|q| run_query(&oracle, q)).collect();

    // Four threads over one shared out-of-core server, interleaved workload.
    let server =
        Server::from_checkpoint_with(&dir, ServeConfig::read_cache(PARTIAL_BUDGET)).unwrap();
    let results: Mutex<Vec<Option<Vec<u64>>>> = Mutex::new(vec![None; queries.len()]);
    std::thread::scope(|scope| {
        for t in 0..4 {
            let server = &server;
            let queries = &queries;
            let results = &results;
            scope.spawn(move || {
                for (i, query) in queries.iter().enumerate() {
                    if i % 4 == t {
                        let answer = run_query(server, query);
                        results.lock().unwrap()[i] = Some(answer);
                    }
                }
            });
        }
    });
    let results = results.into_inner().unwrap();
    for (i, (got, want)) in results.iter().zip(&expected).enumerate() {
        assert_eq!(
            got.as_ref().expect("every query answered"),
            want,
            "query {i} diverged from the oracle"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_telemetry_is_deterministic_for_a_fixed_zipf_seed() {
    let dir = temp_dir("telemetry");
    train_disk_checkpoint(&dir);

    let run = || {
        let telemetry = Telemetry::enabled();
        let server = Server::from_checkpoint_with(
            &dir,
            ServeConfig::read_cache(PARTIAL_BUDGET).with_telemetry(&telemetry),
        )
        .unwrap();
        let queries = make_queries(24, server.num_nodes(), server.num_relations() as u32, 7);
        for query in &queries {
            run_query(&server, query);
        }
        let snap = telemetry.metrics_snapshot();
        (
            snap.counter("server.cache.hit").unwrap_or(0),
            snap.counter("server.cache.miss").unwrap_or(0),
            snap.counter("server.cache.bypass").unwrap_or(0),
        )
    };
    let (hit_a, miss_a, bypass_a) = run();
    let (hit_b, miss_b, bypass_b) = run();
    assert_eq!((hit_a, miss_a, bypass_a), (hit_b, miss_b, bypass_b));
    // The partial budget makes all three outcomes occur: misses fill the
    // admitted set, hits re-touch it, bypasses hit the cold partitions.
    assert!(hit_a > 0, "expected cache hits, got {hit_a}");
    assert!(miss_a > 0, "expected cache misses, got {miss_a}");
    assert!(bypass_a > 0, "expected cache bypasses, got {bypass_a}");

    let _ = std::fs::remove_dir_all(&dir);
}

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.path().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

#[test]
fn relocated_checkpoint_serves_and_resumes_unchanged() {
    let original = temp_dir("relocate-src");
    train_disk_checkpoint(&original);

    let moved = temp_dir("relocate-dst");
    copy_tree(&original, &moved);

    // Same queries, both roots, both backends: answers must be bit-identical.
    let here = Server::from_checkpoint(&original).unwrap();
    let there =
        Server::from_checkpoint_with(&moved, ServeConfig::read_cache(PARTIAL_BUDGET)).unwrap();
    let queries = make_queries(12, here.num_nodes(), here.num_relations() as u32, 3);
    for (i, query) in queries.iter().enumerate() {
        assert_eq!(
            run_query(&here, query),
            run_query(&there, query),
            "query {i} diverged after relocation"
        );
    }
    drop(here);
    // Deleting the original proves the relocated copy is self-contained.
    std::fs::remove_dir_all(&original).unwrap();

    let mut resumed: Session<LinkPredictionTask> = Session::resume_from_until(&moved, 3).unwrap();
    let report = resumed.train().unwrap();
    assert_eq!(report.epochs.len(), 3);

    let _ = std::fs::remove_dir_all(&moved);
}

#[test]
fn session_serve_answers_ranked_queries_consistently() {
    let dir = temp_dir("session");
    let mut session = Session::builder()
        .dataset(tiny_lp())
        .model(ModelConfig::paper_distmult(8))
        .train(quick_train(1))
        .checkpoint_to(&dir, 1)
        .build()
        .unwrap();
    session.train().unwrap();

    let server = session.serve().unwrap();
    let (src, rel) = (0u64, 1u32);
    let top = server.top_k(src, rel, 10).unwrap();
    assert_eq!(top.len(), 10);
    for pair in top.windows(2) {
        assert!(
            pair[0].score > pair[1].score
                || (pair[0].score == pair[1].score && pair[0].node < pair[1].node),
            "top-k not ranked: {pair:?}"
        );
    }
    // Every ranked score must match the pairwise kernel bit-for-bit.
    for p in &top {
        let direct = server.score(src, rel, p.node).unwrap();
        assert_eq!(direct.to_bits(), p.score.to_bits());
    }
    // Restricting candidates to the winners reproduces the ranking.
    let ids: Vec<u64> = top.iter().map(|p| p.node).collect();
    let among = server.top_k_among(src, rel, 10, &ids).unwrap();
    assert_eq!(among, top);

    // k-NN excludes the query node and ranks deterministically.
    let neighbours = server.knn(3, 5).unwrap();
    assert_eq!(neighbours.len(), 5);
    assert!(neighbours.iter().all(|p| p.node != 3));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_rejects_unsupported_configurations() {
    // No checkpoint directory on the session.
    let mut session = Session::builder()
        .dataset(tiny_lp())
        .model(ModelConfig::paper_distmult(8))
        .train(quick_train(1))
        .build()
        .unwrap();
    session.train().unwrap();
    let err = session.serve().unwrap_err();
    assert!(format!("{err}").contains("checkpoint directory"), "{err}");

    // Encoder-bearing checkpoints have no serving semantics.
    let dir = temp_dir("reject-encoder");
    let mut session = Session::builder()
        .dataset(tiny_lp())
        .model(ModelConfig::paper_link_prediction_graphsage(8).shrunk(5, 8))
        .train(quick_train(1))
        .checkpoint_to(&dir, 1)
        .build()
        .unwrap();
    session.train().unwrap();
    let err = Server::from_checkpoint(&dir).unwrap_err();
    assert!(format!("{err}").contains("decoder-only"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);

    // Read-cache serving needs a partition snapshot.
    let dir = temp_dir("reject-mem");
    let mut session = Session::builder()
        .dataset(tiny_lp())
        .model(ModelConfig::paper_distmult(8))
        .train(quick_train(1))
        .checkpoint_to(&dir, 1)
        .build()
        .unwrap();
    session.train().unwrap();
    let err = Server::from_checkpoint_with(&dir, ServeConfig::read_cache(1 << 20)).unwrap_err();
    assert!(format!("{err}").contains("partition snapshot"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
