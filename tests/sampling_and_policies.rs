//! Cross-crate integration tests for the sampling data structures and the
//! disk-training policies on realistic generated graphs.

use marius_baselines::LayerwiseSampler;
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_graph::{InMemorySubgraph, Partitioner};
use marius_sampling::{MultiHopSampler, SamplingDirection};
use marius_storage::policy::ReplacementPolicy;
use marius_storage::{edge_permutation_bias, BetaPolicy, CometPolicy, InMemoryPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn kg_subgraph() -> (ScaledDataset, InMemorySubgraph) {
    let data = ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.05), 5);
    let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
    (data, subgraph)
}

/// Table 6's structural claim: DENSE samples strictly fewer nodes and edges than
/// layer-wise re-sampling as depth grows, and the gap widens with depth.
#[test]
fn dense_sampling_volume_advantage_grows_with_depth() {
    let (_, subgraph) = kg_subgraph();
    let targets: Vec<u64> = (0..200).collect();
    let mut previous_ratio = 0.0;
    for depth in 2..=4 {
        let fanouts = vec![5; depth];
        let mut rng_a = StdRng::seed_from_u64(depth as u64);
        let mut rng_b = StdRng::seed_from_u64(depth as u64);
        let dense = MultiHopSampler::new(fanouts.clone(), SamplingDirection::Incoming)
            .sample(&subgraph, &targets, &mut rng_a);
        let layerwise = LayerwiseSampler::new(fanouts, SamplingDirection::Incoming)
            .sample(&subgraph, &targets, &mut rng_b);
        assert!(layerwise.stats.edges_sampled >= dense.stats().edges_sampled);
        let ratio =
            layerwise.stats.edges_sampled as f64 / dense.stats().edges_sampled.max(1) as f64;
        assert!(
            ratio + 1e-9 >= previous_ratio,
            "redundancy ratio should not shrink with depth: {ratio} vs {previous_ratio}"
        );
        previous_ratio = ratio;
    }
    assert!(
        previous_ratio > 1.2,
        "deep redundancy ratio {previous_ratio}"
    );
}

/// DENSE invariants hold on samples drawn from a realistic power-law graph.
#[test]
fn dense_validates_on_generated_graphs() {
    let data = ScaledDataset::generate(&DatasetSpec::livejournal().scaled(0.0002), 9);
    let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
    let sampler = MultiHopSampler::new(vec![10, 10, 10], SamplingDirection::Both);
    let mut rng = StdRng::seed_from_u64(11);
    for start in [0u64, 50, 100] {
        let targets: Vec<u64> = (start..start + 50).collect();
        let mut dense = sampler.sample(&subgraph, &targets, &mut rng);
        dense.validate().expect("DENSE invariants");
        dense.build_repr_map();
        dense.validate().expect("repr_map consistent");
    }
}

/// Both disk policies produce valid epoch plans on a real partitioned dataset,
/// and COMET's bias is no worse than BETA's while its workload is more balanced.
#[test]
fn policies_are_valid_and_comet_reduces_bias_on_real_buckets() {
    let (data, _) = kg_subgraph();
    let p = 16u32;
    let c = 4usize;
    let partitioner = Partitioner::new(p).unwrap();
    let mut rng = StdRng::seed_from_u64(13);
    let assignment = partitioner.random(data.num_nodes(), &mut rng);
    let buckets = partitioner.build_buckets(&data.graph, &assignment).unwrap();

    let beta = BetaPolicy::new(c).plan(p, &mut rng).unwrap();
    let comet = CometPolicy::auto(p, c).plan(p, &mut rng).unwrap();
    let memory = InMemoryPolicy.plan(p, &mut rng).unwrap();
    beta.validate(p, c).unwrap();
    comet.validate(p, c).unwrap();
    memory.validate(p, p as usize).unwrap();

    let bias_beta = edge_permutation_bias(&beta, &buckets, data.num_nodes());
    let bias_comet = edge_permutation_bias(&comet, &buckets, data.num_nodes());
    let bias_memory = edge_permutation_bias(&memory, &buckets, data.num_nodes());
    assert!(bias_memory <= bias_comet + 1e-9);
    assert!(bias_comet <= bias_beta + 1e-9);

    // Workload balance: COMET's largest step is closer to its mean than BETA's.
    let imbalance = |per: Vec<usize>| {
        let max = *per.iter().max().unwrap() as f64;
        let mean = per.iter().sum::<usize>() as f64 / per.len() as f64;
        max / mean
    };
    assert!(imbalance(comet.buckets_per_step()) < imbalance(beta.buckets_per_step()));
}

/// The COMET IO volume stays within a small factor of BETA's (the paper's
/// argument that the two-level scheme pays at most a 5–25% IO premium).
#[test]
fn comet_io_is_close_to_beta_io() {
    let p = 16u32;
    let c = 8usize;
    let mut rng = StdRng::seed_from_u64(17);
    let beta = BetaPolicy::new(c).plan(p, &mut rng).unwrap();
    let comet = CometPolicy::auto(p, c).plan(p, &mut rng).unwrap();
    let beta_loads = beta.partition_loads() as f64;
    let comet_loads = comet.partition_loads() as f64;
    assert!(
        comet_loads <= 2.0 * beta_loads,
        "COMET loads {comet_loads} should be within 2x of BETA loads {beta_loads}"
    );
}
