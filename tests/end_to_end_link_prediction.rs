//! End-to-end integration tests for link prediction spanning every crate:
//! dataset generation → partitioned on-disk storage → COMET/BETA epoch plans →
//! DENSE sampling → GNN training → MRR evaluation.

use marius_core::{DiskConfig, LinkPredictionTask, ModelConfig, TrainConfig, Trainer};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};

fn dataset() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.02), 31)
}

fn trainer(epochs: usize) -> Trainer<LinkPredictionTask> {
    let model = ModelConfig::paper_link_prediction_graphsage(16).shrunk(8, 16);
    let mut train = TrainConfig::quick(epochs, 31);
    train.batch_size = 256;
    train.num_negatives = 64;
    train.eval_negatives = 100;
    Trainer::new(model, train)
}

#[test]
fn in_memory_link_prediction_learns_beyond_random() {
    let data = dataset();
    let report = trainer(3)
        .train_in_memory(&data)
        .expect("in-memory training");
    // A random ranker over 100 negatives scores ~0.05 MRR; the trained model
    // must do at least twice as well after three epochs.
    assert!(
        report.final_metric() > 0.10,
        "in-memory MRR too low: {}",
        report.final_metric()
    );
    // MRR should not degrade over training.
    assert!(report.final_metric() + 0.05 >= report.epochs[0].metric);
}

#[test]
fn disk_based_comet_training_approaches_in_memory_quality() {
    let data = dataset();
    let t = trainer(3);
    let mem = t.train_in_memory(&data).expect("in-memory training");
    let comet = t
        .train_disk(&data, &DiskConfig::comet(8, 4))
        .expect("disk training");
    assert!(
        comet.final_metric() > 0.1,
        "COMET MRR {}",
        comet.final_metric()
    );
    // Disk-based training with COMET should recover most of the in-memory MRR
    // (the paper closes the gap to within a few percent on Freebase86M).
    assert!(
        comet.final_metric() > 0.5 * mem.final_metric(),
        "COMET {} vs in-memory {}",
        comet.final_metric(),
        mem.final_metric()
    );
    // It must actually have done IO and multiple partition-set loads.
    let last = comet.epochs.last().unwrap();
    assert!(last.io_bytes_read > 0);
    assert!(last.partition_loads > 4);
}

#[test]
fn decoder_only_distmult_trains_out_of_core_with_both_policies() {
    let data = dataset();
    let model = ModelConfig::paper_distmult(16);
    let mut train = TrainConfig::quick(2, 17);
    train.batch_size = 256;
    train.num_negatives = 64;
    let t: Trainer<LinkPredictionTask> = Trainer::new(model, train);
    let comet = t
        .train_disk(&data, &DiskConfig::comet(8, 4))
        .expect("disk training");
    let beta = t
        .train_disk(&data, &DiskConfig::beta(8, 4))
        .expect("disk training");
    assert!(comet.final_metric() > 0.05);
    assert!(beta.final_metric() > 0.05);
    // Both must have iterated over every training example each epoch.
    let total = data.train_edges.len();
    assert_eq!(comet.epochs[0].examples, total);
    assert_eq!(beta.epochs[0].examples, total);
}

#[test]
fn epoch_reports_contain_consistent_bookkeeping() {
    let data = dataset();
    let report = trainer(2)
        .train_disk(&data, &DiskConfig::comet(8, 4))
        .expect("disk training");
    for epoch in &report.epochs {
        assert!(epoch.epoch_time >= epoch.sample_time);
        assert!(epoch.nodes_sampled > 0);
        assert!(epoch.edges_sampled > 0);
        assert!(epoch.loss.is_finite());
        assert!(epoch.metric >= 0.0 && epoch.metric <= 1.0);
    }
}
