//! Chaos suite: the robustness layer's proof obligation (ISSUE 6).
//!
//! A training run on a flaky disk — transient read/write failures, torn
//! staging writes, latency spikes, all injected deterministically by an
//! [`IoFaultPlan`] — must produce **bit-identical** loss/metric trajectories
//! to the same run on a healthy disk, because every fault is absorbed inside
//! the storage layer and never perturbs an RNG stream. A *permanent* device
//! failure must surface as a clean typed error (threads joined, no torn
//! files), never a panic or a hang. And `Session::train_with_recovery` must
//! ride out a device outage longer than the retry budget by resuming from
//! the last checkpoint, again bit-identically to an uninterrupted run.
//!
//! Seeds come from `MARIUS_CHAOS_SEED` (a single u64) when set — the CI
//! chaos-smoke matrix drives one seed per job — and default to three fixed
//! seeds locally. Set `MARIUS_CHAOS_JSON=1` to emit a
//! `BENCH_chaos_<seed>.json` trajectory per flaky run.

use marius::{
    DiskConfig, ExperimentReport, IoFaultPlan, LinkPredictionTask, ModelConfig,
    NodeClassificationTask, PipelineConfig, Session, Storage, StorageError, Task, TrainConfig,
};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use std::path::PathBuf;

/// Chaos seeds: `MARIUS_CHAOS_SEED` when set, else a fixed local trio.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("MARIUS_CHAOS_SEED") {
        Ok(s) => vec![s.trim().parse().expect("MARIUS_CHAOS_SEED must be a u64")],
        Err(_) => vec![7, 1234, 990017],
    }
}

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "marius-chaos-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn lp_dataset() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.015), 3)
}

fn lp_model() -> ModelConfig {
    ModelConfig::paper_link_prediction_graphsage(12).shrunk(5, 12)
}

fn lp_train(epochs: usize) -> TrainConfig {
    let mut train = TrainConfig::quick(epochs, 9);
    train.batch_size = 128;
    train.num_negatives = 32;
    train.eval_negatives = 64;
    train
}

fn nc_dataset() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::ogbn_arxiv().scaled(0.008), 21)
}

fn nc_model() -> ModelConfig {
    let mut model = ModelConfig::paper_node_classification(128, 16);
    model.num_layers = 2;
    model.fanouts = vec![8, 5];
    model
}

fn nc_train(epochs: usize) -> TrainConfig {
    let mut train = TrainConfig::quick(epochs, 13);
    train.batch_size = 128;
    train
}

/// Loss/metric/examples must match bit for bit, epoch by epoch; the IO
/// counters (`io_retries`, `faults_injected`) are *expected* to differ.
fn assert_bit_identical(clean: &ExperimentReport, flaky: &ExperimentReport, label: &str) {
    assert_eq!(
        clean.epochs.len(),
        flaky.epochs.len(),
        "{label}: epoch count mismatch"
    );
    for (a, b) in clean.epochs.iter().zip(flaky.epochs.iter()) {
        assert_eq!(
            a.loss.to_bits(),
            b.loss.to_bits(),
            "{label}: epoch {} loss {} != {}",
            a.epoch,
            a.loss,
            b.loss
        );
        assert_eq!(
            a.metric.to_bits(),
            b.metric.to_bits(),
            "{label}: epoch {} metric {} != {}",
            a.epoch,
            a.metric,
            b.metric
        );
        assert_eq!(
            a.examples, b.examples,
            "{label}: epoch {} examples",
            a.epoch
        );
    }
}

fn maybe_emit_json(report: &ExperimentReport, seed: u64, label: &str) {
    if std::env::var("MARIUS_CHAOS_JSON").as_deref() == Ok("1") {
        let path = format!("BENCH_chaos_{label}_{seed}.json");
        std::fs::write(&path, report.to_json()).expect("write chaos trajectory");
    }
}

/// Runs the same pipelined-disk training twice per seed — healthy device vs
/// `IoFaultPlan::flaky(seed)` — and asserts the flaky run both *absorbed*
/// faults (non-zero injected/retry counters) and reproduced the healthy
/// trajectory bit for bit.
fn flaky_is_bit_exact<T: Task + Default + Clone>(
    label: &str,
    task: T,
    data: impl Fn() -> ScaledDataset,
    model: ModelConfig,
    train: TrainConfig,
    disk: DiskConfig,
) {
    for seed in chaos_seeds() {
        let mut clean = Session::builder()
            .task(task.clone())
            .dataset(data())
            .model(model.clone())
            .train(train.clone())
            .storage(Storage::Disk(disk.clone()))
            .pipeline(PipelineConfig::with_workers(2))
            .build()
            .unwrap();
        let clean_report = clean.train().unwrap();

        let mut flaky = Session::builder()
            .task(task.clone())
            .dataset(data())
            .model(model.clone())
            .train(train.clone())
            .storage(Storage::Disk(disk.clone()))
            .pipeline(PipelineConfig::with_workers(2))
            .fault_plan(IoFaultPlan::flaky(seed))
            .build()
            .unwrap();
        let flaky_report = flaky.train().unwrap();

        let injected: u64 = flaky_report.epochs.iter().map(|e| e.faults_injected).sum();
        let retries: u64 = flaky_report.epochs.iter().map(|e| e.io_retries).sum();
        assert!(injected > 0, "{label}/seed {seed}: plan injected no faults");
        assert!(
            retries > 0,
            "{label}/seed {seed}: no transient fault was retried"
        );
        assert_bit_identical(
            &clean_report,
            &flaky_report,
            &format!("{label}/seed {seed}"),
        );
        maybe_emit_json(&flaky_report, seed, label);
    }
}

#[test]
fn link_prediction_survives_a_flaky_disk_bit_exactly() {
    flaky_is_bit_exact(
        "lp",
        LinkPredictionTask,
        lp_dataset,
        lp_model(),
        lp_train(3),
        DiskConfig::comet(8, 4),
    );
}

#[test]
fn node_classification_survives_a_flaky_disk_bit_exactly() {
    flaky_is_bit_exact(
        "nc",
        NodeClassificationTask,
        nc_dataset,
        nc_model(),
        nc_train(3),
        DiskConfig::node_cache(8, 6),
    );
}

/// A device that dies mid-run (every operation past a point fails
/// permanently) produces a typed, non-transient [`StorageError`] on the
/// caller's thread — no panic, no deadlock — with the injection visible in
/// the error text.
#[test]
fn permanent_device_failure_surfaces_as_a_typed_error() {
    let mut session = Session::builder()
        .dataset(lp_dataset())
        .model(lp_model())
        .train(lp_train(3))
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .pipeline(PipelineConfig::with_workers(2))
        .fault_plan(IoFaultPlan::permanent(7, 50))
        .build()
        .unwrap();
    let err = session.train().expect_err("the device dies 50 ops in");
    assert!(
        !err.is_transient(),
        "a dead device must not read as retryable"
    );
    let text = format!("{err}");
    assert!(
        text.contains("permanent"),
        "error should name the injected permanent failure: {text}"
    );
    match err {
        StorageError::Pipeline { .. } | StorageError::Io(_) => {}
        other => panic!("expected a pipeline-stage or io error, got: {other}"),
    }
}

/// A device outage longer than the retry budget fails the run; with a
/// checkpoint every epoch, `train_with_recovery` resumes past it and the
/// final trajectory is bit-identical to an uninterrupted healthy run, with
/// the recovery count stamped on post-outage epochs.
#[test]
fn recovery_from_an_outage_is_bit_exact() {
    let mut oracle = Session::builder()
        .dataset(lp_dataset())
        .model(lp_model())
        .train(lp_train(4))
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .pipeline(PipelineConfig::with_workers(2))
        .build()
        .unwrap();
    let oracle_report = oracle.train().unwrap();

    let dir = temp_dir("recovery");
    // A quiet plan whose injector we arm at runtime: after epoch 1 finishes
    // (and its checkpoint lands), schedule a 24-operation outage — longer
    // than any single retry budget (4 retries = 5 attempts) can absorb, so
    // the run *must* fail and recover rather than ride it out.
    let injector = IoFaultPlan::quiet(0).build();
    let hook_injector = injector.clone();
    let mut flaky = Session::builder()
        .dataset(lp_dataset())
        .model(lp_model())
        .train(lp_train(4))
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .pipeline(PipelineConfig::with_workers(2))
        .fault_injector(injector.clone())
        .checkpoint_to(&dir, 1)
        .on_epoch(move |epoch| {
            if epoch.epoch == 1 {
                hook_injector.arm_outage(120, 24);
            }
        })
        .build()
        .unwrap();
    let recovered = flaky
        .train_with_recovery(8)
        .expect("recovery rides out the outage");

    assert_bit_identical(&oracle_report, &recovered, "recovery");
    assert!(
        injector.faults_injected() > 0,
        "the outage window never fired — the test proved nothing"
    );
    let last = recovered.epochs.last().expect("4 epochs");
    assert!(
        last.recoveries > 0,
        "the run recovered but no recovery was stamped on the final epoch"
    );
    assert!(
        recovered.epochs.first().map(|e| e.recoveries) <= Some(last.recoveries),
        "recovery stamps must be non-decreasing across epochs"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
