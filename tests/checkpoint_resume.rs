//! Golden tests for durable checkpoints and bit-exact resume.
//!
//! The durable-state contract (ISSUE 5) promises that a run interrupted at an
//! epoch boundary and resumed from its checkpoint reproduces the loss/metric
//! trajectory of the uninterrupted run **bit for bit** (f64 bit patterns), on
//! both tasks and on both the in-memory and pipelined-disk paths. These tests
//! pin that promise the way `task_equivalence` pins the trainer refactor: an
//! uninterrupted 4-epoch run is the oracle, a 2-epoch run + checkpoint +
//! 2-epoch resume is the subject, and every epoch is compared at the bit
//! level. A separate test simulates a crash mid-checkpoint-write and asserts
//! the torn staging directory is invisible to resume.

use marius::{
    DiskConfig, LinkPredictionTask, ModelConfig, NodeClassificationTask, PipelineConfig, Session,
    Storage, Task, TrainConfig,
};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use std::path::PathBuf;

fn temp_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "marius-resume-golden-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn lp_dataset() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.015), 3)
}

fn lp_model() -> ModelConfig {
    ModelConfig::paper_link_prediction_graphsage(12).shrunk(5, 12)
}

fn lp_train(epochs: usize) -> TrainConfig {
    let mut train = TrainConfig::quick(epochs, 9);
    train.batch_size = 128;
    train.num_negatives = 32;
    train.eval_negatives = 64;
    train
}

fn nc_dataset() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::ogbn_arxiv().scaled(0.008), 21)
}

fn nc_model() -> ModelConfig {
    let mut model = ModelConfig::paper_node_classification(128, 16);
    model.num_layers = 2;
    model.fanouts = vec![8, 5];
    model
}

fn nc_train(epochs: usize) -> TrainConfig {
    let mut train = TrainConfig::quick(epochs, 13);
    train.batch_size = 128;
    train
}

fn assert_bit_identical(
    oracle: &marius::ExperimentReport,
    resumed: &marius::ExperimentReport,
    label: &str,
) {
    assert_eq!(
        oracle.epochs.len(),
        resumed.epochs.len(),
        "{label}: epoch count"
    );
    for (a, b) in oracle.epochs.iter().zip(&resumed.epochs) {
        assert_eq!(
            a.loss.to_bits(),
            b.loss.to_bits(),
            "{label}: epoch {} loss {} != {}",
            a.epoch,
            a.loss,
            b.loss
        );
        assert_eq!(
            a.metric.to_bits(),
            b.metric.to_bits(),
            "{label}: epoch {} metric {} != {}",
            a.epoch,
            a.metric,
            b.metric
        );
        assert_eq!(
            a.examples, b.examples,
            "{label}: epoch {} examples",
            a.epoch
        );
    }
}

/// Uninterrupted 4 epochs vs 2 epochs + checkpoint + resume-to-4, generic
/// over the task and storage configuration.
fn golden_resume<T: Task + Default + Clone>(
    label: &str,
    task: T,
    data: impl Fn() -> ScaledDataset,
    model: ModelConfig,
    train: impl Fn(usize) -> TrainConfig,
    storage: Storage,
    pipeline: PipelineConfig,
) {
    let dir = temp_dir(label);
    let mut oracle = Session::builder()
        .task(task.clone())
        .dataset(data())
        .model(model.clone())
        .train(train(4))
        .storage(storage.clone())
        .pipeline(pipeline.clone())
        .build()
        .unwrap();
    let oracle_report = oracle.train().unwrap();

    let mut interrupted = Session::builder()
        .task(task)
        .dataset(data())
        .model(model)
        .train(train(2))
        .storage(storage)
        .pipeline(pipeline)
        .checkpoint_to(&dir, 1)
        .build()
        .unwrap();
    interrupted.train().unwrap();
    drop(interrupted); // the "crash": nothing survives but the checkpoint

    let mut resumed: Session<T> = Session::resume_from_until(&dir, 4).unwrap();
    let resumed_report = resumed.train().unwrap();
    assert_bit_identical(&oracle_report, &resumed_report, label);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn link_prediction_in_memory_resume_is_bit_exact() {
    golden_resume(
        "lp-mem",
        LinkPredictionTask,
        lp_dataset,
        lp_model(),
        lp_train,
        Storage::InMemory,
        PipelineConfig::disabled(),
    );
}

#[test]
fn link_prediction_pipelined_disk_resume_is_bit_exact() {
    golden_resume(
        "lp-disk",
        LinkPredictionTask,
        lp_dataset,
        lp_model(),
        lp_train,
        Storage::Disk(DiskConfig::comet(8, 4)),
        PipelineConfig::with_workers(2),
    );
}

#[test]
fn node_classification_in_memory_resume_is_bit_exact() {
    golden_resume(
        "nc-mem",
        NodeClassificationTask,
        nc_dataset,
        nc_model(),
        nc_train,
        Storage::InMemory,
        PipelineConfig::disabled(),
    );
}

#[test]
fn node_classification_pipelined_disk_resume_is_bit_exact() {
    golden_resume(
        "nc-disk",
        NodeClassificationTask,
        nc_dataset,
        nc_model(),
        nc_train,
        Storage::Disk(DiskConfig::node_cache(8, 6)),
        PipelineConfig::with_workers(2),
    );
}

/// A crash mid-checkpoint-write (simulated by a torn staging directory, a
/// truncated would-be manifest, and an abandoned partition temp file) must be
/// invisible: resume reads the last complete version and still reproduces the
/// oracle bit for bit.
#[test]
fn mid_write_abort_never_surfaces_a_torn_checkpoint() {
    let dir = temp_dir("lp-torn");
    let mut oracle = Session::builder()
        .dataset(lp_dataset())
        .model(lp_model())
        .train(lp_train(4))
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .pipeline(PipelineConfig::with_workers(2))
        .build()
        .unwrap();
    let oracle_report = oracle.train().unwrap();

    let mut interrupted = Session::builder()
        .dataset(lp_dataset())
        .model(lp_model())
        .train(lp_train(2))
        .storage(Storage::Disk(DiskConfig::comet(8, 4)))
        .pipeline(PipelineConfig::with_workers(2))
        .checkpoint_to(&dir, 1)
        .build()
        .unwrap();
    interrupted.train().unwrap();

    // Simulate the next checkpoint dying mid-write: a staging directory with
    // a truncated manifest and a partial state.bin that never got renamed...
    let staging = dir.join("epoch-000003.tmp");
    std::fs::create_dir_all(staging.join("partitions")).unwrap();
    std::fs::write(staging.join("manifest.json"), "{\"format\":\"marius-ch").unwrap();
    std::fs::write(staging.join("state.bin"), [0u8; 7]).unwrap();
    // ...plus a torn partition write inside the *good* snapshot's directory
    // (an aborted hard-link staging file): restore must skip it.
    let latest = std::fs::read_to_string(dir.join("LATEST")).unwrap();
    std::fs::write(
        dir.join(latest.trim())
            .join("partitions")
            .join("node_partition_0.bin.tmp"),
        b"torn bytes",
    )
    .unwrap();

    let mut resumed: Session<LinkPredictionTask> = Session::resume_from_until(&dir, 4).unwrap();
    let resumed_report = resumed.train().unwrap();
    assert_bit_identical(&oracle_report, &resumed_report, "lp-torn");
    let _ = std::fs::remove_dir_all(&dir);
}

/// An eval cadence coarser than the checkpoint cadence: the interrupted run's
/// *forced* final-epoch evaluation (epoch 3 is off the eval_every=2 grid) is
/// off-stream — its RNG draws must not leak into the checkpoint cursor — so
/// the continuation still matches the oracle bit for bit. The only permitted
/// difference is the interruption epoch's metric itself: the interrupted run
/// evaluated there (a bonus measurement), the oracle skipped it (NaN).
#[test]
fn off_cadence_final_eval_does_not_perturb_the_resumed_stream() {
    let dir = temp_dir("lp-cadence");
    let mut oracle = Session::builder()
        .dataset(lp_dataset())
        .model(lp_model())
        .train(lp_train(4))
        .eval_every(2)
        .build()
        .unwrap();
    let oracle_report = oracle.train().unwrap();

    let mut interrupted = Session::builder()
        .dataset(lp_dataset())
        .model(lp_model())
        .train(lp_train(3)) // final epoch 3 is off the eval_every=2 grid
        .eval_every(2)
        .checkpoint_to(&dir, 1)
        .build()
        .unwrap();
    interrupted.train().unwrap();

    let mut resumed: Session<LinkPredictionTask> = Session::resume_from_until(&dir, 4).unwrap();
    let resumed_report = resumed.train().unwrap();
    assert_eq!(resumed_report.epochs.len(), 4);
    for (a, b) in oracle_report.epochs.iter().zip(&resumed_report.epochs) {
        assert_eq!(a.loss.to_bits(), b.loss.to_bits(), "epoch {} loss", a.epoch);
        if a.epoch == 2 {
            // The interruption epoch: oracle skipped evaluation, the
            // interrupted run was forced to evaluate its then-final epoch.
            assert!(a.metric.is_nan(), "oracle evaluates only epochs 1 and 3");
            assert!(b.metric.is_finite(), "interrupted run's bonus evaluation");
        } else {
            assert_eq!(
                a.metric.to_bits(),
                b.metric.to_bits(),
                "epoch {} metric",
                a.epoch
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming from the *final* checkpoint of a finished run is a no-op train()
/// whose report is exactly the recorded trajectory.
#[test]
fn resume_of_a_finished_run_replays_the_recorded_report() {
    let dir = temp_dir("lp-finished");
    let mut session = Session::builder()
        .dataset(lp_dataset())
        .model(lp_model())
        .train(lp_train(2))
        .checkpoint_to(&dir, 1)
        .build()
        .unwrap();
    let original = session.train().unwrap();
    let mut resumed: Session<LinkPredictionTask> = Session::resume_from(&dir).unwrap();
    let replayed = resumed.train().unwrap();
    assert_bit_identical(&original, &replayed, "lp-finished");
    let _ = std::fs::remove_dir_all(&dir);
}
