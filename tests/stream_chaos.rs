//! Streamed-ingest chaos suite (ISSUE 10, satellite 1): delta staging rides
//! the same fault-injection and retry machinery as every other storage path.
//!
//! A streamed run on a flaky disk — transient failures and torn writes
//! injected into training IO *and* the ingest staging writes — must be
//! bit-identical to the fault-free run, because every absorbed fault stays
//! inside the storage layer. And a delta whose staging write tears beyond
//! the retry budget must never be applied: the error surfaces before the
//! cursor advances, the buckets stay untouched, and the staging directory
//! holds only `.tmp` litter — never a readable half-written `delta-*.bin`.
//!
//! Seeds come from `MARIUS_CHAOS_SEED` (a single u64) when set, defaulting
//! to a fixed local trio, mirroring `tests/chaos.rs`.

use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::stream::{delta_file_name, EdgeStream, Ingestor};
use marius::{
    DiskConfig, ExperimentReport, IoFaultPlan, ModelConfig, PipelineConfig, RetryPolicy, Session,
    Storage, StreamConfig, Task, TemporalLinkPredictionTask, TrainConfig,
};
use marius_storage::PartitionStore;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Chaos seeds: `MARIUS_CHAOS_SEED` when set, else a fixed local trio.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("MARIUS_CHAOS_SEED") {
        Ok(s) => vec![s.trim().parse().expect("MARIUS_CHAOS_SEED must be a u64")],
        Err(_) => vec![7, 1234, 990017],
    }
}

fn dataset() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.015), 3)
}

fn model() -> ModelConfig {
    ModelConfig::paper_distmult(8)
}

fn train_config() -> TrainConfig {
    let mut train = TrainConfig::quick(1, 9);
    train.batch_size = 128;
    train.num_negatives = 32;
    train.eval_negatives = 64;
    train
}

fn assert_bit_identical(clean: &ExperimentReport, flaky: &ExperimentReport, label: &str) {
    assert_eq!(clean.epochs.len(), flaky.epochs.len(), "{label}: epochs");
    for (a, b) in clean.epochs.iter().zip(flaky.epochs.iter()) {
        assert_eq!(
            a.loss.to_bits(),
            b.loss.to_bits(),
            "{label}: epoch {} loss",
            a.epoch
        );
        assert_eq!(
            a.metric.to_bits(),
            b.metric.to_bits(),
            "{label}: epoch {} metric",
            a.epoch
        );
        assert_eq!(
            a.examples, b.examples,
            "{label}: epoch {} examples",
            a.epoch
        );
        assert_eq!(
            a.edges_ingested, b.edges_ingested,
            "{label}: epoch {} edges_ingested",
            a.epoch
        );
    }
}

/// A streamed run under `IoFaultPlan::flaky` — faults hitting both training
/// IO and the delta staging writes — absorbs every fault and reproduces the
/// fault-free trajectory bit for bit, ingest stamps included.
#[test]
fn flaky_streamed_run_is_bit_identical_to_fault_free() {
    // 2 cycles × 2 epochs; the boundary after epoch 1 ingests 2 × 24 edges.
    let cfg = StreamConfig::new(29, 24, 2, 2, 2);
    for seed in chaos_seeds() {
        let mut clean = Session::builder()
            .task(TemporalLinkPredictionTask)
            .dataset(dataset())
            .model(model())
            .train(train_config())
            .storage(Storage::Disk(DiskConfig::comet(8, 4)))
            .pipeline(PipelineConfig::with_workers(2))
            .build()
            .unwrap();
        let clean_report = clean.stream(cfg).unwrap();

        let mut flaky = Session::builder()
            .task(TemporalLinkPredictionTask)
            .dataset(dataset())
            .model(model())
            .train(train_config())
            .storage(Storage::Disk(DiskConfig::comet(8, 4)))
            .pipeline(PipelineConfig::with_workers(2))
            .fault_plan(IoFaultPlan::flaky(seed))
            .build()
            .unwrap();
        let flaky_report = flaky.stream(cfg).unwrap();

        let injected: u64 = flaky_report.epochs.iter().map(|e| e.faults_injected).sum();
        let retries: u64 = flaky_report.epochs.iter().map(|e| e.io_retries).sum();
        assert!(injected > 0, "seed {seed}: plan injected no faults");
        assert!(retries > 0, "seed {seed}: no transient fault was retried");
        assert!(
            flaky_report.epochs.iter().any(|e| e.edges_ingested > 0),
            "seed {seed}: the streamed run never ingested"
        );
        assert_bit_identical(&clean_report, &flaky_report, &format!("seed {seed}"));
    }
}

/// A staging write that tears beyond the retry budget aborts the ingest
/// cleanly: no readable delta file lands, only `.tmp` litter; the cursor does
/// not advance; the buckets (in memory and on disk) are untouched.
#[test]
fn torn_delta_mid_ingest_is_never_applied() {
    let data = dataset();
    let disk = DiskConfig::comet(8, 4);
    let task = TemporalLinkPredictionTask;
    let store = PartitionStore::open_temp("stream-torn-setup").unwrap();
    store.clear().unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let mut setup = task
        .disk_setup(&model(), &data, &disk, store, &mut rng)
        .unwrap();
    let edges_before: Vec<usize> = setup.buckets.iter().map(|b| b.edges.len()).collect();

    // Every staging write fails and tears, and the budget allows no retries:
    // the first delta's stage is guaranteed to die torn.
    let torn_plan = IoFaultPlan {
        write_fail: 1.0,
        torn_write: 1.0,
        max_consecutive: u32::MAX,
        ..IoFaultPlan::quiet(5)
    };
    let staging = PartitionStore::open_temp("stream-torn-staging")
        .unwrap()
        .with_fault_injector(torn_plan.build())
        .with_retry_policy(RetryPolicy::no_retries());
    staging.clear().unwrap();
    let staging_root = staging.root().to_path_buf();
    let ingestor = Ingestor::new(EdgeStream::new(5, data.num_nodes(), 3, 16), staging);

    let err = ingestor.ingest(&mut setup, 2).unwrap_err();
    assert!(
        format!("{err}").contains("injected"),
        "unexpected error: {err}"
    );

    // The failed delta never became a readable file — at most `.tmp` litter.
    assert!(!staging_root.join(delta_file_name(0)).exists());
    let leftovers: Vec<String> = std::fs::read_dir(&staging_root)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        leftovers.iter().all(|name| name.ends_with(".tmp")),
        "non-tmp litter after torn stage: {leftovers:?}"
    );
    assert!(
        !leftovers.is_empty(),
        "expected a torn .tmp prefix to remain"
    );

    // Cursor and buckets are exactly as before the attempt.
    assert_eq!(ingestor.cursor().batches_applied, 0);
    assert_eq!(ingestor.cursor().edges_ingested, 0);
    let edges_after: Vec<usize> = setup.buckets.iter().map(|b| b.edges.len()).collect();
    assert_eq!(edges_before, edges_after, "torn delta reached the buckets");
}
