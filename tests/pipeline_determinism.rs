//! Integration tests for the staged training runtime (`marius-pipeline`)
//! driven through the public trainer API: the pipelined executor must be a
//! drop-in replacement for the sequential one.
// Deliberately exercises the deprecated `LinkPredictionTrainer` /
// `NodeClassificationTrainer` aliases to pin their compatibility with the
// generic `Trainer<T>` they now point at.
#![allow(deprecated)]
//!
//! * With one sampling worker and a fixed seed, the pipelined trainer must
//!   reproduce the sequential trainer's per-epoch loss trajectory
//!   **bit-for-bit** (the sequential path is the determinism oracle).
//! * With several workers, training must stay sane (finite losses, every
//!   partition written back to disk) even though sampling runs concurrently.

use marius_core::{
    DiskConfig, LinkPredictionTrainer, ModelConfig, NodeClassificationTrainer, PipelineConfig,
    TrainConfig,
};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};

fn lp_dataset() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.02), 77)
}

fn lp_trainer() -> LinkPredictionTrainer {
    let model = ModelConfig::paper_link_prediction_graphsage(16).shrunk(6, 16);
    let mut train = TrainConfig::quick(3, 77);
    train.batch_size = 192;
    train.num_negatives = 48;
    train.eval_negatives = 64;
    LinkPredictionTrainer::new(model, train)
}

#[test]
fn pipelined_single_worker_reproduces_sequential_loss_trajectory() {
    let data = lp_dataset();
    let disk = DiskConfig::comet(8, 4);
    let sequential = lp_trainer().train_disk(&data, &disk).expect("sequential");
    let pipelined = lp_trainer()
        .with_pipeline(PipelineConfig::with_workers(1))
        .train_disk(&data, &disk)
        .expect("pipelined");

    assert_eq!(sequential.epochs.len(), pipelined.epochs.len());
    for (seq, pipe) in sequential.epochs.iter().zip(&pipelined.epochs) {
        // Bit-for-bit: same mean loss, same metric, same example/IO counts.
        assert_eq!(
            seq.loss, pipe.loss,
            "epoch {} loss diverged: {} vs {}",
            seq.epoch, seq.loss, pipe.loss
        );
        assert_eq!(seq.metric, pipe.metric, "epoch {} metric", seq.epoch);
        assert_eq!(seq.examples, pipe.examples);
        assert_eq!(seq.partition_loads, pipe.partition_loads);
        assert_eq!(seq.io_bytes_read, pipe.io_bytes_read);
        assert_eq!(seq.io_bytes_written, pipe.io_bytes_written);
    }
    // The pipelined run actually reports stage overlap instrumentation.
    assert!(pipelined.epochs.iter().all(|e| e.overlap > 0.0));
    assert!(sequential.epochs.iter().all(|e| e.overlap == 0.0));
}

#[test]
fn pipelined_multi_worker_smoke_loss_finite_and_partitions_written_back() {
    let data = lp_dataset();
    let disk = DiskConfig::beta(8, 4);
    let report = lp_trainer()
        .with_pipeline(PipelineConfig {
            enabled: true,
            num_sampling_workers: 4,
            queue_depth: 3,
            prefetch_depth: 2,
            ..PipelineConfig::default()
        })
        .train_disk(&data, &disk)
        .expect("pipelined multi-worker");

    assert_eq!(report.epochs.len(), 3);
    for epoch in &report.epochs {
        assert!(epoch.loss.is_finite(), "epoch {} loss", epoch.epoch);
        assert!(epoch.examples > 0);
        // Every physical partition was read at least once per epoch and the
        // learnable embeddings were written back (bytes flowed both ways).
        assert!(epoch.partition_loads >= disk.buffer_capacity);
        assert!(epoch.io_bytes_read > 0);
        assert!(epoch.io_bytes_written > 0);
    }
    // train_disk ends with a full write-back; the final MRR evaluation reads
    // every partition file back successfully, so learning must be visible.
    assert!(report.final_metric() > 0.0);
    // Multi-worker runs share the per-step seed discipline, so they too match
    // the sequential oracle exactly.
    let sequential = lp_trainer().train_disk(&data, &disk).expect("sequential");
    for (seq, pipe) in sequential.epochs.iter().zip(&report.epochs) {
        assert_eq!(seq.loss, pipe.loss, "epoch {}", seq.epoch);
    }
}

#[test]
fn pipelined_node_classification_matches_sequential() {
    let spec = DatasetSpec::ogbn_arxiv().scaled(0.008);
    let data = ScaledDataset::generate(&spec, 55);
    let mut model = ModelConfig::paper_node_classification(128, 16);
    model.num_layers = 2;
    model.fanouts = vec![8, 5];
    let mut train = TrainConfig::quick(2, 55);
    train.batch_size = 128;
    let disk = DiskConfig::node_cache(8, 6);

    let sequential = NodeClassificationTrainer::new(model.clone(), train.clone())
        .train_disk(&data, &disk)
        .expect("sequential");
    let pipelined = NodeClassificationTrainer::new(model, train)
        .with_pipeline(PipelineConfig::with_workers(2))
        .train_disk(&data, &disk)
        .expect("pipelined");

    for (seq, pipe) in sequential.epochs.iter().zip(&pipelined.epochs) {
        assert_eq!(seq.loss, pipe.loss, "epoch {} loss", seq.epoch);
        assert_eq!(seq.metric, pipe.metric, "epoch {} accuracy", seq.epoch);
        assert_eq!(seq.examples, pipe.examples);
    }
}
