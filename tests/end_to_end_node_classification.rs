//! End-to-end integration tests for node classification: fixed features,
//! three-layer sampled GraphSage, in-memory versus the §5.2 caching policy.

use marius_core::{DiskConfig, ModelConfig, NodeClassificationTask, TrainConfig, Trainer};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};

fn dataset() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::ogbn_arxiv().scaled(0.01), 77)
}

fn trainer(epochs: usize) -> Trainer<NodeClassificationTask> {
    let spec_dim = DatasetSpec::ogbn_arxiv().feat_dim;
    let mut model = ModelConfig::paper_node_classification(spec_dim, 24);
    model.num_layers = 2;
    model.fanouts = vec![10, 5];
    let mut train = TrainConfig::quick(epochs, 77);
    train.batch_size = 256;
    Trainer::new(model, train)
}

#[test]
fn in_memory_node_classification_beats_chance_substantially() {
    let data = dataset();
    let chance = 1.0 / data.spec.num_classes.unwrap() as f64;
    let report = trainer(3)
        .train_in_memory(&data)
        .expect("in-memory training");
    assert!(
        report.final_metric() > 3.0 * chance,
        "accuracy {} vs chance {}",
        report.final_metric(),
        chance
    );
}

#[test]
fn disk_based_node_classification_matches_in_memory_closely() {
    let data = dataset();
    let t = trainer(3);
    let mem = t.train_in_memory(&data).expect("in-memory training");
    let disk = t
        .train_disk(&data, &DiskConfig::node_cache(8, 6))
        .expect("disk training");
    // The paper finds the caching policy loses at most a fraction of a percent
    // of accuracy; at this scale allow a modest relative gap.
    assert!(
        disk.final_metric() > 0.7 * mem.final_metric(),
        "disk {} vs memory {}",
        disk.final_metric(),
        mem.final_metric()
    );
    // Zero partition swaps during the epoch: loads equal the buffer fill only.
    for e in &disk.epochs {
        assert!(e.partition_loads <= 6);
    }
}

#[test]
fn node_cache_policy_performs_io_only_between_epochs() {
    let data = dataset();
    let t = trainer(2);
    let disk = t
        .train_disk(&data, &DiskConfig::node_cache(8, 6))
        .expect("disk training");
    // Every epoch reads the (re-randomised) buffer contents once; writes are
    // unnecessary because features are fixed.
    for e in &disk.epochs {
        assert!(e.io_bytes_read > 0);
        assert_eq!(e.io_bytes_written, 0);
    }
}
