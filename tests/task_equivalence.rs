//! Golden equivalence tests for the task-generic training engine.
//!
//! The generic `Trainer<T: Task>` replaced the two hand-written trainers
//! (`LinkPredictionTrainer` / `NodeClassificationTrainer`). These tests pin
//! its behaviour to the seed trainers' exact loss/metric trajectories,
//! captured bit-for-bit (as f64 bit patterns) from the pre-refactor
//! implementation on the in-memory, sequential-disk and pipelined-disk paths
//! for both tasks. Any change to RNG consumption order, batch construction,
//! or epoch orchestration shows up here as a bit-level mismatch.

use marius_core::{
    DiskConfig, LinkPredictionTask, ModelConfig, NodeClassificationTask, PipelineConfig,
    TrainConfig, Trainer,
};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};

/// Per-epoch golden values: (loss bits, metric bits, examples).
type Golden = &'static [(u64, u64, usize)];

/// Captured from the seed trainers at commit 4f01d44 (the last revision with
/// the hand-written `LinkPredictionTrainer`/`NodeClassificationTrainer`).
///
/// To regenerate after an intentional behaviour change (e.g. a new RNG draw),
/// run the exact `lp_trainer`/`nc_trainer`/`*_dataset` configurations below
/// through the trainer paths being pinned and print each epoch as
/// `(loss.to_bits(), metric.to_bits(), examples)` — e.g. a scratch example:
/// `for e in &report.epochs { println!("({:#018x}, {:#018x}, {}),",
/// e.loss.to_bits(), e.metric.to_bits(), e.examples); }` — then paste the
/// output over the arrays. Run the capture twice to confirm determinism.
const LP_MEM: Golden = &[
    (0x400be30c0fb23703, 0x3fbecaaee2690e9b, 4002),
    (0x400af557024598e2, 0x3fc152914d961dfa, 4002),
];
const LP_DISK_COMET: Golden = &[
    (0x400befe2700c4828, 0x3fc4b5231e6f3f06, 4002),
    (0x400b5a3f87ed93c4, 0x3fbefeaeadaf244b, 4002),
];
const LP_DISK_BETA: Golden = &[
    (0x400bf3f0de2725ff, 0x3fc4ebee99d2f7a3, 4002),
    (0x400b6eb3beaa27a9, 0x3fc503ec6b8c49a0, 4002),
];
const NC_MEM: Golden = &[
    (0x4009a6f0c430f635, 0x3fdb24db24db24db, 732),
    (0x3ffbe6b6968d4a24, 0x3fe7689768976897, 732),
];
const NC_DISK: Golden = &[
    (0x400b8057fe64b8a8, 0x3fd12ed12ed12ed1, 732),
    (0x4000b4a6de67b1a9, 0x3fe36c936c936c93, 732),
];

fn assert_matches_golden(report: &marius_core::ExperimentReport, golden: Golden, label: &str) {
    assert_eq!(report.epochs.len(), golden.len(), "{label}: epoch count");
    for (e, &(loss_bits, metric_bits, examples)) in report.epochs.iter().zip(golden) {
        assert_eq!(
            e.loss.to_bits(),
            loss_bits,
            "{label}: epoch {} loss {} != golden {}",
            e.epoch,
            e.loss,
            f64::from_bits(loss_bits)
        );
        assert_eq!(
            e.metric.to_bits(),
            metric_bits,
            "{label}: epoch {} metric {} != golden {}",
            e.epoch,
            e.metric,
            f64::from_bits(metric_bits)
        );
        assert_eq!(e.examples, examples, "{label}: epoch {} examples", e.epoch);
    }
}

fn lp_dataset() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.015), 3)
}

fn lp_trainer() -> Trainer<LinkPredictionTask> {
    let model = ModelConfig::paper_link_prediction_graphsage(12).shrunk(5, 12);
    let mut train = TrainConfig::quick(2, 9);
    train.batch_size = 128;
    train.num_negatives = 32;
    train.eval_negatives = 64;
    Trainer::new(model, train)
}

fn nc_dataset() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::ogbn_arxiv().scaled(0.008), 21)
}

fn nc_trainer() -> Trainer<NodeClassificationTask> {
    let mut model = ModelConfig::paper_node_classification(128, 16);
    model.num_layers = 2;
    model.fanouts = vec![8, 5];
    let mut train = TrainConfig::quick(2, 13);
    train.batch_size = 128;
    Trainer::new(model, train)
}

#[test]
fn link_prediction_in_memory_matches_seed_trainer_bit_for_bit() {
    let report = lp_trainer().train_in_memory(&lp_dataset()).unwrap();
    assert_matches_golden(&report, LP_MEM, "lp in-memory");
}

#[test]
fn link_prediction_sequential_disk_matches_seed_trainer_bit_for_bit() {
    let data = lp_dataset();
    let comet = lp_trainer()
        .train_disk(&data, &DiskConfig::comet(8, 4))
        .unwrap();
    assert_matches_golden(&comet, LP_DISK_COMET, "lp disk comet sequential");
    let beta = lp_trainer()
        .train_disk(&data, &DiskConfig::beta(8, 4))
        .unwrap();
    assert_matches_golden(&beta, LP_DISK_BETA, "lp disk beta sequential");
}

#[test]
fn link_prediction_pipelined_disk_matches_seed_trainer_bit_for_bit() {
    let report = lp_trainer()
        .with_pipeline(PipelineConfig::with_workers(2))
        .train_disk(&lp_dataset(), &DiskConfig::comet(8, 4))
        .unwrap();
    assert_matches_golden(&report, LP_DISK_COMET, "lp disk comet pipelined");
}

#[test]
fn node_classification_in_memory_matches_seed_trainer_bit_for_bit() {
    let report = nc_trainer().train_in_memory(&nc_dataset()).unwrap();
    assert_matches_golden(&report, NC_MEM, "nc in-memory");
}

#[test]
fn node_classification_sequential_disk_matches_seed_trainer_bit_for_bit() {
    let report = nc_trainer()
        .train_disk(&nc_dataset(), &DiskConfig::node_cache(8, 6))
        .unwrap();
    assert_matches_golden(&report, NC_DISK, "nc disk sequential");
}

#[test]
fn node_classification_pipelined_disk_matches_seed_trainer_bit_for_bit() {
    let report = nc_trainer()
        .with_pipeline(PipelineConfig::with_workers(2))
        .train_disk(&nc_dataset(), &DiskConfig::node_cache(8, 6))
        .unwrap();
    assert_matches_golden(&report, NC_DISK, "nc disk pipelined");
}

#[test]
fn session_facade_reproduces_the_trainer_trajectories() {
    // The `marius::Session` facade must be a pure wrapper: same config, same
    // bits.
    let data = lp_dataset();
    let model = ModelConfig::paper_link_prediction_graphsage(12).shrunk(5, 12);
    let mut train = TrainConfig::quick(2, 9);
    train.batch_size = 128;
    train.num_negatives = 32;
    train.eval_negatives = 64;
    let mut session = marius::Session::builder()
        .dataset(data)
        .model(model)
        .train(train)
        .storage(marius::Storage::Disk(DiskConfig::comet(8, 4)))
        .build()
        .unwrap();
    let report = session.train().unwrap();
    assert_matches_golden(&report, LP_DISK_COMET, "session lp disk comet");
}
