//! End-to-end telemetry integration tests through the public `Session` API.
//!
//! * **Bit-exactness goldens** — a run with a telemetry recorder attached must
//!   reproduce the untraced run's loss/metric trajectory bit for bit, for both
//!   tasks and for both the in-memory and the pipelined out-of-core paths
//!   (the recorder reads only monotonic clocks, never an RNG stream).
//! * **Trace-export schema** — the Chrome trace document is valid JSON, every
//!   stage of the five-stage pipeline shows up as a named track, begin/end
//!   events pair up LIFO per thread with matching names, and timestamps are
//!   nondecreasing.
//! * **Metrics agreement** — the exported `metrics.json` counters mirror the
//!   `EpochReport` aggregates exactly (same nanosecond sums), and the
//!   queue/buffer/storage instruments are populated.

use marius::core::checkpoint::json::Json;
use marius::graph::datasets::{DatasetSpec, ScaledDataset};
use marius::{
    DiskConfig, ExperimentReport, ModelConfig, NodeClassificationTask, PipelineConfig, Session,
    Storage, Telemetry, TrainConfig,
};

fn lp_data() -> ScaledDataset {
    ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.02), 77)
}

fn lp_train() -> TrainConfig {
    let mut train = TrainConfig::quick(2, 77);
    train.batch_size = 192;
    train.num_negatives = 48;
    train.eval_negatives = 64;
    train
}

fn run_lp(storage: Storage, pipeline: PipelineConfig, telemetry: &Telemetry) -> ExperimentReport {
    let mut session = Session::builder()
        .dataset(lp_data())
        .model(ModelConfig::paper_link_prediction_graphsage(16).shrunk(6, 16))
        .train(lp_train())
        .storage(storage)
        .pipeline(pipeline)
        .telemetry(telemetry)
        .build()
        .expect("valid session");
    session.train().expect("training succeeds")
}

fn nc_run(storage: Storage, pipeline: PipelineConfig, telemetry: &Telemetry) -> ExperimentReport {
    let spec = DatasetSpec::ogbn_arxiv().scaled(0.008);
    let data = ScaledDataset::generate(&spec, 55);
    let mut model = ModelConfig::paper_node_classification(spec.feat_dim, 12);
    model.num_layers = 2;
    model.fanouts = vec![8, 5];
    let mut train = TrainConfig::quick(2, 55);
    train.batch_size = 128;
    let mut session = Session::builder()
        .task(NodeClassificationTask)
        .dataset(data)
        .model(model)
        .train(train)
        .storage(storage)
        .pipeline(pipeline)
        .telemetry(telemetry)
        .build()
        .expect("valid session");
    session.train().expect("training succeeds")
}

fn assert_bit_identical(plain: &ExperimentReport, traced: &ExperimentReport) {
    assert_eq!(plain.epochs.len(), traced.epochs.len());
    for (a, b) in plain.epochs.iter().zip(&traced.epochs) {
        assert_eq!(
            a.loss.to_bits(),
            b.loss.to_bits(),
            "epoch {} loss diverged under telemetry: {} vs {}",
            a.epoch,
            a.loss,
            b.loss
        );
        assert_eq!(a.metric.to_bits(), b.metric.to_bits(), "epoch {}", a.epoch);
        assert_eq!(a.examples, b.examples, "epoch {}", a.epoch);
        assert_eq!(a.partition_loads, b.partition_loads, "epoch {}", a.epoch);
        assert_eq!(a.io_bytes_read, b.io_bytes_read, "epoch {}", a.epoch);
    }
}

#[test]
fn link_prediction_bit_exact_with_telemetry_on_and_off() {
    // In-memory.
    let plain = run_lp(
        Storage::InMemory,
        PipelineConfig::disabled(),
        &Telemetry::disabled(),
    );
    let telemetry = Telemetry::enabled();
    let traced = run_lp(Storage::InMemory, PipelineConfig::disabled(), &telemetry);
    assert_bit_identical(&plain, &traced);
    assert!(!telemetry.span_events().is_empty());

    // Pipelined out-of-core.
    let disk = Storage::Disk(DiskConfig::comet(8, 4));
    let plain = run_lp(
        disk.clone(),
        PipelineConfig::with_workers(2),
        &Telemetry::disabled(),
    );
    let telemetry = Telemetry::enabled();
    let traced = run_lp(disk, PipelineConfig::with_workers(2), &telemetry);
    assert_bit_identical(&plain, &traced);
    assert!(
        telemetry
            .metrics_snapshot()
            .counter("pipeline.steps")
            .unwrap()
            > 0
    );
}

#[test]
fn node_classification_bit_exact_with_telemetry_on_and_off() {
    let plain = nc_run(
        Storage::InMemory,
        PipelineConfig::disabled(),
        &Telemetry::disabled(),
    );
    let traced = nc_run(
        Storage::InMemory,
        PipelineConfig::disabled(),
        &Telemetry::enabled(),
    );
    assert_bit_identical(&plain, &traced);

    let disk = Storage::Disk(DiskConfig::node_cache(8, 6));
    let plain = nc_run(
        disk.clone(),
        PipelineConfig::with_workers(2),
        &Telemetry::disabled(),
    );
    let telemetry = Telemetry::enabled();
    let traced = nc_run(disk, PipelineConfig::with_workers(2), &telemetry);
    assert_bit_identical(&plain, &traced);
    assert!(
        telemetry
            .metrics_snapshot()
            .counter("buffer.misses")
            .unwrap()
            > 0
    );
}

#[test]
fn chrome_trace_export_is_valid_balanced_and_ordered() {
    let telemetry = Telemetry::enabled();
    run_lp(
        Storage::Disk(DiskConfig::comet(8, 4)),
        PipelineConfig::with_workers(2),
        &telemetry,
    );

    let doc = Json::parse(&telemetry.chrome_trace_json()).expect("trace is valid JSON");
    let events = doc
        .field("traceEvents")
        .and_then(|e| e.as_array().map(<[Json]>::to_vec))
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every stage of the five-stage pipeline (plus the trainer loop) has a
    // named track in the thread-name metadata.
    let mut tracks = Vec::new();
    for e in &events {
        if e.str_field("name").ok() == Some("thread_name") {
            tracks.push(
                e.field("args")
                    .and_then(|a| a.str_field("name"))
                    .unwrap()
                    .to_string(),
            );
        }
    }
    for stage in [
        "trainer",
        "context-prefetch",
        "partition-prefetch",
        "batch-worker-0",
        "batch-worker-1",
        "compute",
        "writeback-drain",
    ] {
        assert!(tracks.iter().any(|t| t == stage), "missing track {stage}");
    }

    // Begin/end events pair LIFO per thread with matching names; timestamps
    // are nondecreasing across the whole document; every expected span name
    // appears at least once.
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut names = std::collections::BTreeSet::new();
    let mut last_ts = f64::MIN;
    for e in &events {
        let ph = e.str_field("ph").expect("ph");
        if ph == "M" {
            continue;
        }
        let ts = e.f64_field("ts").expect("ts");
        assert!(ts >= last_ts, "timestamps must be nondecreasing");
        last_ts = ts;
        let tid = e.u64_field("tid").expect("tid");
        let name = e.str_field("name").expect("name").to_string();
        match ph {
            "B" => {
                names.insert(name.clone());
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                let open = stacks.entry(tid).or_default().pop();
                assert_eq!(open.as_deref(), Some(name.as_str()), "unbalanced end");
            }
            "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(stacks.values().all(Vec::is_empty), "spans left open");
    for span in [
        "epoch",
        "epoch.train",
        "context-prefetch.step",
        "partition-prefetch.step",
        "partition-prefetch.read",
        "sample.step",
        "compute.step",
        "compute.batch",
        "writeback.step",
        "writeback.write",
    ] {
        assert!(names.contains(span), "missing span {span}");
    }
}

#[test]
fn metrics_export_agrees_with_epoch_report() {
    let telemetry = Telemetry::enabled();
    let report = run_lp(
        Storage::Disk(DiskConfig::comet(8, 4)),
        PipelineConfig::with_workers(2),
        &telemetry,
    );

    let doc = Json::parse(&telemetry.metrics_json()).expect("metrics.json is valid JSON");
    let counters = doc.field("counters").expect("counters object");
    let counter = |name: &str| {
        counters.u64_field(name).unwrap_or_else(|_| {
            panic!("missing counter {name}");
        })
    };

    // The trainer.* counters mirror the finalized EpochReport fields exactly:
    // the same nanosecond sums, re-derivable from the export alone.
    let ns = |f: fn(&marius::EpochReport) -> std::time::Duration| -> u64 {
        report.epochs.iter().map(|e| f(e).as_nanos() as u64).sum()
    };
    assert_eq!(counter("trainer.epochs"), report.epochs.len() as u64);
    assert_eq!(
        counter("trainer.examples"),
        report.epochs.iter().map(|e| e.examples as u64).sum::<u64>()
    );
    assert_eq!(counter("trainer.io_wait_ns"), ns(|e| e.io_wait_time));
    assert_eq!(counter("trainer.stall_ns"), ns(|e| e.stall_time));
    assert_eq!(counter("trainer.writeback_ns"), ns(|e| e.writeback_time));
    assert_eq!(
        counter("trainer.throttle_wait_ns"),
        ns(|e| e.throttle_wait_time)
    );
    assert_eq!(
        counter("trainer.buffer_hits"),
        report.epochs.iter().map(|e| e.buffer_hits).sum::<u64>()
    );
    assert_eq!(
        counter("trainer.buffer_misses"),
        report.epochs.iter().map(|e| e.buffer_misses).sum::<u64>()
    );
    assert_eq!(
        counter("trainer.buffer_evictions"),
        report
            .epochs
            .iter()
            .map(|e| e.buffer_evictions)
            .sum::<u64>()
    );

    // The pipeline/storage/buffer instruments are live, not just registered.
    assert!(counter("pipeline.steps") > 0);
    assert!(counter("pipeline.batches") > 0);
    assert!(counter("storage.reads") > 0);
    assert!(counter("storage.writes") > 0);
    assert!(counter("buffer.misses") > 0);
    let histograms = doc.field("histograms").expect("histograms object");
    let depth = histograms
        .field("pipeline.queue_depth.batch")
        .expect("batch queue-depth histogram");
    assert!(depth.u64_field("total").unwrap() > 0);
    assert_eq!(
        depth.field("bounds").unwrap().as_array().unwrap().len() + 1,
        depth.field("counts").unwrap().as_array().unwrap().len(),
        "one overflow bucket past the last bound"
    );
}
