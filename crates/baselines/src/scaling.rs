//! Multi-GPU scaling efficiencies measured by the paper for the baseline systems.
//!
//! The paper reports that the baselines under-utilise additional GPUs: DGL's
//! four-GPU training on Papers100M is only 1.4× faster than single-GPU, PyG's is
//! 1.1×, and DGL's eight-GPU training on Mag240M-Cites is 2.2× faster (§1, §7.2).
//! This reproduction runs every system single-threaded, so the end-to-end
//! benchmark harnesses use these measured scaling factors to extrapolate a
//! baseline's single-GPU epoch time to its multi-GPU configuration — exactly the
//! quantity the paper's Tables 3 and 4 tabulate.

use std::time::Duration;

/// Which baseline system a scaling factor applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineSystem {
    /// Deep Graph Library.
    Dgl,
    /// PyTorch Geometric.
    Pyg,
}

/// Measured multi-GPU speedups for the baseline systems.
#[derive(Debug, Clone)]
pub struct MultiGpuScaling {
    entries: Vec<(BaselineSystem, u32, f64)>,
}

impl MultiGpuScaling {
    /// The speedups reported in the paper (§1 and §7.2).
    pub fn from_paper() -> Self {
        MultiGpuScaling {
            entries: vec![
                (BaselineSystem::Dgl, 1, 1.0),
                (BaselineSystem::Dgl, 4, 1.4),
                (BaselineSystem::Dgl, 8, 2.2),
                (BaselineSystem::Pyg, 1, 1.0),
                (BaselineSystem::Pyg, 4, 1.1),
                // PyG multi-GPU link prediction/large graphs fall back to one GPU
                // in the paper; 8-GPU PyG is extrapolated from its 4-GPU trend.
                (BaselineSystem::Pyg, 8, 1.2),
            ],
        }
    }

    /// Speedup of `system` when using `gpus` GPUs relative to one GPU.
    /// Unknown GPU counts interpolate between the nearest known entries.
    pub fn speedup(&self, system: BaselineSystem, gpus: u32) -> f64 {
        let mut known: Vec<(u32, f64)> = self
            .entries
            .iter()
            .filter(|(s, _, _)| *s == system)
            .map(|(_, g, f)| (*g, *f))
            .collect();
        known.sort_by_key(|(g, _)| *g);
        if known.is_empty() {
            return 1.0;
        }
        if let Some(&(_, f)) = known.iter().find(|(g, _)| *g == gpus) {
            return f;
        }
        // Linear interpolation / clamping.
        if gpus <= known[0].0 {
            return known[0].1;
        }
        if gpus >= known[known.len() - 1].0 {
            return known[known.len() - 1].1;
        }
        for w in known.windows(2) {
            let (g0, f0) = w[0];
            let (g1, f1) = w[1];
            if gpus > g0 && gpus < g1 {
                let t = (gpus - g0) as f64 / (g1 - g0) as f64;
                return f0 + t * (f1 - f0);
            }
        }
        1.0
    }

    /// Parallel efficiency (`speedup / gpus`), the utilisation number the paper
    /// uses to argue that multi-GPU baselines waste allocated hardware.
    pub fn efficiency(&self, system: BaselineSystem, gpus: u32) -> f64 {
        self.speedup(system, gpus) / gpus as f64
    }

    /// Extrapolated multi-GPU epoch time from a measured single-GPU epoch time.
    pub fn scaled_epoch_time(
        &self,
        system: BaselineSystem,
        gpus: u32,
        single_gpu_epoch: Duration,
    ) -> Duration {
        single_gpu_epoch.div_f64(self.speedup(system, gpus).max(1e-9))
    }
}

impl Default for MultiGpuScaling {
    fn default() -> Self {
        MultiGpuScaling::from_paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reported_speedups() {
        let s = MultiGpuScaling::from_paper();
        assert_eq!(s.speedup(BaselineSystem::Dgl, 4), 1.4);
        assert_eq!(s.speedup(BaselineSystem::Dgl, 8), 2.2);
        assert_eq!(s.speedup(BaselineSystem::Pyg, 4), 1.1);
        assert_eq!(s.speedup(BaselineSystem::Dgl, 1), 1.0);
    }

    #[test]
    fn interpolation_and_clamping() {
        let s = MultiGpuScaling::from_paper();
        let mid = s.speedup(BaselineSystem::Dgl, 6);
        assert!(mid > 1.4 && mid < 2.2);
        assert_eq!(s.speedup(BaselineSystem::Dgl, 16), 2.2);
        assert_eq!(s.speedup(BaselineSystem::Pyg, 0), 1.0);
    }

    #[test]
    fn efficiency_degrades_with_more_gpus() {
        let s = MultiGpuScaling::from_paper();
        assert!(s.efficiency(BaselineSystem::Dgl, 8) < s.efficiency(BaselineSystem::Dgl, 4));
        assert!(s.efficiency(BaselineSystem::Dgl, 8) < 0.3);
    }

    #[test]
    fn scaled_epoch_time_divides_by_speedup() {
        let s = MultiGpuScaling::from_paper();
        let t = s.scaled_epoch_time(BaselineSystem::Dgl, 4, Duration::from_secs(140));
        assert_eq!(t, Duration::from_secs(100));
    }
}
