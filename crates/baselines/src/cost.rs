//! AWS instance pricing (Table 2) and the $/epoch arithmetic of the evaluation.

use std::time::Duration;

/// The AWS P3 GPU instances used throughout the paper's experiments (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AwsInstance {
    /// P3.2xLarge: 1 GPU, 8 vCPUs, 61 GB RAM, $3.06/hr.
    P3_2xLarge,
    /// P3.8xLarge: 4 GPUs, 32 vCPUs, 244 GB RAM, $12.24/hr.
    P3_8xLarge,
    /// P3.16xLarge: 8 GPUs, 64 vCPUs, 488 GB RAM, $24.48/hr.
    P3_16xLarge,
}

impl AwsInstance {
    /// Hourly on-demand price in dollars (Table 2).
    pub fn price_per_hour(&self) -> f64 {
        match self {
            AwsInstance::P3_2xLarge => 3.06,
            AwsInstance::P3_8xLarge => 12.24,
            AwsInstance::P3_16xLarge => 24.48,
        }
    }

    /// Number of GPUs.
    pub fn gpus(&self) -> u32 {
        match self {
            AwsInstance::P3_2xLarge => 1,
            AwsInstance::P3_8xLarge => 4,
            AwsInstance::P3_16xLarge => 8,
        }
    }

    /// CPU memory in bytes.
    pub fn cpu_memory_bytes(&self) -> u64 {
        match self {
            AwsInstance::P3_2xLarge => 61_000_000_000,
            AwsInstance::P3_8xLarge => 244_000_000_000,
            AwsInstance::P3_16xLarge => 488_000_000_000,
        }
    }

    /// Number of vCPUs.
    pub fn vcpus(&self) -> u32 {
        match self {
            AwsInstance::P3_2xLarge => 8,
            AwsInstance::P3_8xLarge => 32,
            AwsInstance::P3_16xLarge => 64,
        }
    }

    /// Short display name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            AwsInstance::P3_2xLarge => "P3.2xLarge",
            AwsInstance::P3_8xLarge => "P3.8xLarge",
            AwsInstance::P3_16xLarge => "P3.16xLarge",
        }
    }

    /// The cheapest instance whose CPU memory can hold `bytes` of graph data —
    /// how the paper picks the machine for each in-memory baseline (§7.1).
    pub fn cheapest_with_memory(bytes: u64) -> Option<AwsInstance> {
        [
            AwsInstance::P3_2xLarge,
            AwsInstance::P3_8xLarge,
            AwsInstance::P3_16xLarge,
        ]
        .into_iter()
        .find(|i| i.cpu_memory_bytes() >= bytes)
    }
}

/// Dollar-cost bookkeeping for experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel;

impl CostModel {
    /// Cost in dollars of running `instance` for `duration`.
    pub fn cost(instance: AwsInstance, duration: Duration) -> f64 {
        instance.price_per_hour() * duration.as_secs_f64() / 3600.0
    }

    /// Cost per epoch given an epoch duration.
    pub fn cost_per_epoch(instance: AwsInstance, epoch: Duration) -> f64 {
        Self::cost(instance, epoch)
    }

    /// Relative cost reduction of `ours` versus `baseline` (e.g. "64× cheaper").
    pub fn cost_reduction(baseline: f64, ours: f64) -> f64 {
        if ours <= 0.0 {
            f64::INFINITY
        } else {
            baseline / ours
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_prices_and_specs() {
        assert_eq!(AwsInstance::P3_2xLarge.price_per_hour(), 3.06);
        assert_eq!(AwsInstance::P3_8xLarge.price_per_hour(), 12.24);
        assert_eq!(AwsInstance::P3_16xLarge.price_per_hour(), 24.48);
        assert_eq!(AwsInstance::P3_16xLarge.gpus(), 8);
        assert_eq!(AwsInstance::P3_8xLarge.vcpus(), 32);
        assert_eq!(AwsInstance::P3_2xLarge.name(), "P3.2xLarge");
    }

    /// The paper's placement: Papers100M (70 GB) needs a P3.8xLarge,
    /// Mag240M-Cites (385 GB) needs a P3.16xLarge, and nothing in Table 1 fits on
    /// the P3.2xLarge.
    #[test]
    fn instance_selection_matches_paper() {
        assert_eq!(
            AwsInstance::cheapest_with_memory(70_000_000_000),
            Some(AwsInstance::P3_8xLarge)
        );
        assert_eq!(
            AwsInstance::cheapest_with_memory(385_000_000_000),
            Some(AwsInstance::P3_16xLarge)
        );
        assert_eq!(
            AwsInstance::cheapest_with_memory(40_000_000_000),
            Some(AwsInstance::P3_2xLarge)
        );
        assert_eq!(AwsInstance::cheapest_with_memory(600_000_000_000), None);
    }

    #[test]
    fn cost_per_epoch_arithmetic() {
        // Table 3: M-GNN_Disk on Papers100M takes 0.83 min/epoch on a P3.2xLarge
        // at ~$0.04 per epoch.
        let epoch = Duration::from_secs_f64(0.83 * 60.0);
        let cost = CostModel::cost_per_epoch(AwsInstance::P3_2xLarge, epoch);
        assert!((cost - 0.042).abs() < 0.005);
        // Table 4: DGL on WikiKG90Mv2 takes 844 min/epoch on a P3.8xLarge at ~$172.
        let epoch = Duration::from_secs_f64(844.0 * 60.0);
        let cost = CostModel::cost_per_epoch(AwsInstance::P3_8xLarge, epoch);
        assert!((cost - 172.0).abs() < 3.0);
    }

    #[test]
    fn cost_reduction_ratio() {
        assert_eq!(CostModel::cost_reduction(64.0, 1.0), 64.0);
        assert!(CostModel::cost_reduction(1.0, 0.0).is_infinite());
    }
}
