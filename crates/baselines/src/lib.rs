//! Baseline systems the paper compares MariusGNN against.
//!
//! * [`layerwise`] — a DGL/PyG-style mini-batch constructor that re-samples
//!   one-hop neighbourhoods **independently per GNN layer** (the redundancy
//!   Figure 1 illustrates). It produces per-layer [`marius_gnn::LayerContext`]s
//!   so the exact same GNN layers can execute on it, which is how the Table 6
//!   comparisons (sampling time, compute time, nodes/edges sampled) are
//!   regenerated with everything else held equal.
//! * [`nextdoor`] — a cost model of NextDoor's optimised GPU sampling kernels
//!   (low per-sample constant, no cross-layer reuse, graph must fit in GPU
//!   memory), used for Table 7.
//! * [`scaling`] — the multi-GPU scaling efficiencies the paper measured for DGL
//!   and PyG, used to extrapolate single-GPU measurements to the 4-/8-GPU
//!   baselines of Tables 3 and 4.
//! * [`cost`] — AWS P3 instance pricing (Table 2) and the $/epoch arithmetic used
//!   throughout the evaluation.

pub mod cost;
pub mod layerwise;
pub mod nextdoor;
pub mod scaling;

pub use cost::{AwsInstance, CostModel};
pub use layerwise::{LayerwiseSample, LayerwiseSampler};
pub use nextdoor::NextDoorModel;
pub use scaling::MultiGpuScaling;
