//! DGL/PyG-style layer-wise mini-batch construction (the baseline sampler).
//!
//! Existing systems build one message-flow block per GNN layer, sampling the
//! one-hop neighbourhood of **every** node a layer needs — even if that node's
//! neighbourhood was already sampled for a shallower layer. The repeated work is
//! the redundancy the DENSE structure eliminates; holding the GNN layers constant
//! and swapping only the sampler is how this reproduction regenerates Table 6.

use marius_gnn::LayerContext;
use marius_graph::{Edge, InMemorySubgraph, NodeId, RelId};
use marius_sampling::{SampleStats, SamplingDirection};
use rand::seq::index::sample as index_sample;
use rand::Rng;
use std::collections::HashMap;

/// A layer-wise mini-batch sample: one context per GNN layer plus the node lists
/// whose representations feed each layer.
#[derive(Debug, Clone)]
pub struct LayerwiseSample {
    /// Per-layer contexts ordered from the innermost layer (largest input, uses
    /// base features) to the outermost (produces target representations).
    pub contexts: Vec<LayerContext>,
    /// Input node ids of each context, in the same order as the context rows.
    pub layer_input_nodes: Vec<Vec<NodeId>>,
    /// The nodes whose base representations must be gathered (the innermost
    /// layer's input nodes).
    pub base_nodes: Vec<NodeId>,
    /// The original target nodes (the outermost layer's output).
    pub target_nodes: Vec<NodeId>,
    /// Sampling statistics comparable with [`marius_sampling::SampleStats`].
    pub stats: SampleStats,
}

/// The layer-wise re-sampling mini-batch constructor.
#[derive(Debug, Clone)]
pub struct LayerwiseSampler {
    /// Maximum neighbours per node per hop, ordered away from the target nodes.
    fanouts: Vec<usize>,
    direction: SamplingDirection,
}

impl LayerwiseSampler {
    /// Creates a sampler for a `fanouts.len()`-layer GNN.
    pub fn new(fanouts: Vec<usize>, direction: SamplingDirection) -> Self {
        LayerwiseSampler { fanouts, direction }
    }

    /// Number of layers sampled.
    pub fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    /// Builds the layer-wise sample for `target_nodes`.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        graph: &InMemorySubgraph,
        target_nodes: &[NodeId],
        rng: &mut R,
    ) -> LayerwiseSample {
        // Deduplicate the targets, preserving order of first appearance.
        let mut seen_targets = HashMap::new();
        let mut targets: Vec<NodeId> = Vec::new();
        for &t in target_nodes {
            seen_targets.entry(t).or_insert_with(|| {
                targets.push(t);
            });
        }

        let mut blocks: Vec<(LayerContext, Vec<NodeId>)> = Vec::new();
        let mut current_outputs = targets.clone();
        let mut total_edges = 0usize;
        let mut one_hop_operations = 0usize;

        // Walk outward from the targets: fanouts[0] is the targets' own hop.
        for &fanout in &self.fanouts {
            one_hop_operations += current_outputs.len();
            let mut nbrs: Vec<NodeId> = Vec::new();
            let mut rels: Vec<RelId> = Vec::new();
            let mut offsets: Vec<usize> = Vec::with_capacity(current_outputs.len());
            for &node in &current_outputs {
                offsets.push(nbrs.len());
                match self.direction {
                    SamplingDirection::Incoming => sample_edges(
                        graph.incoming(node),
                        fanout,
                        true,
                        &mut nbrs,
                        &mut rels,
                        rng,
                    ),
                    SamplingDirection::Outgoing => sample_edges(
                        graph.outgoing(node),
                        fanout,
                        false,
                        &mut nbrs,
                        &mut rels,
                        rng,
                    ),
                    SamplingDirection::Both => {
                        sample_edges(
                            graph.incoming(node),
                            fanout,
                            true,
                            &mut nbrs,
                            &mut rels,
                            rng,
                        );
                        sample_edges(
                            graph.outgoing(node),
                            fanout,
                            false,
                            &mut nbrs,
                            &mut rels,
                            rng,
                        );
                    }
                }
            }
            total_edges += nbrs.len();

            // The block's input nodes are the fresh neighbours followed by the
            // output nodes (so outputs sit at the tail, the layout LayerContext
            // expects). Unlike DENSE, "fresh" is judged against THIS layer only —
            // a node sampled for an earlier layer is sampled again here.
            let mut position: HashMap<NodeId, usize> = HashMap::new();
            let mut input_nodes: Vec<NodeId> = Vec::new();
            for &n in &nbrs {
                if !current_outputs.contains(&n) && !position.contains_key(&n) {
                    position.insert(n, input_nodes.len());
                    input_nodes.push(n);
                }
            }
            let self_offset = input_nodes.len();
            for &n in &current_outputs {
                position.insert(n, input_nodes.len());
                input_nodes.push(n);
            }
            let repr_map: Vec<usize> = nbrs.iter().map(|n| position[n]).collect();

            let ctx = LayerContext {
                repr_map,
                nbr_offsets: offsets,
                nbr_rels: rels,
                self_offset,
                num_input_rows: input_nodes.len(),
            };
            blocks.push((ctx, input_nodes.clone()));
            // The next (deeper) layer must produce representations for every
            // input node of this layer.
            current_outputs = input_nodes;
        }

        // Execution order is innermost (deepest) first.
        blocks.reverse();
        let layer_input_nodes: Vec<Vec<NodeId>> =
            blocks.iter().map(|(_, nodes)| nodes.clone()).collect();
        let contexts: Vec<LayerContext> = blocks.into_iter().map(|(c, _)| c).collect();
        let base_nodes = layer_input_nodes
            .first()
            .cloned()
            .unwrap_or_else(|| targets.clone());

        let stats = SampleStats {
            nodes_sampled: base_nodes.len(),
            edges_sampled: total_edges,
            one_hop_operations,
        };
        LayerwiseSample {
            contexts,
            layer_input_nodes,
            base_nodes,
            target_nodes: targets,
            stats,
        }
    }
}

fn sample_edges<R: Rng + ?Sized>(
    edges: &[Edge],
    fanout: usize,
    incoming: bool,
    nbrs: &mut Vec<NodeId>,
    rels: &mut Vec<RelId>,
    rng: &mut R,
) {
    if edges.len() <= fanout {
        for e in edges {
            nbrs.push(if incoming { e.src } else { e.dst });
            rels.push(e.rel);
        }
    } else {
        for idx in index_sample(rng, edges.len(), fanout).into_iter() {
            let e = &edges[idx];
            nbrs.push(if incoming { e.src } else { e.dst });
            rels.push(e.rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_gnn::{Encoder, GraphSageLayer};
    use marius_sampling::{MultiHopSampler, SamplingDirection};
    use marius_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring_graph(n: u64, extra: u64) -> InMemorySubgraph {
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push(Edge::new((i + 1) % n, i));
            edges.push(Edge::new((i + extra) % n, i));
            edges.push(Edge::new((i + 2 * extra) % n, i));
        }
        InMemorySubgraph::from_edges(&edges)
    }

    #[test]
    fn blocks_are_consistent_for_execution() {
        let graph = ring_graph(50, 7);
        let sampler = LayerwiseSampler::new(vec![3, 3], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(1);
        let sample = sampler.sample(&graph, &[0, 1, 2], &mut rng);
        assert_eq!(sample.contexts.len(), 2);
        // Output of the inner block equals the input of the outer block.
        let inner_outputs = &sample.layer_input_nodes[0][sample.contexts[0].self_offset..];
        assert_eq!(inner_outputs, &sample.layer_input_nodes[1][..]);
        // The outermost block's outputs are the targets.
        let outer = &sample.contexts[1];
        let outer_outputs = &sample.layer_input_nodes[1][outer.self_offset..];
        assert_eq!(outer_outputs, sample.target_nodes.as_slice());
        // repr_map indices stay in range.
        for (ctx, nodes) in sample.contexts.iter().zip(&sample.layer_input_nodes) {
            assert_eq!(ctx.num_input_rows, nodes.len());
            assert!(ctx.repr_map.iter().all(|&i| i < nodes.len()));
        }
    }

    #[test]
    fn layerwise_samples_more_than_dense_on_deep_gnns() {
        // The headline claim behind Table 6: without cross-layer reuse the
        // baseline samples strictly more edges than DENSE for the same fanouts.
        let graph = ring_graph(200, 17);
        let targets: Vec<NodeId> = (0..20).collect();
        let fanouts = vec![3, 3, 3];
        let mut rng1 = StdRng::seed_from_u64(2);
        let mut rng2 = StdRng::seed_from_u64(2);
        let dense = MultiHopSampler::new(fanouts.clone(), SamplingDirection::Incoming)
            .sample(&graph, &targets, &mut rng1);
        let layerwise = LayerwiseSampler::new(fanouts, SamplingDirection::Incoming)
            .sample(&graph, &targets, &mut rng2);
        assert!(
            layerwise.stats.edges_sampled > dense.stats().edges_sampled,
            "layerwise {} should exceed dense {}",
            layerwise.stats.edges_sampled,
            dense.stats().edges_sampled
        );
        assert!(layerwise.stats.one_hop_operations > dense.stats().one_hop_operations);
    }

    #[test]
    fn single_layer_matches_dense_sampling_volume() {
        // With one layer there is no reuse opportunity, so the two samplers do
        // the same amount of work.
        let graph = ring_graph(100, 11);
        let targets: Vec<NodeId> = (0..10).collect();
        let mut rng1 = StdRng::seed_from_u64(3);
        let mut rng2 = StdRng::seed_from_u64(3);
        let dense = MultiHopSampler::new(vec![5], SamplingDirection::Incoming)
            .sample(&graph, &targets, &mut rng1);
        let layerwise = LayerwiseSampler::new(vec![5], SamplingDirection::Incoming)
            .sample(&graph, &targets, &mut rng2);
        assert_eq!(dense.stats().edges_sampled, layerwise.stats.edges_sampled);
        assert_eq!(
            dense.stats().one_hop_operations,
            layerwise.stats.one_hop_operations
        );
    }

    #[test]
    fn encoder_runs_on_layerwise_contexts() {
        let graph = ring_graph(60, 7);
        let sampler = LayerwiseSampler::new(vec![4, 4], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(4);
        let sample = sampler.sample(&graph, &[5, 6, 7], &mut rng);

        let mut layer_rng = StdRng::seed_from_u64(5);
        let encoder = Encoder::new()
            .push_layer(Box::new(GraphSageLayer::new(
                4,
                8,
                marius_gnn::layers::Aggregator::Mean,
                true,
                &mut layer_rng,
            )))
            .push_layer(Box::new(GraphSageLayer::new(
                8,
                2,
                marius_gnn::layers::Aggregator::Mean,
                false,
                &mut layer_rng,
            )));
        let h0 = marius_tensor::uniform_init(&mut layer_rng, sample.base_nodes.len(), 4, 1.0);
        let acts = encoder.forward_contexts(&sample.contexts, h0);
        assert_eq!(acts.output.shape(), (3, 2));
        assert!(acts.output.all_finite());
    }

    #[test]
    fn encoder_backward_works_on_layerwise_contexts() {
        let graph = ring_graph(60, 7);
        let sampler = LayerwiseSampler::new(vec![4, 4], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(6);
        let sample = sampler.sample(&graph, &[5, 6, 7], &mut rng);
        let mut layer_rng = StdRng::seed_from_u64(7);
        let mut encoder = Encoder::new()
            .push_layer(Box::new(GraphSageLayer::new(
                3,
                4,
                marius_gnn::layers::Aggregator::Sum,
                true,
                &mut layer_rng,
            )))
            .push_layer(Box::new(GraphSageLayer::new(
                4,
                2,
                marius_gnn::layers::Aggregator::Sum,
                false,
                &mut layer_rng,
            )));
        let h0 = marius_tensor::uniform_init(&mut layer_rng, sample.base_nodes.len(), 3, 1.0);
        let acts = encoder.forward_contexts(&sample.contexts, h0);
        let grad = encoder.backward(&acts, &Tensor::ones(3, 2));
        assert_eq!(grad.rows(), sample.base_nodes.len());
        assert!(grad.all_finite());
    }

    #[test]
    fn duplicate_targets_are_deduplicated() {
        let graph = ring_graph(30, 3);
        let sampler = LayerwiseSampler::new(vec![2], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(8);
        let sample = sampler.sample(&graph, &[4, 4, 4, 9], &mut rng);
        assert_eq!(sample.target_nodes, vec![4, 9]);
    }

    #[test]
    fn isolated_targets_produce_empty_blocks() {
        let graph = ring_graph(10, 3);
        let sampler = LayerwiseSampler::new(vec![2, 2], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(9);
        let sample = sampler.sample(&graph, &[999], &mut rng);
        assert_eq!(sample.base_nodes, vec![999]);
        assert_eq!(sample.stats.edges_sampled, 0);
    }

    #[test]
    fn fanout_is_respected_per_layer() {
        let graph = ring_graph(100, 11);
        let sampler = LayerwiseSampler::new(vec![2, 2], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(10);
        let sample = sampler.sample(&graph, &[0], &mut rng);
        // Outer block: one target with at most 2 neighbours.
        assert!(sample.contexts[1].num_edges() <= 2);
        assert_eq!(sampler.num_layers(), 2);
    }
}
