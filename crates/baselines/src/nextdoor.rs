//! A cost model of NextDoor's GPU sampling kernels (Table 7 comparator).
//!
//! NextDoor (EuroSys'21) accelerates graph sampling with GPU kernels that have a
//! very low per-sample cost but, like DGL/PyG, re-sample every layer
//! independently and require the whole graph to fit in GPU memory. MariusGNN's
//! GPU sampler builds DENSE with stock PyTorch tensor ops: a higher fixed cost
//! per hop, but far fewer samples for deep GNNs thanks to cross-layer reuse.
//! Table 7 is the crossover between those two regimes; this module models the
//! NextDoor side (per-sample throughput, per-kernel launch overhead, GPU memory
//! ceiling) so the benchmark can place both systems on the same axis.

use std::time::Duration;

/// Cost model for an optimised GPU sampling implementation without sample reuse.
#[derive(Debug, Clone, Copy)]
pub struct NextDoorModel {
    /// Per-sampled-edge cost (optimised kernels process tens of millions of
    /// samples per second).
    pub per_sample: Duration,
    /// Fixed overhead per hop (kernel launches, load balancing).
    pub per_hop_overhead: Duration,
    /// GPU memory available for the sample buffers, in bytes.
    pub gpu_memory_bytes: u64,
    /// Bytes of GPU memory used per sampled edge (frontier + output buffers).
    pub bytes_per_sample: u64,
}

impl NextDoorModel {
    /// Constants calibrated to the V100 numbers reported in Table 7: one- and
    /// two-layer sampling completes in a fraction of a millisecond, while the
    /// four-layer configuration (tens of millions of samples) takes >100 ms and
    /// five layers exhausts the 16 GB of GPU memory.
    pub fn v100() -> Self {
        NextDoorModel {
            per_sample: Duration::from_nanos(25),
            per_hop_overhead: Duration::from_micros(50),
            gpu_memory_bytes: 16 * 1024 * 1024 * 1024,
            bytes_per_sample: 64,
        }
    }

    /// Number of edges an exhaustive layer-wise sampler draws for `targets`
    /// target nodes with a fixed `fanout` per node over `layers` hops:
    /// `Σ_{l=1..layers} targets · fanout^l`.
    pub fn samples_without_reuse(targets: u64, fanout: u64, layers: u32) -> u64 {
        let mut frontier = targets;
        let mut total = 0u64;
        for _ in 0..layers {
            frontier = frontier.saturating_mul(fanout);
            total = total.saturating_add(frontier);
        }
        total
    }

    /// Estimated sampling time for a mini batch that draws `samples` edges over
    /// `layers` hops, or `None` if the sample buffers exceed GPU memory (the OOM
    /// entry of Table 7).
    pub fn sampling_time(&self, samples: u64, layers: u32) -> Option<Duration> {
        if samples.saturating_mul(self.bytes_per_sample) > self.gpu_memory_bytes {
            return None;
        }
        Some(self.per_hop_overhead * layers + self.per_sample.mul_f64(samples as f64))
    }

    /// Estimated DENSE-on-GPU sampling time for the same batch: MariusGNN's GPU
    /// sampler uses generic tensor ops (higher per-hop overhead) but only draws
    /// `samples` edges *after reuse*, which is what `marius_sampling` reports.
    pub fn dense_gpu_sampling_time(samples: u64, layers: u32) -> Duration {
        // Stock tensor-op pipeline: ~1 ms of fixed overhead per hop (dispatch,
        // unique, concatenation) plus a modest per-sample cost.
        Duration::from_micros(900) * layers + Duration::from_nanos(60).mul_f64(samples as f64)
    }
}

impl Default for NextDoorModel {
    fn default() -> Self {
        NextDoorModel::v100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_counts_grow_geometrically() {
        assert_eq!(NextDoorModel::samples_without_reuse(10, 20, 1), 200);
        assert_eq!(NextDoorModel::samples_without_reuse(10, 20, 2), 200 + 4000);
        let deep = NextDoorModel::samples_without_reuse(1000, 20, 5);
        assert!(deep > 3_000_000_000);
    }

    #[test]
    fn shallow_sampling_is_fast_and_feasible() {
        let model = NextDoorModel::v100();
        let samples = NextDoorModel::samples_without_reuse(1000, 20, 1);
        let t = model.sampling_time(samples, 1).expect("fits in memory");
        assert!(t < Duration::from_millis(2));
    }

    #[test]
    fn five_layer_sampling_exhausts_gpu_memory() {
        // Table 7's OOM entry: LiveJournal, 20 neighbours per layer, 5 layers.
        let model = NextDoorModel::v100();
        let samples = NextDoorModel::samples_without_reuse(1000, 20, 5);
        assert!(model.sampling_time(samples, 5).is_none());
    }

    #[test]
    fn crossover_at_deep_gnns() {
        // The Table 7 shape: NextDoor wins for 1-2 layers, DENSE wins by 4 layers.
        let model = NextDoorModel::v100();
        let fanout = 20u64;
        let targets = 1000u64;

        let shallow_nextdoor = model
            .sampling_time(NextDoorModel::samples_without_reuse(targets, fanout, 1), 1)
            .unwrap();
        // DENSE draws roughly the same number of samples for one layer.
        let shallow_dense = NextDoorModel::dense_gpu_sampling_time(targets * fanout, 1);
        assert!(shallow_nextdoor < shallow_dense);

        let deep_samples_nextdoor = NextDoorModel::samples_without_reuse(targets, fanout, 4);
        let deep_nextdoor = model.sampling_time(deep_samples_nextdoor, 4).unwrap();
        // With reuse the four-layer DENSE sample touches a small multiple of the
        // graph's reachable nodes rather than fanout^4 — use 100× the one-hop
        // volume as a generous stand-in.
        let deep_dense = NextDoorModel::dense_gpu_sampling_time(targets * fanout * 100, 4);
        assert!(deep_dense < deep_nextdoor);
    }

    #[test]
    fn default_is_v100() {
        let d = NextDoorModel::default();
        assert_eq!(d.gpu_memory_bytes, 16 * 1024 * 1024 * 1024);
    }
}
