//! Property tests pinning histogram bucket determinism: the fixed-bucket
//! rule is a pure function of (bounds, value), recording order never changes
//! the final counts, and every sample lands in exactly one bucket.

use marius_telemetry::{bucket_index, Telemetry};
use proptest::prelude::*;

/// Strictly increasing bucket bounds (1..=8 of them).
fn bounds_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1_000, 1..8).prop_map(|mut raw| {
        raw.sort_unstable();
        raw.dedup();
        raw
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The bucket rule: `v` lands in the first bucket whose inclusive upper
    /// bound is `>= v`, or the overflow bucket.
    #[test]
    fn bucket_index_matches_linear_scan(
        bounds in bounds_strategy(),
        v in 0u64..2_000,
    ) {
        let expect = bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(bounds.len());
        prop_assert_eq!(bucket_index(&bounds, v), expect);
        // Inclusive upper bounds: the bound itself lands in its own bucket.
        for (i, &b) in bounds.iter().enumerate() {
            prop_assert_eq!(bucket_index(&bounds, b), i);
        }
    }

    /// Recording the same multiset of samples in any order yields identical
    /// counts, totals and sums — bucketing is deterministic and
    /// order-independent.
    #[test]
    fn histogram_counts_are_order_independent(
        bounds in bounds_strategy(),
        samples in proptest::collection::vec(0u64..2_000, 0..64),
    ) {
        let forward = Telemetry::enabled();
        let h = forward.histogram("h", &bounds);
        for &v in &samples {
            h.record(v);
        }
        let reverse = Telemetry::enabled();
        let h = reverse.histogram("h", &bounds);
        for &v in samples.iter().rev() {
            h.record(v);
        }
        let a = forward.metrics_snapshot();
        let b = reverse.metrics_snapshot();
        let ha = a.histogram("h").unwrap();
        let hb = b.histogram("h").unwrap();
        prop_assert_eq!(ha, hb);
        // Every sample landed in exactly one bucket.
        prop_assert_eq!(ha.counts.iter().sum::<u64>(), samples.len() as u64);
        prop_assert_eq!(ha.total, samples.len() as u64);
        prop_assert_eq!(ha.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(ha.counts.len(), bounds.len() + 1);
    }
}
