//! End-to-end telemetry for the MariusGNN reproduction: per-stage tracing
//! spans, a metrics registry, and Chrome-trace export.
//!
//! # Event model
//!
//! A [`Telemetry`] value is a cheaply clonable handle shared by every layer
//! of the system — one handle is cloned into each pipeline stage thread, the
//! partition store/buffer, and the trainer epoch loop. It records two kinds
//! of data:
//!
//! - **Spans** — begin/end (and instant) events carrying a stage name plus
//!   optional `step` and `partition` labels. Each thread records into a
//!   thread-private buffer through a [`SpanScope`] (obtained from
//!   [`Telemetry::scope`]); timestamps come from one shared monotonic origin
//!   [`std::time::Instant`], and the buffers are merged into the recorder
//!   when the scope drops (typically at epoch end). Recording a span is two
//!   `Vec` pushes and one relaxed atomic increment — no locks on the hot
//!   path.
//! - **Metrics** — named [`Counter`]s, [`Gauge`]s and fixed-bucket
//!   [`Histogram`]s ([`Telemetry::counter`] / [`Telemetry::gauge`] /
//!   [`Telemetry::histogram`]). Handles are `Option<Arc<..>>` wrappers whose
//!   record methods are relaxed atomics; registration (name lookup) takes a
//!   short-lived lock, so register once and keep the handle.
//!
//! # Overhead guarantees
//!
//! - **Zero-allocation when disabled.** [`Telemetry::disabled`] (also the
//!   `Default`) holds no allocation at all; every scope, counter and
//!   histogram handle derived from it is `None` inside, so each record call
//!   is a single branch. Cloning a disabled handle is free.
//! - **Deterministic when enabled.** The recorder only ever *reads* monotonic
//!   clocks and increments private state. It draws no randomness, takes no
//!   locks shared with training code, and never sits inside an RNG-consuming
//!   path — so loss trajectories are bit-identical with telemetry on or off
//!   (pinned by the `telemetry_bit_exactness` golden tests).
//!
//! # Exporters
//!
//! - [`Telemetry::chrome_trace_json`] renders merged spans as a Chrome
//!   `trace_event` JSON document. Save it as `trace.json` and load it in
//!   `chrome://tracing`, or drag-and-drop the file into
//!   <https://ui.perfetto.dev> — one track per pipeline stage thread, spans
//!   labelled with step/partition, queue waits visible as gaps.
//! - [`Telemetry::metrics_json`] renders the registry as an aggregated
//!   `metrics.json` snapshot (written next to `BENCH_*.json` by the bench
//!   harnesses). Counters mirror the `EpochReport`/`PipelineReport`
//!   aggregates exactly — same sums, with per-event provenance in the trace.
//!
//! ```
//! use marius_telemetry::{Telemetry, NO_LABEL};
//!
//! let telemetry = Telemetry::enabled();
//! let mut scope = telemetry.scope("compute");
//! scope.begin("compute-step", 0, NO_LABEL);
//! telemetry.counter("pipeline.batches").incr();
//! scope.end();
//! drop(scope); // merge the thread buffer
//! let trace = telemetry.chrome_trace_json();
//! assert!(trace.contains("compute-step"));
//! ```

mod metrics;
mod trace;

pub mod json;

pub use metrics::{bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot};
pub use trace::{Phase, SpanEvent, NO_LABEL};

use metrics::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Inner {
    origin: Instant,
    spans: Mutex<Vec<SpanEvent>>,
    threads: Mutex<Vec<String>>,
    seq: AtomicU64,
    metrics: MetricsRegistry,
}

/// The telemetry recorder handle. See the [module docs](self) for the event
/// model and overhead guarantees.
///
/// `Clone` is cheap (an `Arc` clone when enabled, a copy of `None` when
/// disabled); clones share one recorder.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// Creates an enabled recorder.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                spans: Mutex::new(Vec::new()),
                threads: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
                metrics: MetricsRegistry::default(),
            })),
        }
    }

    /// Creates a disabled (no-op, zero-allocation) recorder. Equivalent to
    /// `Telemetry::default()`.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a per-thread span recorder labelled `thread_label` (the track
    /// name in the exported trace). Buffered events merge into the recorder
    /// when the returned scope drops; any spans still open at that point are
    /// closed automatically, so the merged stream is always balanced.
    pub fn scope(&self, thread_label: &str) -> SpanScope {
        let Some(inner) = &self.inner else {
            return SpanScope { state: None };
        };
        let tid = {
            let mut threads = inner.threads.lock().unwrap_or_else(|e| e.into_inner());
            threads.push(thread_label.to_string());
            (threads.len() - 1) as u32
        };
        SpanScope {
            state: Some(ScopeState {
                shared: Arc::clone(inner),
                tid,
                events: Vec::new(),
                open: Vec::new(),
            }),
        }
    }

    /// Returns the counter registered under `name` (a no-op handle when
    /// disabled). Registration locks briefly; keep the handle for hot paths.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.metrics.counter(name),
            None => Counter::default(),
        }
    }

    /// Returns the gauge registered under `name` (no-op when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.metrics.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Returns the fixed-bucket histogram registered under `name`, creating
    /// it with `bounds` (strictly increasing inclusive upper bounds) on first
    /// registration. No-op handle when disabled.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        match &self.inner {
            Some(inner) => inner.metrics.histogram(name, bounds),
            None => Histogram::default(),
        }
    }

    /// Point-in-time copy of the metrics registry (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => inner.metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// A copy of every merged span event so far (empty when disabled).
    /// Events from still-open [`SpanScope`]s are not included until those
    /// scopes drop.
    pub fn span_events(&self) -> Vec<SpanEvent> {
        match &self.inner {
            Some(inner) => inner
                .spans
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone(),
            None => Vec::new(),
        }
    }

    /// Renders the merged spans as a Chrome `trace_event` JSON document
    /// (see the [module docs](self) for how to open it). An empty-but-valid
    /// document when disabled.
    pub fn chrome_trace_json(&self) -> String {
        match &self.inner {
            Some(inner) => {
                let threads = inner
                    .threads
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone();
                let mut events = inner
                    .spans
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .clone();
                trace::chrome_trace_json(&threads, &mut events)
            }
            None => trace::chrome_trace_json(&[], &mut []),
        }
    }

    /// Renders the metrics registry as the `metrics.json` document.
    pub fn metrics_json(&self) -> String {
        self.metrics_snapshot().to_json()
    }

    /// Writes [`Telemetry::chrome_trace_json`] to `path`.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_trace_json())
    }

    /// Writes [`Telemetry::metrics_json`] to `path`.
    pub fn write_metrics_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.metrics_json())
    }
}

struct ScopeState {
    shared: Arc<Inner>,
    tid: u32,
    events: Vec<SpanEvent>,
    /// Names of the currently open spans (LIFO), so end events carry the
    /// matching name — Chrome pairs by stack, but named ends keep the trace
    /// self-describing and checkable.
    open: Vec<&'static str>,
}

impl ScopeState {
    fn record(&mut self, name: &'static str, phase: Phase, step: i64, partition: i64) {
        let ts_ns = u64::try_from(self.shared.origin.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        self.events.push(SpanEvent {
            name,
            phase,
            ts_ns,
            tid: self.tid,
            seq,
            step,
            partition,
        });
    }
}

/// Per-thread span recorder. Obtained from [`Telemetry::scope`]; records into
/// a thread-private buffer and merges it into the shared recorder on drop.
///
/// Spans nest LIFO: [`SpanScope::end`] always closes the innermost open span,
/// so a begin can never be left unmatched (any span still open when the scope
/// drops is closed at that point).
pub struct SpanScope {
    state: Option<ScopeState>,
}

impl SpanScope {
    /// Opens a span. `step` / `partition` label the span in the trace; pass
    /// [`NO_LABEL`] when not applicable.
    #[inline]
    pub fn begin(&mut self, name: &'static str, step: i64, partition: i64) {
        if let Some(state) = &mut self.state {
            state.record(name, Phase::Begin, step, partition);
            state.open.push(name);
        }
    }

    /// Closes the innermost open span. A no-op if none is open.
    #[inline]
    pub fn end(&mut self) {
        if let Some(state) = &mut self.state {
            if let Some(name) = state.open.pop() {
                state.record(name, Phase::End, NO_LABEL, NO_LABEL);
            }
        }
    }

    /// Records a zero-duration instant event.
    #[inline]
    pub fn instant(&mut self, name: &'static str, step: i64, partition: i64) {
        if let Some(state) = &mut self.state {
            state.record(name, Phase::Instant, step, partition);
        }
    }

    /// Runs `f` inside a `begin`/`end` pair.
    #[inline]
    pub fn timed<T>(
        &mut self,
        name: &'static str,
        step: i64,
        partition: i64,
        f: impl FnOnce() -> T,
    ) -> T {
        self.begin(name, step, partition);
        let out = f();
        self.end();
        out
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        if let Some(mut state) = self.state.take() {
            while let Some(name) = state.open.pop() {
                state.record(name, Phase::End, NO_LABEL, NO_LABEL);
            }
            state
                .shared
                .spans
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .append(&mut state.events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_fully_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let mut scope = t.scope("x");
        scope.begin("a", 0, NO_LABEL);
        scope.end();
        drop(scope);
        t.counter("c").incr();
        assert!(t.span_events().is_empty());
        assert!(t.metrics_snapshot().counters.is_empty());
        let trace = t.chrome_trace_json();
        assert!(trace.contains("\"traceEvents\""));
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
    }

    #[test]
    fn spans_merge_balanced_and_ordered() {
        let t = Telemetry::enabled();
        let mut scope = t.scope("worker");
        scope.begin("outer", 1, NO_LABEL);
        scope.begin("inner", 1, 2);
        scope.end();
        scope.instant("tick", 1, NO_LABEL);
        drop(scope); // "outer" still open: closed automatically
        let events = t.span_events();
        let begins = events.iter().filter(|e| e.phase == Phase::Begin).count();
        let ends = events.iter().filter(|e| e.phase == Phase::End).count();
        assert_eq!(begins, 2);
        assert_eq!(ends, 2);
        // Per-thread events keep record order via seq.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        // Nesting is LIFO: depth never goes negative and ends at zero.
        let mut depth = 0i64;
        for e in &events {
            match e.phase {
                Phase::Begin => depth += 1,
                Phase::End => {
                    depth -= 1;
                    assert!(depth >= 0);
                }
                Phase::Instant => {}
            }
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn scopes_from_threads_all_merge() {
        let t = Telemetry::enabled();
        std::thread::scope(|s| {
            for i in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    let mut scope = t.scope("stage");
                    scope.timed("work", i, NO_LABEL, || {});
                });
            }
        });
        let events = t.span_events();
        assert_eq!(events.len(), 8);
        let tids: std::collections::BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4);
    }

    #[test]
    fn counters_shared_across_clones() {
        let t = Telemetry::enabled();
        let c1 = t.counter("n");
        let c2 = t.clone().counter("n");
        c1.add(1);
        c2.add(2);
        assert_eq!(t.metrics_snapshot().counter("n"), Some(3));
    }
}
