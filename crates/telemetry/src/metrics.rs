//! The metrics registry: named counters, gauges and fixed-bucket histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Option<Arc<..>>`
//! wrappers. On a disabled [`crate::Telemetry`] every handle is `None`, so the
//! hot-path record methods reduce to a single branch and **allocate nothing**.
//! On an enabled recorder all updates are relaxed atomic operations — no lock
//! is ever taken while recording, only while registering a new name or taking
//! a snapshot.

use crate::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing named counter.
///
/// The default value is a disabled (no-op) handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// Whether this handle records into a live registry.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to the counter. A no-op on a disabled handle.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds a duration, recorded in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn add_duration(&self, d: Duration) {
        if self.0.is_some() {
            self.add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Current value (0 on a disabled handle).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map(|cell| cell.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// A named gauge holding the most recently set value.
///
/// The default value is a disabled (no-op) handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicI64>>);

impl Gauge {
    /// Sets the gauge. A no-op on a disabled handle.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 on a disabled handle).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map(|cell| cell.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Returns the bucket index for `v` against `bounds` (inclusive upper bounds,
/// strictly increasing): the first bucket whose bound is `>= v`, or the
/// overflow bucket `bounds.len()` when `v` exceeds every bound.
///
/// This function is the *only* bucketing rule in the crate; the histogram
/// property tests pin its determinism (same value → same bucket, order of
/// recording irrelevant).
pub fn bucket_index(bounds: &[u64], v: u64) -> usize {
    bounds.partition_point(|&b| b < v)
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    bounds: Vec<u64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(bounds: &[u64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        HistogramCore {
            bounds: bounds.to_vec(),
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram of `u64` samples.
///
/// Buckets are fixed at registration time (inclusive upper bounds plus an
/// implicit overflow bucket), so recording never allocates and bucket
/// boundaries are identical across runs. The default value is a disabled
/// (no-op) handle.
#[derive(Debug, Clone, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one sample. A no-op on a disabled handle.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(core) = &self.0 {
            let idx = bucket_index(&core.bounds, v);
            core.counts[idx].fetch_add(1, Ordering::Relaxed);
            core.total.fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Number of samples recorded so far (0 on a disabled handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map(|core| core.total.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1`, the last
    /// entry being the overflow bucket.
    pub counts: Vec<u64>,
    /// Total number of samples.
    pub total: u64,
    /// Sum of all sample values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }
}

/// Point-in-time copy of the whole registry, sorted by metric name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, i64)>,
    /// Histogram name → snapshot.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as the `metrics.json` document: three sorted
    /// name→value maps. Uses the shared [`crate::json`] helpers, so the
    /// encoding matches every other JSON writer in the workspace.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json::escape(name), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", json::escape(name), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let bounds: Vec<String> = h.bounds.iter().map(|b| b.to_string()).collect();
            let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(
                "\"{}\":{{\"bounds\":[{}],\"counts\":[{}],\"total\":{},\"sum\":{},\"mean\":{}}}",
                json::escape(name),
                bounds.join(","),
                counts.join(","),
                h.total,
                h.sum,
                json::num(h.mean()),
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Name-keyed registry behind [`crate::Telemetry`]. Registration takes a
/// short-lived lock; recording through the returned handles is lock-free.
#[derive(Default)]
pub(crate) struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

impl MetricsRegistry {
    pub(crate) fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        Counter(Some(Arc::clone(map.entry(name.to_string()).or_default())))
    }

    pub(crate) fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap_or_else(|e| e.into_inner());
        Gauge(Some(Arc::clone(map.entry(name.to_string()).or_default())))
    }

    pub(crate) fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        Histogram(Some(Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramCore::new(bounds))),
        )))
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, core)| {
                (
                    name.clone(),
                    HistogramSnapshot {
                        bounds: core.bounds.clone(),
                        counts: core
                            .counts
                            .iter()
                            .map(|c| c.load(Ordering::Relaxed))
                            .collect(),
                        total: core.total.load(Ordering::Relaxed),
                        sum: core.sum.load(Ordering::Relaxed),
                    },
                )
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::default();
        c.incr();
        c.add(100);
        assert_eq!(c.get(), 0);
        let g = Gauge::default();
        g.set(7);
        assert_eq!(g.get(), 0);
        let h = Histogram::default();
        h.record(3);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn registry_handles_share_state_by_name() {
        let reg = MetricsRegistry::default();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), Some(5));
    }

    #[test]
    fn bucket_index_is_inclusive_upper_bound() {
        let bounds = [0, 1, 2, 4, 8];
        assert_eq!(bucket_index(&bounds, 0), 0);
        assert_eq!(bucket_index(&bounds, 1), 1);
        assert_eq!(bucket_index(&bounds, 3), 3);
        assert_eq!(bucket_index(&bounds, 4), 3);
        assert_eq!(bucket_index(&bounds, 8), 4);
        assert_eq!(bucket_index(&bounds, 9), 5);
        assert_eq!(bucket_index(&bounds, u64::MAX), 5);
    }

    #[test]
    fn histogram_counts_land_in_fixed_buckets() {
        let reg = MetricsRegistry::default();
        let h = reg.histogram("depth", &[0, 1, 2, 4]);
        for v in [0, 0, 1, 3, 4, 100] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let hs = snap.histogram("depth").unwrap();
        assert_eq!(hs.counts, vec![2, 1, 0, 2, 1]);
        assert_eq!(hs.total, 6);
        assert_eq!(hs.sum, 108);
        assert!((hs.mean() - 18.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_json_is_sorted_and_parsable_shape() {
        let reg = MetricsRegistry::default();
        reg.counter("b.second").add(2);
        reg.counter("a.first").add(1);
        reg.gauge("g").set(-3);
        reg.histogram("h", &[1, 2]).record(5);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{"));
        let a = json.find("a.first").unwrap();
        let b = json.find("b.second").unwrap();
        assert!(a < b, "counters must be name-sorted");
        assert!(json.contains("\"g\":-3"));
        assert!(json.contains("\"bounds\":[1,2]"));
        assert!(json.contains("\"counts\":[0,0,1]"));
    }
}
