//! Span events and the Chrome `trace_event` exporter.
//!
//! Spans are recorded per thread through [`crate::SpanScope`] and merged into
//! one event list when the scope drops. The exporter renders the merged list
//! as a Chrome JSON trace (the `traceEvents` array format) that loads
//! directly in `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::json;

/// Sentinel for "no step / no partition label" on a span.
pub const NO_LABEL: i64 = -1;

/// Event phase, matching the Chrome `trace_event` `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Zero-duration instant event (`"i"`).
    Instant,
}

/// One recorded event. Fixed-size (no owned strings), so recording a span is
/// two `Vec` pushes into a thread-private buffer.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent {
    /// Span name (a static label such as `"compute-step"`).
    pub name: &'static str,
    /// Begin / end / instant.
    pub phase: Phase,
    /// Nanoseconds since the recorder's origin instant.
    pub ts_ns: u64,
    /// Recorder-assigned thread id (index into the thread-label table).
    pub tid: u32,
    /// Global record order, used as a stable sort tie-breaker.
    pub seq: u64,
    /// Pipeline step label, or [`NO_LABEL`].
    pub step: i64,
    /// Partition label, or [`NO_LABEL`].
    pub partition: i64,
}

/// Renders merged events plus thread labels as a Chrome trace JSON document.
///
/// Events are sorted by `(ts_ns, seq)` — nondecreasing timestamps, with the
/// original record order breaking ties so begin/end nesting within a thread
/// is preserved. Timestamps are emitted in fractional microseconds, the unit
/// the Chrome trace format expects.
pub(crate) fn chrome_trace_json(threads: &[String], events: &mut [SpanEvent]) -> String {
    events.sort_by_key(|e| (e.ts_ns, e.seq));
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, item: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&item);
    };
    push(
        &mut out,
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"marius\"}}"
            .to_string(),
    );
    for (tid, label) in threads.iter().enumerate() {
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                tid,
                json::escape(label)
            ),
        );
        push(
            &mut out,
            format!(
                "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            ),
        );
    }
    for e in events.iter() {
        let ph = match e.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
        };
        let mut args = String::new();
        if e.step != NO_LABEL {
            args.push_str(&format!("\"step\":{}", e.step));
        }
        if e.partition != NO_LABEL {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&format!("\"partition\":{}", e.partition));
        }
        let scope = if e.phase == Phase::Instant {
            ",\"s\":\"t\""
        } else {
            ""
        };
        push(
            &mut out,
            format!(
                "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":1,\"tid\":{}{},\
                 \"args\":{{{}}}}}",
                json::escape(e.name),
                ph,
                e.ts_ns / 1_000,
                e.ts_ns % 1_000,
                e.tid,
                scope,
                args,
            ),
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, phase: Phase, ts_ns: u64, seq: u64) -> SpanEvent {
        SpanEvent {
            name,
            phase,
            ts_ns,
            tid: 0,
            seq,
            step: NO_LABEL,
            partition: NO_LABEL,
        }
    }

    #[test]
    fn export_sorts_by_timestamp_then_record_order() {
        let threads = vec!["main".to_string()];
        let mut events = vec![
            ev("b", Phase::Begin, 2_000, 2),
            ev("a", Phase::Begin, 1_000, 0),
            ev("a", Phase::End, 2_000, 1),
        ];
        let json = chrome_trace_json(&threads, &mut events);
        let a_begin = json.find("\"ts\":1.000").unwrap();
        let a_end = json.find("\"ph\":\"E\"").unwrap();
        let b_begin = json.find("\"name\":\"b\"").unwrap();
        assert!(a_begin < a_end && a_end < b_begin);
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("{\"name\":\"marius\"}"));
    }

    #[test]
    fn labels_are_emitted_only_when_present() {
        let threads = vec!["t".to_string()];
        let mut events = vec![SpanEvent {
            name: "s",
            phase: Phase::Begin,
            ts_ns: 1_234_567,
            tid: 0,
            seq: 0,
            step: 4,
            partition: 9,
        }];
        let json = chrome_trace_json(&threads, &mut events);
        assert!(json.contains("\"ts\":1234.567"));
        assert!(json.contains("\"args\":{\"step\":4,\"partition\":9}"));
        let mut events = vec![ev("s", Phase::Instant, 0, 0)];
        let json = chrome_trace_json(&threads, &mut events);
        assert!(json.contains("\"args\":{}"));
        assert!(json.contains("\"s\":\"t\""));
    }
}
