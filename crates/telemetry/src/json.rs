//! Hand-rolled JSON formatting helpers shared by every writer in the
//! workspace.
//!
//! The workspace vendors a no-op `serde` shim (the build environment has no
//! network access to the real crate), so every JSON document — epoch reports,
//! checkpoint manifests, `BENCH_*.json`, Chrome traces, `metrics.json` — is
//! assembled with `format!`. These two helpers are the single source of truth
//! for string escaping and number formatting, so all writers emit the same
//! byte-for-byte encoding and the manifest reader in `marius-core` can parse
//! any of them back.

/// Escapes a string for embedding inside a JSON string literal (the
/// surrounding quotes are the caller's job).
///
/// Control characters below `0x20` become `\u00XX`; quotes and backslashes
/// are backslash-escaped; everything else passes through unchanged.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number token.
///
/// Rust's shortest-round-trip `Display` already produces valid JSON for
/// finite values and parses back to identical bits; non-finite values (which
/// JSON cannot represent) are mapped to `null`.
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\tz\r"), "x\\ny\\tz\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn num_is_valid_json() {
        assert_eq!(num(1.0), "1");
        assert_eq!(num(0.25), "0.25");
        assert_eq!(num(-3.5e300), format!("{}", -3.5e300));
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn num_round_trips_bits_for_finite_values() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0] {
            let parsed: f64 = num(v).parse().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits());
        }
    }
}
