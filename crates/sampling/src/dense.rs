//! The DENSE data structure (paper §4, Figure 3) and its per-layer update
//! (Algorithm 2).
//!
//! DENSE encodes a `k`-hop neighbourhood sample as four flat arrays:
//!
//! * `node_ids` — every graph node involved in the sample, grouped as
//!   `[Δ0, Δ1, ..., Δk]` where `Δk` are the target nodes and `Δi` are the nodes
//!   first reached at depth `k - i` (the "delta" of new nodes at that hop).
//! * `node_id_offsets` — the start index of each `Δ` group inside `node_ids`.
//! * `nbrs` — the sampled one-hop neighbours of every node in `Δ1 ..= Δk`,
//!   concatenated; node `node_ids[node_id_offsets[1] + j]` owns the slice
//!   `nbrs[nbr_offsets[j] .. nbr_offsets[j + 1]]`.
//! * `nbr_offsets` — the start of each node's neighbour list inside `nbrs`.
//!
//! A fifth array, `repr_map`, is added when the structure is "moved to the GPU"
//! (passed to the GNN crate): it maps every `nbrs` entry to the row of the layer
//! input holding that node's current representation, which turns neighbourhood
//! aggregation into `index_select` + `segment_sum` (Algorithm 3).

use marius_graph::{NodeId, RelId};
use std::collections::HashMap;

/// Statistics about one multi-hop sample, reported in Table 6 of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SampleStats {
    /// Number of unique nodes in the sample (`node_ids` length).
    pub nodes_sampled: usize,
    /// Number of sampled neighbour entries, i.e. edges traversed (`nbrs` length).
    pub edges_sampled: usize,
    /// Number of one-hop sampling operations performed (nodes whose neighbour
    /// lists were actually walked). Lower is better: DENSE avoids re-sampling.
    pub one_hop_operations: usize,
}

/// The DENSE delta-encoded multi-hop neighbourhood sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    node_id_offsets: Vec<usize>,
    node_ids: Vec<NodeId>,
    nbr_offsets: Vec<usize>,
    nbrs: Vec<NodeId>,
    /// Relation id of the sampled edge behind each `nbrs` entry (0 for
    /// homogeneous graphs). Kept alongside `nbrs` so relation-aware decoders and
    /// attention layers can use edge types without a second lookup.
    nbr_rels: Vec<RelId>,
    /// For each `nbrs` entry, the row index of that node inside `node_ids` /
    /// the current layer-input matrix. Empty until [`Dense::build_repr_map`].
    repr_map: Vec<usize>,
    stats: SampleStats,
}

impl Dense {
    /// Creates a DENSE structure from raw parts (used by the samplers).
    pub(crate) fn from_parts(
        node_id_offsets: Vec<usize>,
        node_ids: Vec<NodeId>,
        nbr_offsets: Vec<usize>,
        nbrs: Vec<NodeId>,
        nbr_rels: Vec<RelId>,
        one_hop_operations: usize,
    ) -> Self {
        let stats = SampleStats {
            nodes_sampled: node_ids.len(),
            edges_sampled: nbrs.len(),
            one_hop_operations,
        };
        Dense {
            node_id_offsets,
            node_ids,
            nbr_offsets,
            nbrs,
            nbr_rels,
            repr_map: Vec::new(),
            stats,
        }
    }

    /// Number of GNN layers this sample supports (one fewer than the number of
    /// `Δ` groups).
    pub fn num_layers(&self) -> usize {
        self.node_id_offsets.len().saturating_sub(1)
    }

    /// All node ids involved in the sample, in `[Δ0, Δ1, ..., Δk]` order. The base
    /// representations `H0` must be provided in exactly this order.
    pub fn node_ids(&self) -> &[NodeId] {
        &self.node_ids
    }

    /// The start offset of each `Δ` group within [`Dense::node_ids`].
    pub fn node_id_offsets(&self) -> &[usize] {
        &self.node_id_offsets
    }

    /// Sampled neighbour node ids, concatenated per owning node.
    pub fn nbrs(&self) -> &[NodeId] {
        &self.nbrs
    }

    /// Relation ids aligned with [`Dense::nbrs`].
    pub fn nbr_rels(&self) -> &[RelId] {
        &self.nbr_rels
    }

    /// Start offset of each owning node's neighbour list within [`Dense::nbrs`].
    /// Suitable to pass directly to `marius_tensor::segment::segment_sum`.
    pub fn nbr_offsets(&self) -> &[usize] {
        &self.nbr_offsets
    }

    /// The `repr_map` array (empty until [`Dense::build_repr_map`] is called).
    pub fn repr_map(&self) -> &[usize] {
        &self.repr_map
    }

    /// Sample statistics (Table 6 columns).
    pub fn stats(&self) -> SampleStats {
        self.stats
    }

    /// The target nodes of the sample: the last `Δ` group.
    pub fn target_nodes(&self) -> &[NodeId] {
        match self.node_id_offsets.last() {
            Some(&start) => &self.node_ids[start..],
            None => &[],
        }
    }

    /// The nodes whose representations the *next* GNN layer will output: every
    /// node after the first `Δ` group (paper §4.2 Step 1).
    pub fn output_node_ids(&self) -> &[NodeId] {
        if self.node_id_offsets.len() < 2 {
            return &self.node_ids;
        }
        &self.node_ids[self.node_id_offsets[1]..]
    }

    /// Index (row) of the first output node within [`Dense::node_ids`]; the layer
    /// input rows `[self_offset..]` are the "self" representations of Algorithm 3.
    pub fn self_offset(&self) -> usize {
        if self.node_id_offsets.len() < 2 {
            0
        } else {
            self.node_id_offsets[1]
        }
    }

    /// Builds the `repr_map` array: for every `nbrs` entry, the row of
    /// [`Dense::node_ids`] holding that node. In MariusGNN this happens on the GPU
    /// right after the mini batch is transferred (paper §4.2).
    ///
    /// # Panics
    ///
    /// Panics if a neighbour id does not appear in `node_ids`; Algorithm 1
    /// guarantees it always does.
    pub fn build_repr_map(&mut self) {
        let position: HashMap<NodeId, usize> = self
            .node_ids
            .iter()
            .enumerate()
            .map(|(i, &n)| (n, i))
            .collect();
        self.repr_map = self
            .nbrs
            .iter()
            .map(|n| {
                *position
                    .get(n)
                    .expect("DENSE invariant violated: neighbour not present in node_ids")
            })
            .collect();
    }

    /// Algorithm 2: updates DENSE on the "GPU" after computing GNN layer `i`,
    /// dropping the deepest `Δ` group and its neighbour lists so the same forward
    /// implementation can be reused for the next layer.
    ///
    /// Returns the number of node rows removed from the front of the layer input
    /// (i.e. `len(Δ_{i-1})`), which is also how much the caller must trim its
    /// representation matrix by (the new layer input is `H_i` for the previous
    /// output nodes).
    ///
    /// # Panics
    ///
    /// Panics if called when fewer than two `Δ` groups remain.
    pub fn advance_layer(&mut self) -> usize {
        assert!(
            self.node_id_offsets.len() >= 2,
            "advance_layer called on an exhausted DENSE structure"
        );
        // Δ_{i-1} is the first group, Δ_i the second.
        let delta_prev_len = self.node_id_offsets[1];
        let delta_i_len = if self.node_id_offsets.len() >= 3 {
            self.node_id_offsets[2] - self.node_id_offsets[1]
        } else {
            self.node_ids.len() - self.node_id_offsets[1]
        };

        // Δ_i's neighbour lists occupy nbrs[.. nbr_offsets[delta_i_len]] (or the
        // whole array when Δ_i is the final group with neighbour lists).
        let delta_i_nbrs_len = if delta_i_len < self.nbr_offsets.len() {
            self.nbr_offsets[delta_i_len]
        } else {
            self.nbrs.len()
        };

        // Line 4-6 of Algorithm 2: trim the neighbour arrays and shift offsets.
        self.nbrs.drain(..delta_i_nbrs_len);
        self.nbr_rels.drain(..delta_i_nbrs_len);
        if !self.repr_map.is_empty() {
            self.repr_map.drain(..delta_i_nbrs_len);
            for r in &mut self.repr_map {
                *r -= delta_prev_len;
            }
        }
        self.nbr_offsets.drain(..delta_i_len);
        for o in &mut self.nbr_offsets {
            *o -= delta_i_nbrs_len;
        }

        // Line 7-8: drop Δ_{i-1} from node_ids and re-base the offsets.
        self.node_ids.drain(..delta_prev_len);
        self.node_id_offsets.remove(0);
        for o in &mut self.node_id_offsets {
            *o -= delta_prev_len;
        }

        delta_prev_len
    }

    /// Total bytes transferred to the device for this structure (the four index
    /// arrays; base representations are accounted separately).
    pub fn transfer_bytes(&self) -> u64 {
        (self.node_ids.len() * 8
            + self.node_id_offsets.len() * 8
            + self.nbrs.len() * 8
            + self.nbr_rels.len() * 4
            + self.nbr_offsets.len() * 8) as u64
    }

    /// Checks the structural invariants that Algorithm 1 guarantees. Used by
    /// property tests and debug assertions; returns a description of the first
    /// violation found, if any.
    pub fn validate(&self) -> Result<(), String> {
        // Offsets into node_ids must be monotone and bounded.
        let mut prev = 0usize;
        for &o in &self.node_id_offsets {
            if o < prev {
                return Err("node_id_offsets not monotone".into());
            }
            if o > self.node_ids.len() {
                return Err("node_id_offsets exceeds node_ids length".into());
            }
            prev = o;
        }
        if self.node_id_offsets.first() != Some(&0) && !self.node_id_offsets.is_empty() {
            return Err("node_id_offsets must start at 0".into());
        }
        // Every node id must be unique.
        let mut seen = std::collections::HashSet::new();
        for &n in &self.node_ids {
            if !seen.insert(n) {
                return Err(format!("duplicate node id {n} in node_ids"));
            }
        }
        // Neighbour offsets must be monotone, bounded, and count one entry per
        // node in Δ1..Δk.
        let owners = self.node_ids.len() - self.self_offset();
        if self.nbr_offsets.len() != owners {
            return Err(format!(
                "nbr_offsets has {} entries but {} owner nodes",
                self.nbr_offsets.len(),
                owners
            ));
        }
        let mut prev = 0usize;
        for &o in &self.nbr_offsets {
            if o < prev {
                return Err("nbr_offsets not monotone".into());
            }
            if o > self.nbrs.len() {
                return Err("nbr_offsets exceeds nbrs length".into());
            }
            prev = o;
        }
        if self.nbr_rels.len() != self.nbrs.len() {
            return Err("nbr_rels length mismatch".into());
        }
        // Every neighbour must be present in node_ids.
        for &n in &self.nbrs {
            if !seen.contains(&n) {
                return Err(format!("neighbour {n} missing from node_ids"));
            }
        }
        // repr_map, if built, must agree with node_ids.
        if !self.repr_map.is_empty() {
            if self.repr_map.len() != self.nbrs.len() {
                return Err("repr_map length mismatch".into());
            }
            for (&r, &n) in self.repr_map.iter().zip(self.nbrs.iter()) {
                if r >= self.node_ids.len() || self.node_ids[r] != n {
                    return Err("repr_map does not point at the neighbour's row".into());
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Figure 3 example by hand:
    /// node_ids = [E, C, D, A, B] with Δ0 = {E}, Δ1 = {C, D}, Δ2 = {A, B};
    /// neighbour lists: C -> [E], D -> [C], A -> [C, D], B -> [C, A].
    /// (B's sampled one-hop neighbourhood reuses the already-present A instead of
    /// introducing a new node — the reuse DENSE is designed around.)
    fn figure3_dense() -> Dense {
        let e = 4u64;
        let (a, b, c, d) = (0u64, 1u64, 2u64, 3u64);
        Dense::from_parts(
            vec![0, 1, 3],
            vec![e, c, d, a, b],
            vec![0, 1, 2, 4],
            vec![e, c, c, d, c, a],
            vec![0; 6],
            5,
        )
    }

    #[test]
    fn accessors_match_figure3() {
        let dense = figure3_dense();
        assert_eq!(dense.num_layers(), 2);
        assert_eq!(dense.target_nodes(), &[0, 1]); // A, B
        assert_eq!(dense.output_node_ids(), &[2, 3, 0, 1]); // C, D, A, B
        assert_eq!(dense.self_offset(), 1);
        assert_eq!(dense.stats().nodes_sampled, 5);
        assert_eq!(dense.stats().edges_sampled, 6);
        dense.validate().unwrap();
    }

    #[test]
    fn repr_map_points_at_node_rows() {
        let mut dense = figure3_dense();
        dense.build_repr_map();
        let map = dense.repr_map();
        // nbrs = [E, C, C, D, C, A] and node_ids = [E, C, D, A, B].
        assert_eq!(map, &[0, 1, 1, 2, 1, 3]);
        dense.validate().unwrap();
    }

    #[test]
    fn advance_layer_matches_paper_walkthrough() {
        let mut dense = figure3_dense();
        dense.build_repr_map();
        // After layer 1, node E and the neighbour lists of {C, D} are dropped.
        let removed = dense.advance_layer();
        assert_eq!(removed, 1); // len(Δ0)
        assert_eq!(dense.node_ids(), &[2, 3, 0, 1]); // C, D, A, B
        assert_eq!(dense.node_id_offsets(), &[0, 2]);
        assert_eq!(dense.output_node_ids(), &[0, 1]); // A, B
                                                      // Remaining neighbour lists are A -> [C, D] and B -> [C, A].
        assert_eq!(dense.nbr_offsets(), &[0, 2]);
        assert_eq!(dense.nbrs(), &[2, 3, 2, 0]);
        // repr_map entries now index into [C, D, A, B].
        assert_eq!(dense.repr_map(), &[0, 1, 0, 2]);
        dense.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn advance_layer_past_end_panics() {
        let mut dense = figure3_dense();
        dense.advance_layer();
        dense.advance_layer();
        // A two-layer structure supports at most two advances; the third must panic.
        dense.advance_layer();
    }

    #[test]
    fn validate_catches_duplicates() {
        let d = Dense::from_parts(vec![0, 1], vec![5, 5], vec![0], vec![5], vec![0], 1);
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_catches_missing_neighbor() {
        let d = Dense::from_parts(vec![0, 1], vec![1, 2], vec![0], vec![9], vec![0], 1);
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_offsets() {
        let d = Dense::from_parts(vec![0, 5], vec![1, 2], vec![0], vec![1], vec![0], 1);
        assert!(d.validate().is_err());
    }

    #[test]
    fn transfer_bytes_positive() {
        assert!(figure3_dense().transfer_bytes() > 0);
    }

    #[test]
    fn empty_dense_edge_cases() {
        let d = Dense::from_parts(vec![0], vec![], vec![], vec![], vec![], 0);
        assert_eq!(d.num_layers(), 0);
        assert!(d.target_nodes().is_empty());
        assert_eq!(d.self_offset(), 0);
    }
}
