//! Negative sampling and the ranking protocol for link prediction.
//!
//! MariusGNN (like Marius and PyTorch-BigGraph before it) trains link prediction
//! with a contrastive objective: every positive edge in a mini batch is scored
//! against a set of *negative* node corruptions, and the model is pushed to rank
//! the true edge above the corruptions. Evaluation uses the same machinery: the
//! MRR reported throughout the paper is the mean reciprocal rank of the true
//! destination among sampled corruptions.

use marius_graph::NodeId;
use rand::Rng;

/// Which endpoint of a positive edge is replaced to create negatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptionSide {
    /// Replace the destination node.
    Destination,
    /// Replace the source node.
    Source,
    /// Alternate between replacing the source and the destination.
    Both,
}

/// Uniform negative sampler over a node-id universe.
///
/// Negatives are shared across the mini batch (one pool of `num_negatives` nodes
/// scored against every positive), matching how Marius-style systems batch the
/// negative computation into a single dense matrix multiply.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    num_negatives: usize,
    corruption: CorruptionSide,
}

impl NegativeSampler {
    /// Creates a sampler producing `num_negatives` corruptions per mini batch.
    pub fn new(num_negatives: usize) -> Self {
        NegativeSampler {
            num_negatives,
            corruption: CorruptionSide::Destination,
        }
    }

    /// Sets which side of the edge is corrupted.
    pub fn with_corruption(mut self, corruption: CorruptionSide) -> Self {
        self.corruption = corruption;
        self
    }

    /// Number of negatives produced per batch.
    pub fn num_negatives(&self) -> usize {
        self.num_negatives
    }

    /// The configured corruption side.
    pub fn corruption(&self) -> CorruptionSide {
        self.corruption
    }

    /// Samples a shared pool of negative node ids uniformly from the candidate
    /// universe `candidates` (typically the nodes currently in CPU memory, so
    /// that disk-based training never needs representations that are not
    /// resident).
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty and `num_negatives > 0`.
    pub fn sample_pool<R: Rng + ?Sized>(&self, candidates: &[NodeId], rng: &mut R) -> Vec<NodeId> {
        assert!(
            self.num_negatives == 0 || !candidates.is_empty(),
            "cannot sample negatives from an empty candidate set"
        );
        (0..self.num_negatives)
            .map(|_| candidates[rng.gen_range(0..candidates.len())])
            .collect()
    }

    /// Samples a shared pool of negatives from the contiguous universe
    /// `0..num_nodes` (used when the full graph is in memory).
    pub fn sample_pool_range<R: Rng + ?Sized>(&self, num_nodes: u64, rng: &mut R) -> Vec<NodeId> {
        assert!(
            self.num_negatives == 0 || num_nodes > 0,
            "cannot sample negatives from an empty universe"
        );
        (0..self.num_negatives)
            .map(|_| rng.gen_range(0..num_nodes))
            .collect()
    }
}

/// Ranking-based evaluation (MRR, Hits@K) for link prediction.
#[derive(Debug, Clone, Copy, Default)]
pub struct RankingProtocol;

impl RankingProtocol {
    /// Rank of the positive among the negatives: `1 +` the number of negatives
    /// with a score strictly greater than the positive, plus half the ties
    /// (the "realistic" tie-breaking used by OGB evaluators, rounded down).
    pub fn rank(positive_score: f32, negative_scores: &[f32]) -> usize {
        let higher = negative_scores
            .iter()
            .filter(|&&s| s > positive_score)
            .count();
        let ties = negative_scores
            .iter()
            .filter(|&&s| s == positive_score)
            .count();
        1 + higher + ties / 2
    }

    /// Reciprocal rank of a single positive.
    pub fn reciprocal_rank(positive_score: f32, negative_scores: &[f32]) -> f64 {
        1.0 / Self::rank(positive_score, negative_scores) as f64
    }

    /// Mean reciprocal rank over a batch: `positives[i]` is scored against
    /// `negatives[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn mrr(positives: &[f32], negatives: &[Vec<f32>]) -> f64 {
        assert_eq!(positives.len(), negatives.len(), "score length mismatch");
        if positives.is_empty() {
            return 0.0;
        }
        let total: f64 = positives
            .iter()
            .zip(negatives.iter())
            .map(|(&p, n)| Self::reciprocal_rank(p, n))
            .sum();
        total / positives.len() as f64
    }

    /// Fraction of positives ranked within the top `k`.
    pub fn hits_at_k(positives: &[f32], negatives: &[Vec<f32>], k: usize) -> f64 {
        assert_eq!(positives.len(), negatives.len(), "score length mismatch");
        if positives.is_empty() {
            return 0.0;
        }
        let hits = positives
            .iter()
            .zip(negatives.iter())
            .filter(|(&p, n)| Self::rank(p, n) <= k)
            .count();
        hits as f64 / positives.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampler_produces_requested_count() {
        let sampler = NegativeSampler::new(100);
        let mut rng = StdRng::seed_from_u64(1);
        let candidates: Vec<NodeId> = (10..20).collect();
        let pool = sampler.sample_pool(&candidates, &mut rng);
        assert_eq!(pool.len(), 100);
        assert!(pool.iter().all(|n| candidates.contains(n)));
    }

    #[test]
    fn sampler_range_stays_in_bounds() {
        let sampler = NegativeSampler::new(1000);
        let mut rng = StdRng::seed_from_u64(2);
        let pool = sampler.sample_pool_range(7, &mut rng);
        assert!(pool.iter().all(|&n| n < 7));
        // All residues should appear with 1000 draws over 7 values.
        let mut seen = pool.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn zero_negatives_allowed_with_empty_candidates() {
        let sampler = NegativeSampler::new(0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(sampler.sample_pool(&[], &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "empty candidate set")]
    fn nonzero_negatives_with_empty_candidates_panics() {
        let sampler = NegativeSampler::new(5);
        let mut rng = StdRng::seed_from_u64(3);
        let _ = sampler.sample_pool(&[], &mut rng);
    }

    #[test]
    fn corruption_side_configurable() {
        let s = NegativeSampler::new(5).with_corruption(CorruptionSide::Both);
        assert_eq!(s.corruption(), CorruptionSide::Both);
        assert_eq!(s.num_negatives(), 5);
    }

    #[test]
    fn rank_counts_higher_scores() {
        assert_eq!(RankingProtocol::rank(0.9, &[0.1, 0.2, 0.3]), 1);
        assert_eq!(RankingProtocol::rank(0.1, &[0.5, 0.6]), 3);
        assert_eq!(RankingProtocol::rank(0.5, &[0.5, 0.5, 0.1]), 2); // 1 + 0 + 2/2
    }

    #[test]
    fn reciprocal_rank_is_inverse() {
        assert!((RankingProtocol::reciprocal_rank(1.0, &[0.0]) - 1.0).abs() < 1e-12);
        assert!((RankingProtocol::reciprocal_rank(0.0, &[1.0, 2.0, 3.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mrr_of_perfect_model_is_one() {
        let pos = vec![10.0, 10.0, 10.0];
        let negs = vec![vec![0.0; 50]; 3];
        assert!((RankingProtocol::mrr(&pos, &negs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mrr_of_random_scores_is_low() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 200;
        let negs: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..99).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let pos: Vec<f32> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mrr = RankingProtocol::mrr(&pos, &negs);
        // Expected MRR of a random ranker over 100 candidates is about 0.052.
        assert!(mrr < 0.15, "random MRR unexpectedly high: {mrr}");
        assert!(mrr > 0.01);
    }

    #[test]
    fn mrr_empty_is_zero() {
        assert_eq!(RankingProtocol::mrr(&[], &[]), 0.0);
    }

    #[test]
    fn hits_at_k_behaviour() {
        let pos = vec![5.0, 0.0];
        let negs = vec![vec![1.0, 2.0], vec![1.0, 2.0]];
        assert!((RankingProtocol::hits_at_k(&pos, &negs, 1) - 0.5).abs() < 1e-12);
        assert!((RankingProtocol::hits_at_k(&pos, &negs, 3) - 1.0).abs() < 1e-12);
        assert_eq!(RankingProtocol::hits_at_k(&[], &[], 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mrr_length_mismatch_panics() {
        let _ = RankingProtocol::mrr(&[1.0], &[]);
    }
}
