//! Multi-hop neighbourhood sampling for the MariusGNN reproduction.
//!
//! This crate implements the paper's central data structure, DENSE (a **D**elta
//! **E**ncoding of **N**eighborhood **S**ampl**E**s), and the algorithms that build
//! and consume it:
//!
//! * [`Dense`] — the four arrays of Figure 3 (`node_id_offsets`, `node_ids`,
//!   `nbr_offsets`, `nbrs`) plus the GPU-side `repr_map`, with
//!   [`Dense::advance_layer`] implementing Algorithm 2 (the per-layer update).
//! * [`MultiHopSampler`] — Algorithm 1: builds DENSE for a set of target nodes by
//!   sampling one-hop neighbours **only for nodes not already present** in the
//!   structure, reusing earlier samples across layers.
//! * [`negative`] — negative sampling for link-prediction training and the
//!   ranking protocol used to compute MRR.
//!
//! # Examples
//!
//! ```
//! use marius_graph::{Edge, InMemorySubgraph};
//! use marius_sampling::{MultiHopSampler, SamplingDirection};
//! use rand::SeedableRng;
//!
//! let edges = vec![Edge::new(2, 0), Edge::new(3, 0), Edge::new(4, 2)];
//! let graph = InMemorySubgraph::from_edges(&edges);
//! let sampler = MultiHopSampler::new(vec![10, 10], SamplingDirection::Incoming);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let dense = sampler.sample(&graph, &[0], &mut rng);
//! assert_eq!(dense.num_layers(), 2);
//! assert!(dense.node_ids().contains(&4));
//! ```

pub mod dense;
pub mod multi_hop;
pub mod negative;

pub use dense::{Dense, SampleStats};
pub use multi_hop::{MultiHopSampler, SamplingDirection};
pub use negative::{NegativeSampler, RankingProtocol};
