//! Algorithm 1: multi-hop neighbourhood sampling with one-hop sample reuse.
//!
//! The sampler builds a [`Dense`] structure for a set of target nodes by walking
//! `k` hops outwards. At each hop it samples one-hop neighbours **only** for the
//! nodes that have not appeared in the structure yet (the current `Δ`); nodes seen
//! at an earlier hop reuse their existing one-hop sample. This is the property
//! that makes DENSE cheaper than the layer-wise re-sampling used by DGL/PyG
//! (compare `marius_baselines::layerwise`).

use crate::dense::Dense;
use marius_graph::{InMemorySubgraph, NodeId, RelId};
use rand::seq::index::sample as index_sample;
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Which adjacency direction to sample neighbours from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingDirection {
    /// Sample from incoming edges only (neighbours are edge sources).
    Incoming,
    /// Sample from outgoing edges only (neighbours are edge destinations).
    Outgoing,
    /// Sample up to the fanout from each direction (the paper's default for
    /// GraphSage: "sampled from both incoming and outgoing edges").
    Both,
}

/// Multi-hop sampler configuration (Algorithm 1).
#[derive(Debug, Clone)]
pub struct MultiHopSampler {
    /// Maximum neighbours per node per hop, ordered **away from the target
    /// nodes** (`fanouts[0]` applies to the targets' own one-hop sample).
    fanouts: Vec<usize>,
    direction: SamplingDirection,
    /// Number of CPU threads used for the one-hop sampling step; 1 keeps the
    /// sampler fully deterministic for a given RNG seed.
    parallelism: usize,
}

impl MultiHopSampler {
    /// Creates a sampler for a `fanouts.len()`-layer GNN.
    pub fn new(fanouts: Vec<usize>, direction: SamplingDirection) -> Self {
        MultiHopSampler {
            fanouts,
            direction,
            parallelism: 1,
        }
    }

    /// Sets the number of threads used for one-hop sampling (paper §4.1 performs
    /// this step with all available CPU threads).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Number of GNN layers this sampler produces neighbourhoods for.
    pub fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    /// The configured fanouts, ordered away from the target nodes.
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// The configured sampling direction.
    pub fn direction(&self) -> SamplingDirection {
        self.direction
    }

    /// Builds the DENSE structure for `target_nodes` over the in-memory subgraph
    /// (Algorithm 1). Duplicate targets are de-duplicated; the order of first
    /// appearance is preserved.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        graph: &InMemorySubgraph,
        target_nodes: &[NodeId],
        rng: &mut R,
    ) -> Dense {
        // Line 1-2: initialise with the (unique) target nodes as Δk.
        let mut seen: HashSet<NodeId> = HashSet::with_capacity(target_nodes.len() * 4);
        let mut targets: Vec<NodeId> = Vec::with_capacity(target_nodes.len());
        for &t in target_nodes {
            if seen.insert(t) {
                targets.push(t);
            }
        }

        let mut node_id_offsets: Vec<usize> = vec![0];
        let mut node_ids: Vec<NodeId> = targets.clone();
        let mut nbr_offsets: Vec<usize> = Vec::new();
        let mut nbrs: Vec<NodeId> = Vec::new();
        let mut nbr_rels: Vec<RelId> = Vec::new();
        let mut delta: Vec<NodeId> = targets;
        let mut one_hop_operations = 0usize;

        // Line 3: k rounds, hop 0 expands the targets.
        for hop in 0..self.fanouts.len() {
            let fanout = self.fanouts[hop];
            one_hop_operations += delta.len();

            // Line 4: one-hop sample for the current Δ only.
            let (delta_nbrs, delta_rels, delta_offsets) = self.one_hop(graph, &delta, fanout, rng);

            // Line 5-6: prepend the new neighbour lists.
            for o in &mut nbr_offsets {
                *o += delta_nbrs.len();
            }
            let mut new_offsets = delta_offsets;
            new_offsets.extend_from_slice(&nbr_offsets);
            nbr_offsets = new_offsets;

            let mut new_nbrs = delta_nbrs.clone();
            new_nbrs.extend_from_slice(&nbrs);
            nbrs = new_nbrs;
            let mut new_rels = delta_rels;
            new_rels.extend_from_slice(&nbr_rels);
            nbr_rels = new_rels;

            // Line 7: the next Δ is every sampled neighbour not yet present.
            let mut next_delta: Vec<NodeId> = Vec::new();
            for &n in &delta_nbrs {
                if seen.insert(n) {
                    next_delta.push(n);
                }
            }

            // Line 8-9: prepend the new Δ to node_ids and re-base the offsets.
            for o in &mut node_id_offsets {
                *o += next_delta.len();
            }
            node_id_offsets.insert(0, 0);
            let mut new_node_ids = next_delta.clone();
            new_node_ids.extend_from_slice(&node_ids);
            node_ids = new_node_ids;

            delta = next_delta;
        }

        Dense::from_parts(
            node_id_offsets,
            node_ids,
            nbr_offsets,
            nbrs,
            nbr_rels,
            one_hop_operations,
        )
    }

    /// One-hop sampling for a set of nodes: returns the concatenated neighbour
    /// ids, their edge relations, and the per-node start offsets.
    fn one_hop<R: Rng + ?Sized>(
        &self,
        graph: &InMemorySubgraph,
        nodes: &[NodeId],
        fanout: usize,
        rng: &mut R,
    ) -> (Vec<NodeId>, Vec<RelId>, Vec<usize>) {
        if self.parallelism <= 1 || nodes.len() < 4 * self.parallelism {
            return one_hop_chunk(graph, nodes, fanout, self.direction, rng);
        }
        // Parallel path: split the Δ across threads; each thread gets its own
        // seeded RNG so the overall result is still a function of the input RNG.
        let threads = self.parallelism.min(nodes.len());
        let chunk_size = nodes.len().div_ceil(threads);
        let seeds: Vec<u64> = (0..threads).map(|_| rng.gen()).collect();
        let direction = self.direction;

        let mut partials: Vec<(Vec<NodeId>, Vec<RelId>, Vec<usize>)> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for (i, chunk) in nodes.chunks(chunk_size).enumerate() {
                let seed = seeds[i];
                handles.push(scope.spawn(move || {
                    let mut local_rng = rand::rngs::StdRng::seed_from_u64(seed);
                    one_hop_chunk(graph, chunk, fanout, direction, &mut local_rng)
                }));
            }
            for h in handles {
                partials.push(h.join().expect("one-hop sampling thread panicked"));
            }
        });

        // Merge the per-chunk results preserving node order.
        let mut nbrs = Vec::new();
        let mut rels = Vec::new();
        let mut offsets = Vec::with_capacity(nodes.len());
        for (chunk_nbrs, chunk_rels, chunk_offsets) in partials {
            let base = nbrs.len();
            for o in chunk_offsets {
                offsets.push(base + o);
            }
            nbrs.extend(chunk_nbrs);
            rels.extend(chunk_rels);
        }
        (nbrs, rels, offsets)
    }
}

/// One-hop sampling over a contiguous chunk of nodes (single threaded).
fn one_hop_chunk<R: Rng + ?Sized>(
    graph: &InMemorySubgraph,
    nodes: &[NodeId],
    fanout: usize,
    direction: SamplingDirection,
    rng: &mut R,
) -> (Vec<NodeId>, Vec<RelId>, Vec<usize>) {
    let mut nbrs = Vec::new();
    let mut rels = Vec::new();
    let mut offsets = Vec::with_capacity(nodes.len());
    for &node in nodes {
        offsets.push(nbrs.len());
        match direction {
            SamplingDirection::Incoming => {
                sample_edges(
                    graph.incoming(node),
                    fanout,
                    true,
                    &mut nbrs,
                    &mut rels,
                    rng,
                );
            }
            SamplingDirection::Outgoing => {
                sample_edges(
                    graph.outgoing(node),
                    fanout,
                    false,
                    &mut nbrs,
                    &mut rels,
                    rng,
                );
            }
            SamplingDirection::Both => {
                sample_edges(
                    graph.incoming(node),
                    fanout,
                    true,
                    &mut nbrs,
                    &mut rels,
                    rng,
                );
                sample_edges(
                    graph.outgoing(node),
                    fanout,
                    false,
                    &mut nbrs,
                    &mut rels,
                    rng,
                );
            }
        }
    }
    (nbrs, rels, offsets)
}

/// Samples up to `fanout` edges from `edges`, pushing the neighbour endpoint
/// (source when `incoming`, destination otherwise) and relation of each.
fn sample_edges<R: Rng + ?Sized>(
    edges: &[marius_graph::Edge],
    fanout: usize,
    incoming: bool,
    nbrs: &mut Vec<NodeId>,
    rels: &mut Vec<RelId>,
    rng: &mut R,
) {
    let push = |e: &marius_graph::Edge, nbrs: &mut Vec<NodeId>, rels: &mut Vec<RelId>| {
        nbrs.push(if incoming { e.src } else { e.dst });
        rels.push(e.rel);
    };
    if edges.len() <= fanout {
        for e in edges {
            push(e, nbrs, rels);
        }
    } else {
        // Sample `fanout` distinct edge indices without replacement.
        for idx in index_sample(rng, edges.len(), fanout).into_iter() {
            push(&edges[idx], nbrs, rels);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::Edge;
    use rand::rngs::StdRng;

    /// The paper's Figure 1 / Figure 3 input graph with incoming-edge semantics:
    /// A's in-neighbours are {C, D}, B's are {C, A}, C's are {E, B}, D's is {C}.
    fn figure_graph() -> InMemorySubgraph {
        let (a, b, c, d, e) = (0u64, 1u64, 2u64, 3u64, 4u64);
        InMemorySubgraph::from_edges(&[
            Edge::new(c, a),
            Edge::new(d, a),
            Edge::new(c, b),
            Edge::new(a, b),
            Edge::new(e, c),
            Edge::new(b, c),
            Edge::new(c, d),
        ])
    }

    #[test]
    fn two_hop_sample_builds_expected_deltas() {
        let graph = figure_graph();
        let sampler = MultiHopSampler::new(vec![10, 10], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(0);
        let dense = sampler.sample(&graph, &[0, 1], &mut rng);
        dense.validate().unwrap();
        assert_eq!(dense.num_layers(), 2);
        // Targets are Δ2.
        assert_eq!(dense.target_nodes(), &[0, 1]);
        // Δ1 must be the new nodes among the targets' in-neighbours: {C, D} (A is
        // already present as a target and is reused, not re-added).
        let offsets = dense.node_id_offsets();
        let delta1 = &dense.node_ids()[offsets[1]..offsets[2]];
        let mut delta1_sorted = delta1.to_vec();
        delta1_sorted.sort_unstable();
        assert_eq!(delta1_sorted, vec![2, 3]);
        // Δ0 contains what is new among {C, D}'s in-neighbours: {E} (B reused).
        let delta0 = &dense.node_ids()[..offsets[1]];
        assert_eq!(delta0, &[4]);
        // Every node appears exactly once.
        assert_eq!(dense.node_ids().len(), 5);
    }

    #[test]
    fn sample_reuse_means_no_duplicate_one_hop_work() {
        // With full fanouts, one-hop sampling happens once per unique node that
        // needs neighbours: |Δ2| + |Δ1| = 2 + 2 = 4 operations (E needs none).
        let graph = figure_graph();
        let sampler = MultiHopSampler::new(vec![10, 10], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(0);
        let dense = sampler.sample(&graph, &[0, 1], &mut rng);
        assert_eq!(dense.stats().one_hop_operations, 4);
    }

    #[test]
    fn fanout_limits_neighbours_per_node() {
        // Build a star: node 0 has 50 incoming neighbours.
        let edges: Vec<Edge> = (1..=50).map(|i| Edge::new(i, 0)).collect();
        let graph = InMemorySubgraph::from_edges(&edges);
        let sampler = MultiHopSampler::new(vec![7], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(1);
        let dense = sampler.sample(&graph, &[0], &mut rng);
        dense.validate().unwrap();
        assert_eq!(dense.nbrs().len(), 7);
        // Sampled neighbours are distinct (sampling without replacement).
        let mut unique = dense.nbrs().to_vec();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 7);
    }

    #[test]
    fn nodes_with_fewer_neighbours_return_all() {
        let edges = vec![Edge::new(1, 0), Edge::new(2, 0)];
        let graph = InMemorySubgraph::from_edges(&edges);
        let sampler = MultiHopSampler::new(vec![10], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(2);
        let dense = sampler.sample(&graph, &[0], &mut rng);
        assert_eq!(dense.nbrs().len(), 2);
    }

    #[test]
    fn both_direction_samples_each_side() {
        let edges = vec![Edge::new(1, 0), Edge::new(0, 2)];
        let graph = InMemorySubgraph::from_edges(&edges);
        let sampler = MultiHopSampler::new(vec![5], SamplingDirection::Both);
        let mut rng = StdRng::seed_from_u64(3);
        let dense = sampler.sample(&graph, &[0], &mut rng);
        let mut nbrs = dense.nbrs().to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 2]);
    }

    #[test]
    fn outgoing_direction_uses_destinations() {
        let edges = vec![Edge::new(0, 5), Edge::new(0, 6), Edge::new(7, 0)];
        let graph = InMemorySubgraph::from_edges(&edges);
        let sampler = MultiHopSampler::new(vec![5], SamplingDirection::Outgoing);
        let mut rng = StdRng::seed_from_u64(4);
        let dense = sampler.sample(&graph, &[0], &mut rng);
        let mut nbrs = dense.nbrs().to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![5, 6]);
    }

    #[test]
    fn duplicate_targets_are_deduplicated() {
        let graph = figure_graph();
        let sampler = MultiHopSampler::new(vec![10], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(5);
        let dense = sampler.sample(&graph, &[0, 0, 1, 0], &mut rng);
        assert_eq!(dense.target_nodes(), &[0, 1]);
        dense.validate().unwrap();
    }

    #[test]
    fn isolated_target_produces_empty_neighbourhood() {
        let graph = figure_graph();
        let sampler = MultiHopSampler::new(vec![10, 10], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(6);
        let dense = sampler.sample(&graph, &[99], &mut rng);
        dense.validate().unwrap();
        assert_eq!(dense.node_ids(), &[99]);
        assert!(dense.nbrs().is_empty());
        // Offsets still describe two (empty) deltas plus the target group.
        assert_eq!(dense.num_layers(), 2);
    }

    #[test]
    fn relations_are_carried_through() {
        let edges = vec![Edge::with_rel(1, 3, 0), Edge::with_rel(2, 7, 0)];
        let graph = InMemorySubgraph::from_edges(&edges);
        let sampler = MultiHopSampler::new(vec![5], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(7);
        let dense = sampler.sample(&graph, &[0], &mut rng);
        let mut pairs: Vec<_> = dense
            .nbrs()
            .iter()
            .zip(dense.nbr_rels().iter())
            .map(|(&n, &r)| (n, r))
            .collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(1, 3), (2, 7)]);
    }

    #[test]
    fn parallel_sampling_matches_structure_of_serial() {
        // Parallel sampling uses different RNG streams so the exact neighbours
        // may differ, but the structural properties (validity, per-node counts
        // with full fanout) must match.
        let mut edges = Vec::new();
        for i in 0..200u64 {
            edges.push(Edge::new(i, (i * 7 + 1) % 200));
            edges.push(Edge::new((i * 13 + 3) % 200, i));
        }
        let graph = InMemorySubgraph::from_edges(&edges);
        let targets: Vec<NodeId> = (0..50).collect();

        let serial = MultiHopSampler::new(vec![100, 100], SamplingDirection::Both);
        let parallel = serial.clone().with_parallelism(4);
        let mut rng1 = StdRng::seed_from_u64(8);
        let mut rng2 = StdRng::seed_from_u64(8);
        let d_serial = serial.sample(&graph, &targets, &mut rng1);
        let d_parallel = parallel.sample(&graph, &targets, &mut rng2);
        d_serial.validate().unwrap();
        d_parallel.validate().unwrap();
        // With fanouts larger than any degree, both collect every edge reachable,
        // so the edge and node counts must be identical.
        assert_eq!(d_serial.nbrs().len(), d_parallel.nbrs().len());
        assert_eq!(d_serial.node_ids().len(), d_parallel.node_ids().len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let graph = figure_graph();
        let sampler = MultiHopSampler::new(vec![1, 1], SamplingDirection::Incoming);
        let mut rng1 = StdRng::seed_from_u64(42);
        let mut rng2 = StdRng::seed_from_u64(42);
        let a = sampler.sample(&graph, &[0, 1], &mut rng1);
        let b = sampler.sample(&graph, &[0, 1], &mut rng2);
        assert_eq!(a, b);
    }

    #[test]
    fn deeper_sampling_touches_more_nodes_until_closure() {
        let mut edges = Vec::new();
        for i in 0..100u64 {
            for j in 1..=3u64 {
                edges.push(Edge::new((i + j * 17) % 100, i));
            }
        }
        let graph = InMemorySubgraph::from_edges(&edges);
        let mut rng = StdRng::seed_from_u64(9);
        let mut last = 0usize;
        for layers in 1..=4 {
            let sampler = MultiHopSampler::new(vec![3; layers], SamplingDirection::Incoming);
            let dense = sampler.sample(&graph, &[0], &mut rng);
            dense.validate().unwrap();
            assert!(dense.node_ids().len() >= last);
            last = dense.node_ids().len();
        }
        assert!(last > 4);
    }
}
