//! Property-based tests of the DENSE structure: Algorithm 1's invariants must
//! hold for arbitrary random graphs, fanouts and target sets.

use marius_graph::{Edge, InMemorySubgraph, NodeId};
use marius_sampling::{MultiHopSampler, SamplingDirection};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Strategy: a random small directed graph as an edge list.
fn random_edges() -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::vec((0u64..40, 0u64..40, 0u32..4), 1..300).prop_map(|triples| {
        triples
            .into_iter()
            .map(|(s, d, r)| Edge::with_rel(s, r, d))
            .collect()
    })
}

fn direction_strategy() -> impl Strategy<Value = SamplingDirection> {
    prop_oneof![
        Just(SamplingDirection::Incoming),
        Just(SamplingDirection::Outgoing),
        Just(SamplingDirection::Both),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every DENSE sample satisfies the structural invariants checked by
    /// `Dense::validate`, before and after building the repr_map, and the
    /// target group always equals the (deduplicated) requested targets.
    #[test]
    fn dense_invariants_hold_for_random_graphs(
        edges in random_edges(),
        targets in proptest::collection::vec(0u64..40, 1..10),
        fanouts in proptest::collection::vec(1usize..6, 1..4),
        direction in direction_strategy(),
        seed in 0u64..1000,
    ) {
        let graph = InMemorySubgraph::from_edges(&edges);
        let sampler = MultiHopSampler::new(fanouts.clone(), direction);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dense = sampler.sample(&graph, &targets, &mut rng);
        prop_assert!(dense.validate().is_ok(), "{:?}", dense.validate());
        dense.build_repr_map();
        prop_assert!(dense.validate().is_ok());

        // Targets are preserved (first occurrence order, deduplicated).
        let mut seen = HashSet::new();
        let expected: Vec<NodeId> = targets
            .iter()
            .copied()
            .filter(|t| seen.insert(*t))
            .collect();
        prop_assert_eq!(dense.target_nodes(), expected.as_slice());
        prop_assert_eq!(dense.num_layers(), fanouts.len());
    }

    /// Per-node neighbour counts never exceed the requested fanout for the hop
    /// at which the node was first expanded (single-direction sampling).
    #[test]
    fn fanout_bound_holds(
        edges in random_edges(),
        targets in proptest::collection::vec(0u64..40, 1..6),
        fanout in 1usize..5,
        seed in 0u64..1000,
    ) {
        let graph = InMemorySubgraph::from_edges(&edges);
        let sampler = MultiHopSampler::new(vec![fanout; 2], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = sampler.sample(&graph, &targets, &mut rng);
        let offsets = dense.nbr_offsets();
        for (j, &start) in offsets.iter().enumerate() {
            let end = if j + 1 < offsets.len() {
                offsets[j + 1]
            } else {
                dense.nbrs().len()
            };
            prop_assert!(end - start <= fanout);
        }
    }

    /// Advancing through every layer keeps the structure valid and ends with the
    /// target group only.
    #[test]
    fn advancing_layers_preserves_validity(
        edges in random_edges(),
        targets in proptest::collection::vec(0u64..40, 1..6),
        seed in 0u64..1000,
    ) {
        let graph = InMemorySubgraph::from_edges(&edges);
        let sampler = MultiHopSampler::new(vec![3, 3, 3], SamplingDirection::Both);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dense = sampler.sample(&graph, &targets, &mut rng);
        dense.build_repr_map();
        let target_count = dense.target_nodes().len();
        for _ in 0..2 {
            dense.advance_layer();
            prop_assert!(dense.validate().is_ok(), "{:?}", dense.validate());
        }
        prop_assert_eq!(dense.output_node_ids().len(), target_count);
    }

    /// One-hop sampling work (operations) is bounded by the number of unique
    /// nodes in the structure — the "each node sampled at most once" guarantee
    /// that distinguishes DENSE from layer-wise re-sampling.
    #[test]
    fn one_hop_work_bounded_by_unique_nodes(
        edges in random_edges(),
        targets in proptest::collection::vec(0u64..40, 1..8),
        seed in 0u64..1000,
    ) {
        let graph = InMemorySubgraph::from_edges(&edges);
        let sampler = MultiHopSampler::new(vec![4, 4, 4], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = sampler.sample(&graph, &targets, &mut rng);
        prop_assert!(dense.stats().one_hop_operations <= dense.node_ids().len());
    }
}
