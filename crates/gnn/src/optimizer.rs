//! Parameters and dense-parameter optimizers.
//!
//! GNN layer weights, decoder relation embeddings and classification heads are all
//! held as [`Param`]s: a value, a gradient accumulator and optional Adagrad state.
//! The [`Optimizer`] enum applies either plain SGD or Adagrad updates — the two
//! optimizers the paper's models use (Adagrad for embeddings, SGD/Adam-family for
//! GNN weights; we use Adagrad as the adaptive option to stay within the crate
//! budget).

use marius_tensor::Tensor;

/// A learnable dense parameter with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Accumulated gradient since the last [`Param::zero_grad`].
    pub grad: Tensor,
    /// Adagrad sum-of-squares state (lazily sized to match `value`).
    pub adagrad_state: Tensor,
    /// Human-readable name used in diagnostics.
    pub name: String,
}

impl Param {
    /// Creates a parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let (r, c) = value.shape();
        Param {
            value,
            grad: Tensor::zeros(r, c),
            adagrad_state: Tensor::zeros(r, c),
            name: name.into(),
        }
    }

    /// Adds `delta` into the gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not match.
    pub fn accumulate_grad(&mut self, delta: &Tensor) {
        self.grad
            .add_assign(delta)
            .expect("gradient shape mismatch");
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad = Tensor::zeros(self.value.rows(), self.value.cols());
    }

    /// Number of scalar parameters.
    pub fn num_elements(&self) -> usize {
        self.value.len()
    }
}

/// Dense-parameter optimizers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Stochastic gradient descent with a fixed learning rate.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// Adagrad: per-element adaptive learning rates.
    Adagrad {
        /// Base learning rate.
        lr: f32,
        /// Numerical-stability epsilon.
        eps: f32,
    },
}

impl Optimizer {
    /// A reasonable SGD default for GNN weights.
    pub fn sgd(lr: f32) -> Self {
        Optimizer::Sgd { lr }
    }

    /// A reasonable Adagrad default (`eps = 1e-10`, matching Marius).
    pub fn adagrad(lr: f32) -> Self {
        Optimizer::Adagrad { lr, eps: 1e-10 }
    }

    /// Applies one update step to `param` using its accumulated gradient, then
    /// clears the gradient.
    pub fn step(&self, param: &mut Param) {
        match *self {
            Optimizer::Sgd { lr } => {
                let update = param.grad.scale(lr);
                for (v, u) in param.value.data_mut().iter_mut().zip(update.data().iter()) {
                    *v -= *u;
                }
            }
            Optimizer::Adagrad { lr, eps } => {
                let grad = param.grad.clone();
                for ((v, g), s) in param
                    .value
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data().iter())
                    .zip(param.adagrad_state.data_mut().iter_mut())
                {
                    *s += g * g;
                    *v -= lr * g / (s.sqrt() + eps);
                }
            }
        }
        param.zero_grad();
    }

    /// Applies one step to every parameter in `params`.
    pub fn step_all(&self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            self.step(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Param) -> Tensor {
        // d/dx of 0.5 * x^2 is x.
        p.value.clone()
    }

    #[test]
    fn param_construction_and_zero_grad() {
        let mut p = Param::new("w", Tensor::ones(2, 3));
        assert_eq!(p.num_elements(), 6);
        p.accumulate_grad(&Tensor::ones(2, 3));
        assert_eq!(p.grad.sum(), 6.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn accumulate_grad_shape_mismatch_panics() {
        let mut p = Param::new("w", Tensor::ones(2, 3));
        p.accumulate_grad(&Tensor::ones(3, 2));
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        let mut p = Param::new("x", Tensor::full(1, 4, 10.0));
        let opt = Optimizer::sgd(0.1);
        for _ in 0..100 {
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g);
            opt.step(&mut p);
        }
        assert!(p.value.frobenius_norm() < 1e-3);
    }

    #[test]
    fn adagrad_descends_a_quadratic() {
        let mut p = Param::new("x", Tensor::full(1, 4, 5.0));
        let opt = Optimizer::adagrad(1.0);
        for _ in 0..300 {
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g);
            opt.step(&mut p);
        }
        assert!(
            p.value.frobenius_norm() < 0.1,
            "norm {}",
            p.value.frobenius_norm()
        );
    }

    #[test]
    fn step_clears_gradient() {
        let mut p = Param::new("x", Tensor::ones(1, 2));
        p.accumulate_grad(&Tensor::ones(1, 2));
        Optimizer::sgd(0.5).step(&mut p);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.value.get(0, 0), 0.5);
    }

    #[test]
    fn adagrad_state_accumulates() {
        let mut p = Param::new("x", Tensor::ones(1, 1));
        let opt = Optimizer::adagrad(0.1);
        p.accumulate_grad(&Tensor::full(1, 1, 2.0));
        opt.step(&mut p);
        assert!((p.adagrad_state.get(0, 0) - 4.0).abs() < 1e-6);
        p.accumulate_grad(&Tensor::full(1, 1, 1.0));
        opt.step(&mut p);
        assert!((p.adagrad_state.get(0, 0) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn step_all_updates_every_param() {
        let mut a = Param::new("a", Tensor::ones(1, 1));
        let mut b = Param::new("b", Tensor::ones(1, 1));
        a.accumulate_grad(&Tensor::ones(1, 1));
        b.accumulate_grad(&Tensor::ones(1, 1));
        Optimizer::sgd(1.0).step_all(&mut [&mut a, &mut b]);
        assert_eq!(a.value.get(0, 0), 0.0);
        assert_eq!(b.value.get(0, 0), 0.0);
    }
}
