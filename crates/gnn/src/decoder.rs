//! Decoders: the DistMult score function for link prediction and a linear
//! classification head for node classification (paper §2).

use crate::optimizer::Param;
use marius_graph::RelId;
use marius_tensor::{glorot_uniform, uniform_init, Tensor};
use rand::Rng;

/// The DistMult knowledge-graph score function
/// `score(s, r, o) = Σ_d s_d · r_d · o_d` with learnable relation embeddings.
///
/// Used both as the link-prediction decoder on top of GNN outputs (Tables 4, 5)
/// and as the stand-alone "specialised knowledge graph embedding model" compared
/// in Table 8 (a zero-layer encoder).
#[derive(Debug)]
pub struct DistMult {
    relations: Param,
    dim: usize,
}

impl DistMult {
    /// Creates a DistMult decoder with `num_relations` learnable relation vectors
    /// of dimension `dim`.
    pub fn new<R: Rng + ?Sized>(num_relations: usize, dim: usize, rng: &mut R) -> Self {
        DistMult {
            relations: Param::new(
                "distmult.relations",
                uniform_init(rng, num_relations.max(1), dim, 0.5),
            ),
            dim,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.value.rows()
    }

    /// The relation-embedding parameter (for the optimizer).
    pub fn relation_param_mut(&mut self) -> &mut Param {
        &mut self.relations
    }

    /// The relation-embedding parameter.
    pub fn relation_param(&self) -> &Param {
        &self.relations
    }

    fn gather_relations(&self, rels: &[RelId]) -> Tensor {
        let mut out = Tensor::zeros(rels.len(), self.dim);
        for (i, &r) in rels.iter().enumerate() {
            out.row_mut(i)
                .copy_from_slice(self.relations.value.row(r as usize % self.num_relations()));
        }
        out
    }

    /// Scores positive triples: `src`, `dst` are `(B, dim)` representations and
    /// `rels` the per-triple relation ids. Returns a `(B, 1)` score tensor.
    pub fn score_positive(&self, src: &Tensor, rels: &[RelId], dst: &Tensor) -> Tensor {
        let r = self.gather_relations(rels);
        let sr = src.mul(&r).expect("src/relation dims");
        sr.rowwise_dot(dst).expect("dst dims")
    }

    /// Scores every positive source against a shared pool of negative
    /// destinations: returns a `(B, N)` matrix where entry `(b, n)` is
    /// `score(src_b, rel_b, neg_n)`.
    pub fn score_negatives(&self, src: &Tensor, rels: &[RelId], negatives: &Tensor) -> Tensor {
        let r = self.gather_relations(rels);
        let sr = src.mul(&r).expect("src/relation dims");
        sr.matmul(&negatives.transpose())
    }

    /// Backward pass for positive scores: accumulates relation gradients and
    /// returns `(grad_src, grad_dst)` for an upstream `(B, 1)` gradient.
    pub fn backward_positive(
        &mut self,
        src: &Tensor,
        rels: &[RelId],
        dst: &Tensor,
        grad_scores: &Tensor,
    ) -> (Tensor, Tensor) {
        let r = self.gather_relations(rels);
        let mut grad_src = Tensor::zeros(src.rows(), self.dim);
        let mut grad_dst = Tensor::zeros(dst.rows(), self.dim);
        let mut grad_rel = Tensor::zeros(self.num_relations(), self.dim);
        for b in 0..src.rows() {
            let g = grad_scores.get(b, 0);
            let rel_row = rels[b] as usize % self.num_relations();
            for d in 0..self.dim {
                let s = src.get(b, d);
                let rr = r.get(b, d);
                let o = dst.get(b, d);
                grad_src.set(b, d, g * rr * o);
                grad_dst.set(b, d, g * s * rr);
                let cur = grad_rel.get(rel_row, d);
                grad_rel.set(rel_row, d, cur + g * s * o);
            }
        }
        self.relations.accumulate_grad(&grad_rel);
        (grad_src, grad_dst)
    }

    /// Backward pass for the negative score matrix: accumulates relation
    /// gradients and returns `(grad_src, grad_negatives)` for an upstream
    /// `(B, N)` gradient.
    pub fn backward_negatives(
        &mut self,
        src: &Tensor,
        rels: &[RelId],
        negatives: &Tensor,
        grad_scores: &Tensor,
    ) -> (Tensor, Tensor) {
        let r = self.gather_relations(rels);
        let sr = src.mul(&r).expect("src/relation dims");
        // S = (src ⊙ r) · negᵀ.
        let grad_sr = grad_scores.matmul(negatives); // (B, dim)
        let grad_neg = grad_scores.transpose().matmul(&sr); // (N, dim)
        let grad_src = grad_sr.mul(&r).expect("dims");
        let grad_r_rows = grad_sr.mul(src).expect("dims");
        // Scatter per-row relation gradients into the relation table.
        let mut grad_rel = Tensor::zeros(self.num_relations(), self.dim);
        for b in 0..src.rows() {
            let rel_row = rels[b] as usize % self.num_relations();
            for d in 0..self.dim {
                let cur = grad_rel.get(rel_row, d);
                grad_rel.set(rel_row, d, cur + grad_r_rows.get(b, d));
            }
        }
        self.relations.accumulate_grad(&grad_rel);
        (grad_src, grad_neg)
    }
}

/// A linear classification head: `logits = h · W + b` (the "fully-connected and
/// softmax layer" of paper §2 used for node classification).
#[derive(Debug)]
pub struct ClassifierHead {
    weight: Param,
    bias: Param,
    in_dim: usize,
    num_classes: usize,
}

impl ClassifierHead {
    /// Creates a classification head for `num_classes` classes.
    pub fn new<R: Rng + ?Sized>(in_dim: usize, num_classes: usize, rng: &mut R) -> Self {
        ClassifierHead {
            weight: Param::new(
                "classifier.weight",
                glorot_uniform(rng, in_dim, num_classes),
            ),
            bias: Param::new("classifier.bias", Tensor::zeros(1, num_classes)),
            in_dim,
            num_classes,
        }
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.in_dim
    }

    /// Computes class logits for a batch of node representations.
    pub fn forward(&self, h: &Tensor) -> Tensor {
        h.matmul(&self.weight.value)
            .add_row_broadcast(&self.bias.value)
            .expect("bias dims")
    }

    /// Backward pass: accumulates parameter gradients and returns the gradient
    /// with respect to the input representations.
    pub fn backward(&mut self, h: &Tensor, grad_logits: &Tensor) -> Tensor {
        self.bias.accumulate_grad(&grad_logits.sum_rows());
        self.weight
            .accumulate_grad(&h.transpose().matmul(grad_logits));
        grad_logits.matmul(&self.weight.value.transpose())
    }

    /// The head's parameters, mutably (for the optimizer).
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// The head's parameters.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn distmult_scores_match_manual_computation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut dm = DistMult::new(2, 3, &mut rng);
        // Make relation 0 the all-ones vector so the score is a plain dot product.
        dm.relations
            .value
            .row_mut(0)
            .copy_from_slice(&[1.0, 1.0, 1.0]);
        let src = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]);
        let dst = Tensor::from_rows(&[&[4.0, 5.0, 6.0]]);
        let s = dm.score_positive(&src, &[0], &dst);
        assert!((s.get(0, 0) - 32.0).abs() < 1e-5);
    }

    #[test]
    fn distmult_negative_scores_shape_and_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dm = DistMult::new(1, 2, &mut rng);
        dm.relations.value.row_mut(0).copy_from_slice(&[1.0, 1.0]);
        let src = Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let negs = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[0.0, 3.0]]);
        let s = dm.score_negatives(&src, &[0, 0], &negs);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s.get(0, 1), 2.0);
        assert_eq!(s.get(1, 2), 3.0);
    }

    #[test]
    fn distmult_positive_gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut dm = DistMult::new(3, 4, &mut rng);
        let src = Tensor::from_rows(&[&[0.1, -0.2, 0.3, 0.4], &[1.0, 0.5, -0.5, 0.2]]);
        let dst = Tensor::from_rows(&[&[0.3, 0.1, 0.2, -0.4], &[-0.2, 0.6, 0.1, 0.9]]);
        let rels = vec![1, 2];
        let grad_scores = Tensor::from_rows(&[&[1.0], &[0.5]]);
        let (g_src, g_dst) = dm.backward_positive(&src, &rels, &dst, &grad_scores);
        let analytic_rel = dm.relations.grad.clone();

        let eps = 1e-3f32;
        let loss = |dm: &DistMult, src: &Tensor, dst: &Tensor| -> f32 {
            let s = dm.score_positive(src, &rels, dst);
            s.get(0, 0) * 1.0 + s.get(1, 0) * 0.5
        };
        for r in 0..2 {
            for d in 0..4 {
                let mut p = src.clone();
                p.set(r, d, p.get(r, d) + eps);
                let mut m = src.clone();
                m.set(r, d, m.get(r, d) - eps);
                let numeric = (loss(&dm, &p, &dst) - loss(&dm, &m, &dst)) / (2.0 * eps);
                assert!((numeric - g_src.get(r, d)).abs() < 1e-2, "src ({r},{d})");

                let mut p = dst.clone();
                p.set(r, d, p.get(r, d) + eps);
                let mut m = dst.clone();
                m.set(r, d, m.get(r, d) - eps);
                let numeric = (loss(&dm, &src, &p) - loss(&dm, &src, &m)) / (2.0 * eps);
                assert!((numeric - g_dst.get(r, d)).abs() < 1e-2, "dst ({r},{d})");
            }
        }
        // Relation gradient for relation 1 (used by row 0 with weight 1.0).
        for d in 0..4 {
            let orig = dm.relations.value.get(1, d);
            dm.relations.value.set(1, d, orig + eps);
            let lp = loss(&dm, &src, &dst);
            dm.relations.value.set(1, d, orig - eps);
            let lm = loss(&dm, &src, &dst);
            dm.relations.value.set(1, d, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic_rel.get(1, d)).abs() < 1e-2,
                "rel (1,{d})"
            );
        }
    }

    #[test]
    fn distmult_negative_gradient_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut dm = DistMult::new(2, 3, &mut rng);
        let src = Tensor::from_rows(&[&[0.2, -0.1, 0.4]]);
        let negs = Tensor::from_rows(&[&[0.1, 0.3, -0.2], &[0.5, 0.2, 0.7]]);
        let rels = vec![1];
        let grad_scores = Tensor::from_rows(&[&[1.0, -0.5]]);
        let (g_src, g_neg) = dm.backward_negatives(&src, &rels, &negs, &grad_scores);

        let loss = |dm: &DistMult, src: &Tensor, negs: &Tensor| -> f32 {
            let s = dm.score_negatives(src, &rels, negs);
            s.get(0, 0) - 0.5 * s.get(0, 1)
        };
        let eps = 1e-3f32;
        for d in 0..3 {
            let mut p = src.clone();
            p.set(0, d, p.get(0, d) + eps);
            let mut m = src.clone();
            m.set(0, d, m.get(0, d) - eps);
            let numeric = (loss(&dm, &p, &negs) - loss(&dm, &m, &negs)) / (2.0 * eps);
            assert!((numeric - g_src.get(0, d)).abs() < 1e-2, "src grad {d}");
        }
        for n in 0..2 {
            for d in 0..3 {
                let mut p = negs.clone();
                p.set(n, d, p.get(n, d) + eps);
                let mut m = negs.clone();
                m.set(n, d, m.get(n, d) - eps);
                let numeric = (loss(&dm, &src, &p) - loss(&dm, &src, &m)) / (2.0 * eps);
                assert!(
                    (numeric - g_neg.get(n, d)).abs() < 1e-2,
                    "neg grad ({n},{d})"
                );
            }
        }
    }

    #[test]
    fn relation_id_out_of_range_wraps() {
        let mut rng = StdRng::seed_from_u64(5);
        let dm = DistMult::new(2, 2, &mut rng);
        let src = Tensor::ones(1, 2);
        let dst = Tensor::ones(1, 2);
        // Relation 7 wraps to 7 % 2 = 1 rather than panicking.
        let s = dm.score_positive(&src, &[7], &dst);
        let expected = dm.score_positive(&src, &[1], &dst);
        assert_eq!(s, expected);
    }

    #[test]
    fn classifier_head_forward_backward() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut head = ClassifierHead::new(3, 4, &mut rng);
        assert_eq!(head.num_classes(), 4);
        assert_eq!(head.input_dim(), 3);
        let h = Tensor::from_rows(&[&[0.5, -0.5, 1.0], &[0.1, 0.2, 0.3]]);
        let logits = head.forward(&h);
        assert_eq!(logits.shape(), (2, 4));

        let grad_logits = Tensor::ones(2, 4);
        let grad_h = head.backward(&h, &grad_logits);
        assert_eq!(grad_h.shape(), (2, 3));

        // Finite-difference check on one weight entry.
        let eps = 1e-3f32;
        let analytic = head.weight.grad.get(1, 2);
        let orig = head.weight.value.get(1, 2);
        head.weight.value.set(1, 2, orig + eps);
        let lp = head.forward(&h).sum();
        head.weight.value.set(1, 2, orig - eps);
        let lm = head.forward(&h).sum();
        head.weight.value.set(1, 2, orig);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - analytic).abs() < 1e-2);
        assert_eq!(head.params().len(), 2);
    }
}
