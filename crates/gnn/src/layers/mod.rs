//! GNN encoder layers operating on DENSE samples.
//!
//! Every layer consumes a [`LayerContext`] — an immutable snapshot of the DENSE
//! arrays relevant to one GNN layer — plus the layer-input representation matrix
//! whose rows are aligned with the DENSE `node_ids` of that layer. The forward
//! pass is exactly Algorithm 3 of the paper: gather neighbour rows with the
//! `repr_map`, reduce contiguous segments, combine with the nodes' own rows.
//! Backward passes are hand-written adjoints of the same kernels.

mod gat;
mod gcn;
mod graphsage;

pub use gat::GatLayer;
pub use gcn::GcnLayer;
pub use graphsage::{Aggregator, GraphSageLayer};

use crate::optimizer::Param;
use marius_sampling::Dense;
use marius_tensor::Tensor;

/// Immutable view of the DENSE arrays needed to run one GNN layer.
///
/// Rows of the layer input matrix correspond, in order, to the DENSE `node_ids`;
/// output rows correspond to `node_ids[self_offset..]` and neighbour segment `j`
/// (rows `nbr_offsets[j] .. nbr_offsets[j+1]` of the gathered neighbour matrix)
/// belongs to output row `j`.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerContext {
    /// For every sampled neighbour, the row of the layer input holding its
    /// representation.
    pub repr_map: Vec<usize>,
    /// Start offset of each output node's neighbour list.
    pub nbr_offsets: Vec<usize>,
    /// Relation id of each sampled neighbour edge.
    pub nbr_rels: Vec<u32>,
    /// First row of the layer input that is also an output node ("self" rows).
    pub self_offset: usize,
    /// Number of rows in the layer input.
    pub num_input_rows: usize,
}

impl LayerContext {
    /// Captures the current state of a DENSE structure as a layer context.
    ///
    /// # Panics
    ///
    /// Panics if `dense.build_repr_map` has not been called.
    pub fn from_dense(dense: &Dense) -> Self {
        assert!(
            dense.nbrs().is_empty() == dense.repr_map().is_empty(),
            "LayerContext requires Dense::build_repr_map to have been called"
        );
        LayerContext {
            repr_map: dense.repr_map().to_vec(),
            nbr_offsets: dense.nbr_offsets().to_vec(),
            nbr_rels: dense.nbr_rels().to_vec(),
            self_offset: dense.self_offset(),
            num_input_rows: dense.node_ids().len(),
        }
    }

    /// Number of output rows this layer produces.
    pub fn num_output_rows(&self) -> usize {
        self.num_input_rows - self.self_offset
    }

    /// Number of sampled neighbour entries (edges) feeding this layer.
    pub fn num_edges(&self) -> usize {
        self.repr_map.len()
    }

    /// Per-output-node neighbour counts.
    pub fn segment_counts(&self) -> Vec<usize> {
        let n = self.nbr_offsets.len();
        let mut counts = Vec::with_capacity(n);
        for j in 0..n {
            let end = if j + 1 < n {
                self.nbr_offsets[j + 1]
            } else {
                self.repr_map.len()
            };
            counts.push(end - self.nbr_offsets[j]);
        }
        counts
    }
}

/// Opaque per-layer forward cache handed back to the layer's backward pass.
#[derive(Debug, Clone, Default)]
pub struct LayerCache {
    /// Cached tensors, with layer-specific meaning.
    pub tensors: Vec<Tensor>,
}

impl LayerCache {
    /// Creates a cache from a list of tensors.
    pub fn new(tensors: Vec<Tensor>) -> Self {
        LayerCache { tensors }
    }
}

/// A GNN encoder layer with a manual forward/backward implementation.
pub trait GnnLayer: std::fmt::Debug + Send {
    /// Computes the layer output for every output node (Algorithm 3).
    fn forward(&self, ctx: &LayerContext, input: &Tensor) -> (Tensor, LayerCache);

    /// Propagates `grad_output` back to the layer input, accumulating parameter
    /// gradients internally. `input` must be the same matrix passed to
    /// [`GnnLayer::forward`].
    fn backward(
        &mut self,
        ctx: &LayerContext,
        cache: &LayerCache,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> Tensor;

    /// The layer's learnable parameters.
    fn params(&self) -> Vec<&Param>;

    /// The layer's learnable parameters, mutably (for the optimizer).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Input feature dimension.
    fn input_dim(&self) -> usize;

    /// Output feature dimension.
    fn output_dim(&self) -> usize;

    /// Short human-readable layer name.
    fn name(&self) -> &'static str;

    /// Total number of scalar parameters.
    fn num_parameters(&self) -> usize {
        self.params().iter().map(|p| p.num_elements()).sum()
    }
}

/// Adds `delta` into the rows of `target` starting at `start_row`.
///
/// # Panics
///
/// Panics if the column counts differ or the rows run past the end of `target`.
pub(crate) fn add_into_rows(target: &mut Tensor, start_row: usize, delta: &Tensor) {
    assert_eq!(
        target.cols(),
        delta.cols(),
        "column mismatch in add_into_rows"
    );
    assert!(
        start_row + delta.rows() <= target.rows(),
        "row range out of bounds in add_into_rows"
    );
    for r in 0..delta.rows() {
        for (t, d) in target
            .row_mut(start_row + r)
            .iter_mut()
            .zip(delta.row(r).iter())
        {
            *t += *d;
        }
    }
}

/// Backward pass of a segment softmax: given the softmax outputs `alpha`, the
/// upstream gradient `grad_alpha` (both `(E, 1)`), and the segment offsets,
/// returns the gradient with respect to the pre-softmax scores.
pub(crate) fn segment_softmax_backward(
    alpha: &Tensor,
    grad_alpha: &Tensor,
    offsets: &[usize],
) -> Tensor {
    let total = alpha.rows();
    let mut out = Tensor::zeros(total, 1);
    let n = offsets.len();
    for j in 0..n {
        let start = offsets[j];
        let end = if j + 1 < n { offsets[j + 1] } else { total };
        // dot = Σ_k alpha_k * grad_alpha_k within the segment.
        let mut dot = 0.0f32;
        for r in start..end {
            dot += alpha.get(r, 0) * grad_alpha.get(r, 0);
        }
        for r in start..end {
            let a = alpha.get(r, 0);
            out.set(r, 0, a * (grad_alpha.get(r, 0) - dot));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::{Edge, InMemorySubgraph};
    use marius_sampling::{MultiHopSampler, SamplingDirection};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_context() -> LayerContext {
        let edges = vec![
            Edge::new(2, 0),
            Edge::new(3, 0),
            Edge::new(2, 1),
            Edge::new(4, 2),
        ];
        let graph = InMemorySubgraph::from_edges(&edges);
        let sampler = MultiHopSampler::new(vec![10, 10], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(0);
        let mut dense = sampler.sample(&graph, &[0, 1], &mut rng);
        dense.build_repr_map();
        LayerContext::from_dense(&dense)
    }

    #[test]
    fn context_from_dense_has_consistent_shapes() {
        let ctx = small_context();
        assert_eq!(ctx.nbr_offsets.len(), ctx.num_output_rows());
        assert_eq!(ctx.repr_map.len(), ctx.nbr_rels.len());
        assert!(ctx.num_input_rows >= ctx.num_output_rows());
        let counts = ctx.segment_counts();
        assert_eq!(counts.iter().sum::<usize>(), ctx.num_edges());
    }

    #[test]
    fn add_into_rows_accumulates() {
        let mut t = Tensor::zeros(4, 2);
        let d = Tensor::ones(2, 2);
        add_into_rows(&mut t, 1, &d);
        assert_eq!(t.row(0), &[0.0, 0.0]);
        assert_eq!(t.row(1), &[1.0, 1.0]);
        assert_eq!(t.row(2), &[1.0, 1.0]);
        assert_eq!(t.row(3), &[0.0, 0.0]);
        add_into_rows(&mut t, 1, &d);
        assert_eq!(t.row(1), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_into_rows_out_of_bounds_panics() {
        let mut t = Tensor::zeros(2, 2);
        add_into_rows(&mut t, 1, &Tensor::ones(2, 2));
    }

    #[test]
    fn segment_softmax_backward_matches_finite_difference() {
        use marius_tensor::segment::segment_softmax;
        let scores = Tensor::from_rows(&[&[0.3], &[-0.5], &[1.2], &[0.1], &[0.0]]);
        let offsets = vec![0, 3];
        let alpha = segment_softmax(&scores, &offsets).unwrap();
        // Upstream gradient.
        let grad_alpha = Tensor::from_rows(&[&[0.7], &[-0.2], &[0.4], &[1.0], &[0.3]]);
        let analytic = segment_softmax_backward(&alpha, &grad_alpha, &offsets);
        // Finite differences on the scalar L = Σ grad_alpha · softmax(scores).
        let eps = 1e-3f32;
        for r in 0..scores.rows() {
            let mut plus = scores.clone();
            plus.set(r, 0, plus.get(r, 0) + eps);
            let mut minus = scores.clone();
            minus.set(r, 0, minus.get(r, 0) - eps);
            let lp: f32 = segment_softmax(&plus, &offsets)
                .unwrap()
                .mul(&grad_alpha)
                .unwrap()
                .sum();
            let lm: f32 = segment_softmax(&minus, &offsets)
                .unwrap()
                .mul(&grad_alpha)
                .unwrap()
                .sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic.get(r, 0)).abs() < 1e-3,
                "row {r}: numeric {numeric} vs analytic {}",
                analytic.get(r, 0)
            );
        }
    }

    #[test]
    fn layer_cache_holds_tensors() {
        let c = LayerCache::new(vec![Tensor::ones(1, 1), Tensor::zeros(2, 2)]);
        assert_eq!(c.tensors.len(), 2);
        assert!(LayerCache::default().tensors.is_empty());
    }
}
