//! A GCN-style layer (Kipf & Welling, 2016) over DENSE samples.
//!
//! `h_out = act( W · ( (h_self + Σ h_nbrs) / (deg + 1) ) + b )` — a single shared
//! projection over the degree-normalised sum of the node itself and its sampled
//! neighbours. Included as the third encoder option referenced in the paper's
//! related-work discussion and used by the ablation benches.

use super::{add_into_rows, GnnLayer, LayerCache, LayerContext};
use crate::optimizer::Param;
use marius_tensor::segment::{index_add, index_select, segment_expand, segment_sum};
use marius_tensor::{glorot_uniform, Tensor};
use rand::Rng;

/// A GCN encoder layer with mean-style normalisation over the sampled closed
/// neighbourhood (self plus neighbours).
#[derive(Debug)]
pub struct GcnLayer {
    weight: Param,
    bias: Param,
    activation: bool,
    in_dim: usize,
    out_dim: usize,
}

impl GcnLayer {
    /// Creates a GCN layer with Glorot-initialised weights.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        activation: bool,
        rng: &mut R,
    ) -> Self {
        GcnLayer {
            weight: Param::new("gcn.weight", glorot_uniform(rng, in_dim, out_dim)),
            bias: Param::new("gcn.bias", Tensor::zeros(1, out_dim)),
            activation,
            in_dim,
            out_dim,
        }
    }

    /// Normalisation factor per output node: `1 / (deg + 1)`.
    fn norms(ctx: &LayerContext) -> Vec<f32> {
        ctx.segment_counts()
            .iter()
            .map(|&c| 1.0 / (c as f32 + 1.0))
            .collect()
    }
}

impl GnnLayer for GcnLayer {
    fn forward(&self, ctx: &LayerContext, input: &Tensor) -> (Tensor, LayerCache) {
        let nbr_repr = index_select(input, &ctx.repr_map).expect("repr_map in range");
        let nbr_sum = segment_sum(&nbr_repr, &ctx.nbr_offsets).expect("valid offsets");
        let self_repr = input
            .slice_rows(ctx.self_offset, input.rows())
            .expect("self rows in range");
        let mut combined = nbr_sum.add(&self_repr).expect("matching dims");
        let norms = Self::norms(ctx);
        for (j, &n) in norms.iter().enumerate() {
            for x in combined.row_mut(j) {
                *x *= n;
            }
        }
        let pre = combined
            .matmul(&self.weight.value)
            .add_row_broadcast(&self.bias.value)
            .expect("bias dims");
        let out = if self.activation {
            pre.relu()
        } else {
            pre.clone()
        };
        (out, LayerCache::new(vec![combined, pre]))
    }

    fn backward(
        &mut self,
        ctx: &LayerContext,
        cache: &LayerCache,
        _input: &Tensor,
        grad_output: &Tensor,
    ) -> Tensor {
        let combined = &cache.tensors[0];
        let pre = &cache.tensors[1];

        let grad_pre = if self.activation {
            grad_output
                .mul(&pre.relu_grad_mask())
                .expect("activation mask shape")
        } else {
            grad_output.clone()
        };

        self.bias.accumulate_grad(&grad_pre.sum_rows());
        self.weight
            .accumulate_grad(&combined.transpose().matmul(&grad_pre));

        // Gradient w.r.t. the normalised combined representation.
        let mut grad_combined = grad_pre.matmul(&self.weight.value.transpose());
        let norms = Self::norms(ctx);
        for (j, &n) in norms.iter().enumerate() {
            for x in grad_combined.row_mut(j) {
                *x *= n;
            }
        }

        // The combined rep is self + Σ neighbours, so the gradient fans out to
        // both with the same value.
        let grad_nbr_rows = segment_expand(&grad_combined, &ctx.nbr_offsets, ctx.num_edges())
            .expect("segment expand shapes");
        let mut grad_input = index_add(
            ctx.num_input_rows,
            self.in_dim,
            &ctx.repr_map,
            &grad_nbr_rows,
        )
        .expect("index_add shapes");
        add_into_rows(&mut grad_input, ctx.self_offset, &grad_combined);
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn input_dim(&self) -> usize {
        self.in_dim
    }

    fn output_dim(&self) -> usize {
        self.out_dim
    }

    fn name(&self) -> &'static str {
        "gcn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_context() -> LayerContext {
        LayerContext {
            repr_map: vec![0, 1, 2],
            nbr_offsets: vec![0, 2, 3],
            nbr_rels: vec![0, 0, 0],
            self_offset: 1,
            num_input_rows: 4,
        }
    }

    fn toy_input() -> Tensor {
        Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[0.5, -0.5]])
    }

    #[test]
    fn forward_normalises_by_closed_degree() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = GcnLayer::new(2, 2, false, &mut rng);
        layer.weight.value = Tensor::eye(2);
        layer.bias.value = Tensor::zeros(1, 2);
        let (out, _) = layer.forward(&toy_context(), &toy_input());
        // Output 0: (self [0,1] + [1,0] + [0,1]) / 3 = [1/3, 2/3].
        assert!((out.get(0, 0) - 1.0 / 3.0).abs() < 1e-6);
        assert!((out.get(0, 1) - 2.0 / 3.0).abs() < 1e-6);
        // Output 2 has no neighbours: self / 1.
        assert_eq!(out.row(2), &[0.5, -0.5]);
    }

    #[test]
    fn gradient_check_input_and_weights() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = GcnLayer::new(2, 3, true, &mut rng);
        let ctx = toy_context();
        let input = toy_input();
        let (out, cache) = layer.forward(&ctx, &input);
        let grad_out = Tensor::ones(out.rows(), out.cols());
        let grad_input = layer.backward(&ctx, &cache, &input, &grad_out);
        let analytic_w = layer.weight.grad.clone();

        let eps = 1e-3f32;
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let mut plus = input.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = input.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let numeric = (layer.forward(&ctx, &plus).0.sum()
                    - layer.forward(&ctx, &minus).0.sum())
                    / (2.0 * eps);
                assert!(
                    (numeric - grad_input.get(r, c)).abs() < 2e-2,
                    "input grad ({r},{c})"
                );
            }
        }
        for r in 0..2 {
            for c in 0..3 {
                let orig = layer.weight.value.get(r, c);
                layer.weight.value.set(r, c, orig + eps);
                let lp = layer.forward(&ctx, &input).0.sum();
                layer.weight.value.set(r, c, orig - eps);
                let lm = layer.forward(&ctx, &input).0.sum();
                layer.weight.value.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic_w.get(r, c)).abs() < 2e-2,
                    "weight grad ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn metadata() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = GcnLayer::new(4, 6, true, &mut rng);
        assert_eq!(layer.input_dim(), 4);
        assert_eq!(layer.output_dim(), 6);
        assert_eq!(layer.name(), "gcn");
        assert_eq!(layer.num_parameters(), 4 * 6 + 6);
    }
}
