//! The GraphSage layer (Hamilton et al., 2017) over DENSE samples.
//!
//! `h_out = act( W_self · h_self + W_nbr · AGG(h_nbrs) + b )` where `AGG` is a
//! mean or sum over the node's sampled one-hop neighbours. This is the model used
//! for most of the paper's end-to-end experiments (Tables 3–6, 8).

use super::{add_into_rows, GnnLayer, LayerCache, LayerContext};
use crate::optimizer::Param;
use marius_tensor::segment::{index_add, index_select, segment_expand, segment_mean, segment_sum};
use marius_tensor::{glorot_uniform, Tensor};
use rand::Rng;

/// Neighbour aggregation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregator {
    /// Average the sampled neighbour representations (GraphSage-mean).
    Mean,
    /// Sum the sampled neighbour representations (the additive aggregation of
    /// Algorithm 3 in the paper).
    Sum,
}

/// A GraphSage encoder layer.
#[derive(Debug)]
pub struct GraphSageLayer {
    w_self: Param,
    w_nbr: Param,
    bias: Param,
    aggregator: Aggregator,
    activation: bool,
    in_dim: usize,
    out_dim: usize,
}

impl GraphSageLayer {
    /// Creates a GraphSage layer with Glorot-initialised weights.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        aggregator: Aggregator,
        activation: bool,
        rng: &mut R,
    ) -> Self {
        GraphSageLayer {
            w_self: Param::new("sage.w_self", glorot_uniform(rng, in_dim, out_dim)),
            w_nbr: Param::new("sage.w_nbr", glorot_uniform(rng, in_dim, out_dim)),
            bias: Param::new("sage.bias", Tensor::zeros(1, out_dim)),
            aggregator,
            activation,
            in_dim,
            out_dim,
        }
    }

    /// The configured aggregator.
    pub fn aggregator(&self) -> Aggregator {
        self.aggregator
    }

    fn aggregate(&self, nbr_repr: &Tensor, ctx: &LayerContext) -> Tensor {
        match self.aggregator {
            Aggregator::Mean => segment_mean(nbr_repr, &ctx.nbr_offsets)
                .expect("DENSE offsets are valid for segment ops"),
            Aggregator::Sum => segment_sum(nbr_repr, &ctx.nbr_offsets)
                .expect("DENSE offsets are valid for segment ops"),
        }
    }
}

impl GnnLayer for GraphSageLayer {
    fn forward(&self, ctx: &LayerContext, input: &Tensor) -> (Tensor, LayerCache) {
        // Algorithm 3: gather neighbour rows, reduce segments, combine with self.
        let nbr_repr = index_select(input, &ctx.repr_map).expect("repr_map in range");
        let nbr_aggr = self.aggregate(&nbr_repr, ctx);
        let self_repr = input
            .slice_rows(ctx.self_offset, input.rows())
            .expect("self rows in range");

        let pre = self_repr
            .matmul(&self.w_self.value)
            .add(&nbr_aggr.matmul(&self.w_nbr.value))
            .expect("matching projection dims")
            .add_row_broadcast(&self.bias.value)
            .expect("bias dims");
        let out = if self.activation {
            pre.relu()
        } else {
            pre.clone()
        };
        (out, LayerCache::new(vec![nbr_aggr, pre]))
    }

    fn backward(
        &mut self,
        ctx: &LayerContext,
        cache: &LayerCache,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> Tensor {
        let nbr_aggr = &cache.tensors[0];
        let pre = &cache.tensors[1];
        let self_repr = input
            .slice_rows(ctx.self_offset, input.rows())
            .expect("self rows in range");

        // Activation backward.
        let grad_pre = if self.activation {
            grad_output
                .mul(&pre.relu_grad_mask())
                .expect("activation mask shape")
        } else {
            grad_output.clone()
        };

        // Parameter gradients.
        self.bias.accumulate_grad(&grad_pre.sum_rows());
        self.w_self
            .accumulate_grad(&self_repr.transpose().matmul(&grad_pre));
        self.w_nbr
            .accumulate_grad(&nbr_aggr.transpose().matmul(&grad_pre));

        // Gradients flowing to the layer input.
        let grad_self = grad_pre.matmul(&self.w_self.value.transpose());
        let grad_aggr = grad_pre.matmul(&self.w_nbr.value.transpose());

        // Undo the segment reduction: mean divides by the segment length.
        let grad_aggr_scaled = match self.aggregator {
            Aggregator::Sum => grad_aggr,
            Aggregator::Mean => {
                let counts = ctx.segment_counts();
                let mut scaled = grad_aggr;
                for (j, &c) in counts.iter().enumerate() {
                    if c > 1 {
                        let inv = 1.0 / c as f32;
                        for x in scaled.row_mut(j) {
                            *x *= inv;
                        }
                    }
                }
                scaled
            }
        };
        let grad_nbr_rows = segment_expand(&grad_aggr_scaled, &ctx.nbr_offsets, ctx.num_edges())
            .expect("segment expand shapes");

        let mut grad_input = index_add(
            ctx.num_input_rows,
            self.in_dim,
            &ctx.repr_map,
            &grad_nbr_rows,
        )
        .expect("index_add shapes");
        add_into_rows(&mut grad_input, ctx.self_offset, &grad_self);
        grad_input
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w_self, &self.w_nbr, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_self, &mut self.w_nbr, &mut self.bias]
    }

    fn input_dim(&self) -> usize {
        self.in_dim
    }

    fn output_dim(&self) -> usize {
        self.out_dim
    }

    fn name(&self) -> &'static str {
        "graphsage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A context with 4 input rows, 3 output rows, and neighbour lists:
    /// output 0 -> inputs [0, 1]; output 1 -> input [2]; output 2 -> [].
    fn toy_context() -> LayerContext {
        LayerContext {
            repr_map: vec![0, 1, 2],
            nbr_offsets: vec![0, 2, 3],
            nbr_rels: vec![0, 0, 0],
            self_offset: 1,
            num_input_rows: 4,
        }
    }

    fn toy_input() -> Tensor {
        Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[0.5, -0.5]])
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GraphSageLayer::new(2, 3, Aggregator::Mean, true, &mut rng);
        let ctx = toy_context();
        let input = toy_input();
        let (out1, _) = layer.forward(&ctx, &input);
        let (out2, _) = layer.forward(&ctx, &input);
        assert_eq!(out1.shape(), (3, 3));
        assert_eq!(out1, out2);
        assert!(out1.all_finite());
        // ReLU output is non-negative.
        assert!(out1.min() >= 0.0);
    }

    #[test]
    fn forward_with_identity_weights_matches_manual_aggregation() {
        // Use sum aggregation, no activation, identity weights, zero bias.
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = GraphSageLayer::new(2, 2, Aggregator::Sum, false, &mut rng);
        layer.w_self.value = Tensor::eye(2);
        layer.w_nbr.value = Tensor::eye(2);
        layer.bias.value = Tensor::zeros(1, 2);
        let ctx = toy_context();
        let input = toy_input();
        let (out, _) = layer.forward(&ctx, &input);
        // Output row 0 = self (input row 1) + sum of inputs 0 and 1 = [1,1]+[0,1]... wait:
        // self rows are input rows 1..4; output 0's self is input row 1 = [0,1];
        // neighbours are inputs 0 and 1 -> [1,0]+[0,1] = [1,1]; total [1,2].
        assert_eq!(out.row(0), &[1.0, 2.0]);
        // Output 1: self = input 2 = [1,1]; neighbour = input 2 = [1,1]; total [2,2].
        assert_eq!(out.row(1), &[2.0, 2.0]);
        // Output 2: self = input 3 = [0.5,-0.5]; no neighbours.
        assert_eq!(out.row(2), &[0.5, -0.5]);
    }

    /// Finite-difference gradient check of the input gradient.
    #[test]
    fn backward_input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        for aggregator in [Aggregator::Mean, Aggregator::Sum] {
            let mut layer = GraphSageLayer::new(2, 3, aggregator, true, &mut rng);
            let ctx = toy_context();
            let input = toy_input();
            // Scalar objective: sum of all outputs.
            let (out, cache) = layer.forward(&ctx, &input);
            let grad_out = Tensor::ones(out.rows(), out.cols());
            let grad_input = layer.backward(&ctx, &cache, &input, &grad_out);

            let eps = 1e-3f32;
            for r in 0..input.rows() {
                for c in 0..input.cols() {
                    let mut plus = input.clone();
                    plus.set(r, c, plus.get(r, c) + eps);
                    let mut minus = input.clone();
                    minus.set(r, c, minus.get(r, c) - eps);
                    let lp = layer.forward(&ctx, &plus).0.sum();
                    let lm = layer.forward(&ctx, &minus).0.sum();
                    let numeric = (lp - lm) / (2.0 * eps);
                    let analytic = grad_input.get(r, c);
                    assert!(
                        (numeric - analytic).abs() < 2e-2,
                        "{aggregator:?} input grad ({r},{c}): numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    /// Finite-difference gradient check of the weight gradients.
    #[test]
    fn backward_weight_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = GraphSageLayer::new(2, 2, Aggregator::Mean, false, &mut rng);
        let ctx = toy_context();
        let input = toy_input();
        let (out, cache) = layer.forward(&ctx, &input);
        let grad_out = Tensor::ones(out.rows(), out.cols());
        let _ = layer.backward(&ctx, &cache, &input, &grad_out);
        let analytic_w_self = layer.w_self.grad.clone();
        let analytic_w_nbr = layer.w_nbr.grad.clone();
        let analytic_bias = layer.bias.grad.clone();

        let eps = 1e-3f32;
        // Check a few entries of each parameter.
        for (pick, analytic) in [(0usize, &analytic_w_self), (1, &analytic_w_nbr)] {
            for r in 0..2 {
                for c in 0..2 {
                    let orig = if pick == 0 {
                        layer.w_self.value.get(r, c)
                    } else {
                        layer.w_nbr.value.get(r, c)
                    };
                    let set = |layer: &mut GraphSageLayer, v: f32| {
                        if pick == 0 {
                            layer.w_self.value.set(r, c, v);
                        } else {
                            layer.w_nbr.value.set(r, c, v);
                        }
                    };
                    set(&mut layer, orig + eps);
                    let lp = layer.forward(&ctx, &input).0.sum();
                    set(&mut layer, orig - eps);
                    let lm = layer.forward(&ctx, &input).0.sum();
                    set(&mut layer, orig);
                    let numeric = (lp - lm) / (2.0 * eps);
                    assert!(
                        (numeric - analytic.get(r, c)).abs() < 2e-2,
                        "param {pick} ({r},{c}): numeric {numeric} vs analytic {}",
                        analytic.get(r, c)
                    );
                }
            }
        }
        // Bias gradient for an all-ones upstream gradient is the number of output rows.
        assert!((analytic_bias.get(0, 0) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn trait_metadata() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = GraphSageLayer::new(8, 4, Aggregator::Mean, true, &mut rng);
        assert_eq!(layer.input_dim(), 8);
        assert_eq!(layer.output_dim(), 4);
        assert_eq!(layer.name(), "graphsage");
        assert_eq!(layer.num_parameters(), 8 * 4 * 2 + 4);
        assert_eq!(layer.params().len(), 3);
        assert_eq!(layer.aggregator(), Aggregator::Mean);
    }

    #[test]
    fn empty_neighbourhoods_do_not_break_forward_or_backward() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = GraphSageLayer::new(2, 2, Aggregator::Mean, true, &mut rng);
        // Single target, no neighbours at all.
        let ctx = LayerContext {
            repr_map: vec![],
            nbr_offsets: vec![0],
            nbr_rels: vec![],
            self_offset: 0,
            num_input_rows: 1,
        };
        let input = Tensor::from_rows(&[&[1.0, -1.0]]);
        let (out, cache) = layer.forward(&ctx, &input);
        assert_eq!(out.shape(), (1, 2));
        let grad = layer.backward(&ctx, &cache, &input, &Tensor::ones(1, 2));
        assert_eq!(grad.shape(), (1, 2));
        assert!(grad.all_finite());
    }
}
