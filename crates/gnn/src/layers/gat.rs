//! A single-head Graph Attention (GAT) layer (Veličković et al., 2018) over
//! DENSE samples.
//!
//! `h_out_i = act( z_i + Σ_j α_ij · z_j )` with `z = H · W` and attention scores
//! `α_ij = softmax_j( leakyrelu( a_src · z_j + a_dst · z_i ) )` computed per
//! neighbour segment. GAT is the "more computationally expensive" model of
//! Table 5; its per-edge attention makes the GPU compute cost scale with the
//! number of sampled edges rather than nodes.

use super::{add_into_rows, segment_softmax_backward, GnnLayer, LayerCache, LayerContext};
use crate::optimizer::Param;
use marius_tensor::segment::{
    index_add, index_select, rows_scale, segment_expand, segment_softmax, segment_sum,
};
use marius_tensor::{glorot_uniform, Tensor};
use rand::Rng;

const LEAKY_SLOPE: f32 = 0.2;

/// A single-head GAT encoder layer.
#[derive(Debug)]
pub struct GatLayer {
    weight: Param,
    attn_src: Param,
    attn_dst: Param,
    bias: Param,
    activation: bool,
    in_dim: usize,
    out_dim: usize,
}

impl GatLayer {
    /// Creates a GAT layer with Glorot-initialised projection and attention
    /// vectors.
    pub fn new<R: Rng + ?Sized>(
        in_dim: usize,
        out_dim: usize,
        activation: bool,
        rng: &mut R,
    ) -> Self {
        GatLayer {
            weight: Param::new("gat.weight", glorot_uniform(rng, in_dim, out_dim)),
            attn_src: Param::new("gat.attn_src", glorot_uniform(rng, out_dim, 1)),
            attn_dst: Param::new("gat.attn_dst", glorot_uniform(rng, out_dim, 1)),
            bias: Param::new("gat.bias", Tensor::zeros(1, out_dim)),
            activation,
            in_dim,
            out_dim,
        }
    }
}

impl GnnLayer for GatLayer {
    fn forward(&self, ctx: &LayerContext, input: &Tensor) -> (Tensor, LayerCache) {
        // Project every input row once.
        let z = input.matmul(&self.weight.value);
        // Transformed neighbour and self representations.
        let y = index_select(&z, &ctx.repr_map).expect("repr_map in range");
        let x = z
            .slice_rows(ctx.self_offset, z.rows())
            .expect("self rows in range");

        // Attention scores per sampled edge.
        let s_src = y.matmul(&self.attn_src.value); // (E, 1)
        let x_scores = x.matmul(&self.attn_dst.value); // (N_out, 1)
        let s_dst = segment_expand(&x_scores, &ctx.nbr_offsets, ctx.num_edges())
            .expect("segment expand shapes");
        let pre_att = s_src.add(&s_dst).expect("score dims");
        let att = pre_att.leaky_relu(LEAKY_SLOPE);
        let alpha = segment_softmax(&att, &ctx.nbr_offsets).expect("softmax offsets");

        // Weighted neighbourhood aggregation plus the self term.
        let weighted = rows_scale(&y, &alpha).expect("alpha shape");
        let nbr_aggr = segment_sum(&weighted, &ctx.nbr_offsets).expect("valid offsets");
        let pre = nbr_aggr
            .add(&x)
            .expect("matching dims")
            .add_row_broadcast(&self.bias.value)
            .expect("bias dims");
        let out = if self.activation {
            pre.relu()
        } else {
            pre.clone()
        };

        (out, LayerCache::new(vec![z, y, x, pre_att, alpha, pre]))
    }

    fn backward(
        &mut self,
        ctx: &LayerContext,
        cache: &LayerCache,
        input: &Tensor,
        grad_output: &Tensor,
    ) -> Tensor {
        let z = &cache.tensors[0];
        let y = &cache.tensors[1];
        let x = &cache.tensors[2];
        let pre_att = &cache.tensors[3];
        let alpha = &cache.tensors[4];
        let pre = &cache.tensors[5];

        let grad_pre = if self.activation {
            grad_output
                .mul(&pre.relu_grad_mask())
                .expect("activation mask shape")
        } else {
            grad_output.clone()
        };

        self.bias.accumulate_grad(&grad_pre.sum_rows());

        // out_pre = nbr_aggr + x  (both contribute grad_pre directly).
        let mut grad_x = grad_pre.clone();
        let grad_nbr_aggr = grad_pre;

        // nbr_aggr = segment_sum(alpha ⊙ y) — fan the gradient back per edge.
        let grad_weighted = segment_expand(&grad_nbr_aggr, &ctx.nbr_offsets, ctx.num_edges())
            .expect("segment expand shapes");
        let mut grad_y = rows_scale(&grad_weighted, alpha).expect("alpha shape");
        let grad_alpha = grad_weighted.rowwise_dot(y).expect("dot shapes");

        // Softmax and leaky-ReLU backward to the raw attention scores.
        let grad_att = segment_softmax_backward(alpha, &grad_alpha, &ctx.nbr_offsets);
        let grad_pre_att = grad_att
            .mul(&pre_att.leaky_relu_grad_mask(LEAKY_SLOPE))
            .expect("mask shape");

        // pre_att = y·a_src + x_owner·a_dst.
        self.attn_src
            .accumulate_grad(&y.transpose().matmul(&grad_pre_att));
        let grad_s_dst_per_node =
            segment_sum(&grad_pre_att, &ctx.nbr_offsets).expect("valid offsets");
        self.attn_dst
            .accumulate_grad(&x.transpose().matmul(&grad_s_dst_per_node));
        grad_y
            .add_assign(&grad_pre_att.matmul(&self.attn_src.value.transpose()))
            .expect("shape");
        grad_x
            .add_assign(&grad_s_dst_per_node.matmul(&self.attn_dst.value.transpose()))
            .expect("shape");

        // Collapse per-edge and per-output gradients back onto z.
        let mut grad_z =
            index_add(z.rows(), self.out_dim, &ctx.repr_map, &grad_y).expect("index_add shapes");
        add_into_rows(&mut grad_z, ctx.self_offset, &grad_x);

        // z = input · W.
        self.weight
            .accumulate_grad(&input.transpose().matmul(&grad_z));
        grad_z.matmul(&self.weight.value.transpose())
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.attn_src, &self.attn_dst, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.weight,
            &mut self.attn_src,
            &mut self.attn_dst,
            &mut self.bias,
        ]
    }

    fn input_dim(&self) -> usize {
        self.in_dim
    }

    fn output_dim(&self) -> usize {
        self.out_dim
    }

    fn name(&self) -> &'static str {
        "gat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_context() -> LayerContext {
        LayerContext {
            repr_map: vec![0, 1, 2, 3],
            nbr_offsets: vec![0, 2],
            nbr_rels: vec![0, 0, 0, 0],
            self_offset: 2,
            num_input_rows: 4,
        }
    }

    fn toy_input() -> Tensor {
        Tensor::from_rows(&[&[1.0, 0.2], &[0.1, 1.0], &[-0.4, 0.6], &[0.5, -0.5]])
    }

    #[test]
    fn forward_shapes_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = GatLayer::new(2, 3, true, &mut rng);
        let (out, cache) = layer.forward(&toy_context(), &toy_input());
        assert_eq!(out.shape(), (2, 3));
        assert!(out.all_finite());
        assert_eq!(cache.tensors.len(), 6);
    }

    #[test]
    fn attention_weights_sum_to_one_per_node() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = GatLayer::new(2, 3, false, &mut rng);
        let ctx = toy_context();
        let (_, cache) = layer.forward(&ctx, &toy_input());
        let alpha = &cache.tensors[4];
        let sum0 = alpha.get(0, 0) + alpha.get(1, 0);
        let sum1 = alpha.get(2, 0) + alpha.get(3, 0);
        assert!((sum0 - 1.0).abs() < 1e-5);
        assert!((sum1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = GatLayer::new(2, 3, true, &mut rng);
        let ctx = toy_context();
        let input = toy_input();
        let (out, cache) = layer.forward(&ctx, &input);
        let grad_out = Tensor::ones(out.rows(), out.cols());
        let grad_input = layer.backward(&ctx, &cache, &input, &grad_out);

        let eps = 1e-3f32;
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                let mut plus = input.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = input.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let numeric = (layer.forward(&ctx, &plus).0.sum()
                    - layer.forward(&ctx, &minus).0.sum())
                    / (2.0 * eps);
                let analytic = grad_input.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 3e-2,
                    "input grad ({r},{c}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn gradient_check_attention_parameters() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = GatLayer::new(2, 2, false, &mut rng);
        let ctx = toy_context();
        let input = toy_input();
        let (out, cache) = layer.forward(&ctx, &input);
        let grad_out = Tensor::ones(out.rows(), out.cols());
        let _ = layer.backward(&ctx, &cache, &input, &grad_out);
        let analytic_src = layer.attn_src.grad.clone();
        let analytic_dst = layer.attn_dst.grad.clone();
        let analytic_w = layer.weight.grad.clone();

        let eps = 1e-3f32;
        for r in 0..2 {
            let orig = layer.attn_src.value.get(r, 0);
            layer.attn_src.value.set(r, 0, orig + eps);
            let lp = layer.forward(&ctx, &input).0.sum();
            layer.attn_src.value.set(r, 0, orig - eps);
            let lm = layer.forward(&ctx, &input).0.sum();
            layer.attn_src.value.set(r, 0, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic_src.get(r, 0)).abs() < 3e-2,
                "attn_src grad {r}: numeric {numeric} vs {}",
                analytic_src.get(r, 0)
            );

            let orig = layer.attn_dst.value.get(r, 0);
            layer.attn_dst.value.set(r, 0, orig + eps);
            let lp = layer.forward(&ctx, &input).0.sum();
            layer.attn_dst.value.set(r, 0, orig - eps);
            let lm = layer.forward(&ctx, &input).0.sum();
            layer.attn_dst.value.set(r, 0, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic_dst.get(r, 0)).abs() < 3e-2,
                "attn_dst grad {r}"
            );
        }
        for r in 0..2 {
            for c in 0..2 {
                let orig = layer.weight.value.get(r, c);
                layer.weight.value.set(r, c, orig + eps);
                let lp = layer.forward(&ctx, &input).0.sum();
                layer.weight.value.set(r, c, orig - eps);
                let lm = layer.forward(&ctx, &input).0.sum();
                layer.weight.value.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic_w.get(r, c)).abs() < 3e-2,
                    "weight grad ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn metadata_and_params() {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = GatLayer::new(4, 8, true, &mut rng);
        assert_eq!(layer.input_dim(), 4);
        assert_eq!(layer.output_dim(), 8);
        assert_eq!(layer.name(), "gat");
        assert_eq!(layer.params().len(), 4);
        assert_eq!(layer.num_parameters(), 4 * 8 + 8 + 8 + 8);
    }

    #[test]
    fn node_without_neighbours_keeps_self_representation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut layer = GatLayer::new(2, 2, false, &mut rng);
        layer.weight.value = Tensor::eye(2);
        layer.bias.value = Tensor::zeros(1, 2);
        let ctx = LayerContext {
            repr_map: vec![],
            nbr_offsets: vec![0],
            nbr_rels: vec![],
            self_offset: 0,
            num_input_rows: 1,
        };
        let input = Tensor::from_rows(&[&[0.7, -0.3]]);
        let (out, _) = layer.forward(&ctx, &input);
        assert_eq!(out.row(0), &[0.7, -0.3]);
    }
}
