//! The learnable base-representation lookup table (paper §2).
//!
//! For link prediction on knowledge graphs the "features" of every node are
//! *learned* embeddings stored in a lookup table. The table is the largest state
//! in the system — it is what the storage layer partitions across disk — and it is
//! updated *sparsely*: a mini batch touches only the nodes in its DENSE sample, so
//! only those rows receive gradient updates (step 6 of Figure 2: "base
//! representation updates are written back to CPU memory").
//!
//! Updates use Adagrad with per-row-element accumulators, matching Marius.

use marius_graph::NodeId;
use marius_tensor::{uniform_init, Tensor};
use rand::Rng;

/// A dense lookup table of per-node embeddings with sparse Adagrad updates.
#[derive(Debug, Clone)]
pub struct EmbeddingTable {
    /// Flat row-major storage, one row of `dim` values per node.
    values: Vec<f32>,
    /// Adagrad sum-of-squares state, same layout as `values`.
    adagrad_state: Vec<f32>,
    dim: usize,
    lr: f32,
    eps: f32,
}

impl EmbeddingTable {
    /// Creates a table for `num_nodes` nodes of dimension `dim`, initialised
    /// uniformly in `[-init_scale, init_scale]`.
    pub fn new<R: Rng + ?Sized>(
        num_nodes: usize,
        dim: usize,
        init_scale: f32,
        rng: &mut R,
    ) -> Self {
        let init = uniform_init(rng, num_nodes, dim, init_scale);
        EmbeddingTable {
            values: init.into_vec(),
            adagrad_state: vec![0.0; num_nodes * dim],
            dim,
            lr: 0.1,
            eps: 1e-10,
        }
    }

    /// Creates a table whose rows are provided externally (used to wrap fixed
    /// input features so the same gather path can be reused; updates then become
    /// no-ops at the caller's discretion).
    pub fn from_rows(rows: Vec<f32>, dim: usize) -> Self {
        assert!(
            dim > 0 && rows.len().is_multiple_of(dim),
            "row buffer not a multiple of dim"
        );
        let n = rows.len() / dim;
        EmbeddingTable {
            values: rows,
            adagrad_state: vec![0.0; n * dim],
            dim,
            lr: 0.1,
            eps: 1e-10,
        }
    }

    /// Sets the Adagrad learning rate used by [`EmbeddingTable::apply_sparse_update`].
    pub fn with_learning_rate(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Number of rows (nodes) in the table.
    pub fn num_nodes(&self) -> usize {
        self.values.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total bytes held by the table (values plus optimizer state), the quantity
    /// Table 1 reports for learned-embedding datasets.
    pub fn storage_bytes(&self) -> u64 {
        (self.values.len() + self.adagrad_state.len()) as u64 * 4
    }

    /// Returns the embedding row of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn row(&self, node: NodeId) -> &[f32] {
        let i = node as usize;
        &self.values[i * self.dim..(i + 1) * self.dim]
    }

    /// Mutable access to the embedding row of `node`.
    pub fn row_mut(&mut self, node: NodeId) -> &mut [f32] {
        let i = node as usize;
        &mut self.values[i * self.dim..(i + 1) * self.dim]
    }

    /// Gathers the rows for `nodes` into a `(nodes.len(), dim)` tensor — the `H0`
    /// transferred to the GPU alongside DENSE.
    pub fn gather(&self, nodes: &[NodeId]) -> Tensor {
        let mut out = Tensor::zeros(nodes.len(), self.dim);
        for (i, &n) in nodes.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(n));
        }
        out
    }

    /// Applies a sparse Adagrad update: `grads` row `i` is the gradient for
    /// `nodes[i]`. Duplicate node ids are applied sequentially (their updates
    /// compound), which matches the behaviour of applying a mini batch's write-back.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape does not match `(nodes.len(), dim)`.
    pub fn apply_sparse_update(&mut self, nodes: &[NodeId], grads: &Tensor) {
        assert_eq!(grads.rows(), nodes.len(), "gradient row count mismatch");
        assert_eq!(grads.cols(), self.dim, "gradient dim mismatch");
        for (i, &n) in nodes.iter().enumerate() {
            let idx = n as usize * self.dim;
            let grad_row = grads.row(i);
            for (d, &g) in grad_row.iter().enumerate() {
                let s = &mut self.adagrad_state[idx + d];
                *s += g * g;
                self.values[idx + d] -= self.lr * g / (s.sqrt() + self.eps);
            }
        }
    }

    /// Returns a borrowed view of the raw value buffer (used by the storage layer
    /// to persist partitions).
    pub fn raw_values(&self) -> &[f32] {
        &self.values
    }

    /// Returns a borrowed view of the raw Adagrad state buffer.
    pub fn raw_state(&self) -> &[f32] {
        &self.adagrad_state
    }

    /// Overwrites the rows `[start, start + data.len() / dim)` with `data`,
    /// together with their optimizer state. Used when the storage layer loads a
    /// partition from disk into the in-memory table.
    pub fn load_rows(&mut self, start: usize, data: &[f32], state: &[f32]) {
        assert_eq!(data.len(), state.len(), "value/state length mismatch");
        assert!(
            data.len().is_multiple_of(self.dim),
            "row data not a multiple of dim"
        );
        let begin = start * self.dim;
        self.values[begin..begin + data.len()].copy_from_slice(data);
        self.adagrad_state[begin..begin + state.len()].copy_from_slice(state);
    }

    /// Copies the rows `[start, end)` (values and state) out of the table. Used
    /// when the storage layer evicts a partition back to disk.
    pub fn dump_rows(&self, start: usize, end: usize) -> (Vec<f32>, Vec<f32>) {
        let begin = start * self.dim;
        let stop = end * self.dim;
        (
            self.values[begin..stop].to_vec(),
            self.adagrad_state[begin..stop].to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(n: usize, d: usize) -> EmbeddingTable {
        let mut rng = StdRng::seed_from_u64(1);
        EmbeddingTable::new(n, d, 0.1, &mut rng)
    }

    #[test]
    fn construction_and_shapes() {
        let t = table(10, 4);
        assert_eq!(t.num_nodes(), 10);
        assert_eq!(t.dim(), 4);
        assert_eq!(t.storage_bytes(), 10 * 4 * 4 * 2);
        assert!(t.row(3).iter().all(|x| x.abs() <= 0.1));
    }

    #[test]
    fn from_rows_wraps_fixed_features() {
        let t = EmbeddingTable::from_rows(vec![1.0, 2.0, 3.0, 4.0], 2);
        assert_eq!(t.num_nodes(), 2);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn from_rows_bad_length_panics() {
        let _ = EmbeddingTable::from_rows(vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn gather_returns_rows_in_order() {
        let mut t = table(5, 2);
        t.row_mut(3).copy_from_slice(&[7.0, 8.0]);
        let g = t.gather(&[3, 0, 3]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g.row(0), &[7.0, 8.0]);
        assert_eq!(g.row(2), &[7.0, 8.0]);
    }

    #[test]
    fn sparse_update_moves_only_touched_rows() {
        let mut t = table(6, 3);
        let before_untouched = t.row(5).to_vec();
        let before_touched = t.row(2).to_vec();
        let grads = Tensor::ones(2, 3);
        t.apply_sparse_update(&[2, 4], &grads);
        assert_eq!(t.row(5), before_untouched.as_slice());
        assert_ne!(t.row(2), before_touched.as_slice());
    }

    #[test]
    fn sparse_update_reduces_simple_objective() {
        // Minimise 0.5 * ||e||^2 for a single node: gradient is the embedding itself.
        let mut t = table(3, 4).with_learning_rate(0.5);
        for _ in 0..200 {
            let row = Tensor::from_vec(t.row(1).to_vec(), 1, 4);
            t.apply_sparse_update(&[1], &row);
        }
        let norm: f32 = t.row(1).iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm < 0.01, "norm {norm}");
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn sparse_update_shape_mismatch_panics() {
        let mut t = table(3, 4);
        t.apply_sparse_update(&[1, 2], &Tensor::zeros(1, 4));
    }

    #[test]
    fn load_and_dump_rows_roundtrip() {
        let mut t = table(8, 2);
        let (vals, state) = t.dump_rows(2, 5);
        assert_eq!(vals.len(), 6);
        let new_vals = vec![9.0; 6];
        let new_state = vec![1.0; 6];
        t.load_rows(2, &new_vals, &new_state);
        assert_eq!(t.row(3), &[9.0, 9.0]);
        let (dumped, dumped_state) = t.dump_rows(2, 5);
        assert_eq!(dumped, new_vals);
        assert_eq!(dumped_state, new_state);
        // Restore and check the original content comes back.
        t.load_rows(2, &vals, &state);
        let (restored, _) = t.dump_rows(2, 5);
        assert_eq!(restored, vals);
    }

    #[test]
    fn duplicate_nodes_in_update_compound() {
        let mut t = EmbeddingTable::from_rows(vec![1.0, 1.0], 2).with_learning_rate(0.1);
        let grads = Tensor::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        t.apply_sparse_update(&[0, 0], &grads);
        // Two sequential Adagrad steps with gradient 1: first step moves by lr/1,
        // second by lr/sqrt(2); total displacement > single step.
        assert!(t.row(0)[0] < 1.0 - 0.1);
    }
}
