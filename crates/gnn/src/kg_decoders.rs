//! Additional knowledge-graph decoders: TransE and ComplEx.
//!
//! Marius (the system MariusGNN extends) ships several score functions besides
//! DistMult; the paper's evaluation uses DistMult, but these two are part of the
//! substrate a downstream user of a Marius-style system expects, and they slot
//! into the same training path: score positives, score a shared negative pool,
//! and back-propagate into node representations and relation parameters.

use crate::optimizer::Param;
use marius_graph::RelId;
use marius_tensor::{uniform_init, Tensor};
use rand::Rng;

/// TransE: `score(s, r, o) = -|| s + r - o ||₁` (higher is better).
#[derive(Debug)]
pub struct TransE {
    relations: Param,
    dim: usize,
}

impl TransE {
    /// Creates a TransE decoder with `num_relations` translation vectors.
    pub fn new<R: Rng + ?Sized>(num_relations: usize, dim: usize, rng: &mut R) -> Self {
        TransE {
            relations: Param::new(
                "transe.relations",
                uniform_init(rng, num_relations.max(1), dim, 0.5),
            ),
            dim,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The relation parameter (for the optimizer).
    pub fn relation_param_mut(&mut self) -> &mut Param {
        &mut self.relations
    }

    fn relation_row(&self, rel: RelId) -> &[f32] {
        self.relations
            .value
            .row(rel as usize % self.relations.value.rows())
    }

    /// Scores positive triples; returns a `(B, 1)` tensor.
    pub fn score_positive(&self, src: &Tensor, rels: &[RelId], dst: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(src.rows(), 1);
        for b in 0..src.rows() {
            let r = self.relation_row(rels[b]);
            let mut dist = 0.0f32;
            for d in 0..self.dim {
                dist += (src.get(b, d) + r[d] - dst.get(b, d)).abs();
            }
            out.set(b, 0, -dist);
        }
        out
    }

    /// Scores every positive source against a shared pool of negatives; returns
    /// a `(B, N)` tensor.
    pub fn score_negatives(&self, src: &Tensor, rels: &[RelId], negatives: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(src.rows(), negatives.rows());
        for b in 0..src.rows() {
            let r = self.relation_row(rels[b]);
            for n in 0..negatives.rows() {
                let mut dist = 0.0f32;
                for d in 0..self.dim {
                    dist += (src.get(b, d) + r[d] - negatives.get(n, d)).abs();
                }
                out.set(b, n, -dist);
            }
        }
        out
    }

    /// Backward pass for positive scores; returns `(grad_src, grad_dst)` and
    /// accumulates relation gradients.
    pub fn backward_positive(
        &mut self,
        src: &Tensor,
        rels: &[RelId],
        dst: &Tensor,
        grad_scores: &Tensor,
    ) -> (Tensor, Tensor) {
        let num_rel = self.relations.value.rows();
        let mut grad_src = Tensor::zeros(src.rows(), self.dim);
        let mut grad_dst = Tensor::zeros(dst.rows(), self.dim);
        let mut grad_rel = Tensor::zeros(num_rel, self.dim);
        for b in 0..src.rows() {
            let g = grad_scores.get(b, 0);
            let rel_row = rels[b] as usize % num_rel;
            for d in 0..self.dim {
                let diff = src.get(b, d) + self.relations.value.get(rel_row, d) - dst.get(b, d);
                // d(-|x|)/dx = -sign(x).
                let s = if diff > 0.0 {
                    1.0
                } else if diff < 0.0 {
                    -1.0
                } else {
                    0.0
                };
                grad_src.set(b, d, -g * s);
                grad_dst.set(b, d, g * s);
                let cur = grad_rel.get(rel_row, d);
                grad_rel.set(rel_row, d, cur - g * s);
            }
        }
        self.relations.accumulate_grad(&grad_rel);
        (grad_src, grad_dst)
    }
}

/// ComplEx: embeddings are complex vectors stored as `[real ; imaginary]`
/// halves; `score(s, r, o) = Re(<s, r, conj(o)>)`.
#[derive(Debug)]
pub struct ComplEx {
    relations: Param,
    /// Total embedding dimension (must be even: half real, half imaginary).
    dim: usize,
}

impl ComplEx {
    /// Creates a ComplEx decoder. `dim` must be even.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is odd.
    pub fn new<R: Rng + ?Sized>(num_relations: usize, dim: usize, rng: &mut R) -> Self {
        assert!(
            dim.is_multiple_of(2),
            "ComplEx requires an even embedding dimension"
        );
        ComplEx {
            relations: Param::new(
                "complex.relations",
                uniform_init(rng, num_relations.max(1), dim, 0.5),
            ),
            dim,
        }
    }

    /// Embedding dimension (real + imaginary halves).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The relation parameter (for the optimizer).
    pub fn relation_param_mut(&mut self) -> &mut Param {
        &mut self.relations
    }

    fn relation_row(&self, rel: RelId) -> &[f32] {
        self.relations
            .value
            .row(rel as usize % self.relations.value.rows())
    }

    /// The ComplEx triple score for one row triple.
    fn triple_score(&self, s: &[f32], r: &[f32], o: &[f32]) -> f32 {
        let h = self.dim / 2;
        let mut score = 0.0f32;
        for d in 0..h {
            let (sr, si) = (s[d], s[h + d]);
            let (rr, ri) = (r[d], r[h + d]);
            let (or, oi) = (o[d], o[h + d]);
            // Re(<s, r, conj(o)>) expanded.
            score += rr * sr * or + rr * si * oi + ri * sr * oi - ri * si * or;
        }
        score
    }

    /// Scores positive triples; returns a `(B, 1)` tensor.
    pub fn score_positive(&self, src: &Tensor, rels: &[RelId], dst: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(src.rows(), 1);
        for b in 0..src.rows() {
            out.set(
                b,
                0,
                self.triple_score(src.row(b), self.relation_row(rels[b]), dst.row(b)),
            );
        }
        out
    }

    /// Scores every positive source against a shared pool of negatives; returns
    /// a `(B, N)` tensor.
    pub fn score_negatives(&self, src: &Tensor, rels: &[RelId], negatives: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(src.rows(), negatives.rows());
        for b in 0..src.rows() {
            let r = self.relation_row(rels[b]);
            for n in 0..negatives.rows() {
                out.set(b, n, self.triple_score(src.row(b), r, negatives.row(n)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn transe_perfect_translation_scores_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut t = TransE::new(1, 3, &mut rng);
        t.relation_param_mut()
            .value
            .row_mut(0)
            .copy_from_slice(&[1.0, 0.0, -1.0]);
        let src = Tensor::from_rows(&[&[0.0, 2.0, 3.0]]);
        let dst = Tensor::from_rows(&[&[1.0, 2.0, 2.0]]);
        let s = t.score_positive(&src, &[0], &dst);
        assert_eq!(s.get(0, 0), 0.0);
        // A corrupted destination scores strictly lower.
        let neg = Tensor::from_rows(&[&[5.0, 5.0, 5.0]]);
        let ns = t.score_negatives(&src, &[0], &neg);
        assert!(ns.get(0, 0) < 0.0);
    }

    #[test]
    fn transe_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = TransE::new(2, 4, &mut rng);
        let src = Tensor::from_rows(&[&[0.3, -0.2, 0.5, 0.1]]);
        let dst = Tensor::from_rows(&[&[0.1, 0.4, -0.3, 0.2]]);
        let rels = vec![1u32];
        let grad_scores = Tensor::from_rows(&[&[1.0]]);
        let (g_src, g_dst) = t.backward_positive(&src, &rels, &dst, &grad_scores);
        let eps = 1e-3f32;
        for d in 0..4 {
            let mut p = src.clone();
            p.set(0, d, p.get(0, d) + eps);
            let mut m = src.clone();
            m.set(0, d, m.get(0, d) - eps);
            let numeric = (t.score_positive(&p, &rels, &dst).get(0, 0)
                - t.score_positive(&m, &rels, &dst).get(0, 0))
                / (2.0 * eps);
            assert!((numeric - g_src.get(0, d)).abs() < 1e-2, "src {d}");

            let mut p = dst.clone();
            p.set(0, d, p.get(0, d) + eps);
            let mut m = dst.clone();
            m.set(0, d, m.get(0, d) - eps);
            let numeric = (t.score_positive(&src, &rels, &p).get(0, 0)
                - t.score_positive(&src, &rels, &m).get(0, 0))
                / (2.0 * eps);
            assert!((numeric - g_dst.get(0, d)).abs() < 1e-2, "dst {d}");
        }
    }

    #[test]
    fn complex_symmetric_relation_behaviour() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = ComplEx::new(1, 4, &mut rng);
        // A purely real relation makes the score symmetric in (s, o).
        c.relation_param_mut()
            .value
            .row_mut(0)
            .copy_from_slice(&[1.0, 1.0, 0.0, 0.0]);
        let a = Tensor::from_rows(&[&[0.3, -0.7, 0.2, 0.9]]);
        let b = Tensor::from_rows(&[&[-0.4, 0.5, 0.8, -0.1]]);
        let ab = c.score_positive(&a, &[0], &b).get(0, 0);
        let ba = c.score_positive(&b, &[0], &a).get(0, 0);
        assert!((ab - ba).abs() < 1e-5);
        // A purely imaginary relation makes it antisymmetric.
        c.relation_param_mut()
            .value
            .row_mut(0)
            .copy_from_slice(&[0.0, 0.0, 1.0, 1.0]);
        let ab = c.score_positive(&a, &[0], &b).get(0, 0);
        let ba = c.score_positive(&b, &[0], &a).get(0, 0);
        assert!((ab + ba).abs() < 1e-5);
    }

    #[test]
    fn complex_negative_scores_match_positive_path() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = ComplEx::new(3, 6, &mut rng);
        let src = Tensor::from_rows(&[&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6]]);
        let cand = Tensor::from_rows(&[&[0.6, 0.5, 0.4, 0.3, 0.2, 0.1]]);
        let via_negatives = c.score_negatives(&src, &[2], &cand).get(0, 0);
        let via_positive = c.score_positive(&src, &[2], &cand).get(0, 0);
        assert!((via_negatives - via_positive).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "even embedding dimension")]
    fn complex_rejects_odd_dimension() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = ComplEx::new(1, 5, &mut rng);
    }
}
