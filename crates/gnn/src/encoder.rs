//! The multi-layer GNN encoder driven by a DENSE sample.
//!
//! The encoder owns a stack of [`GnnLayer`]s and executes the forward pass of
//! paper §4.2: for each layer it (1) computes the layer output for every node
//! after the first `Δ` group and (2) advances the DENSE structure (Algorithm 2) so
//! the next layer sees exactly the nodes it must output. Per-layer contexts and
//! inputs are retained so the backward pass can replay the same dataflow in
//! reverse and return the gradient with respect to the base representations
//! (which the trainer then writes back into the embedding table).

use crate::layers::{GnnLayer, LayerCache, LayerContext};
use crate::optimizer::Optimizer;
use marius_sampling::Dense;
use marius_tensor::Tensor;

/// Saved activations from one encoder forward pass, needed for backward.
#[derive(Debug)]
pub struct EncoderActivations {
    contexts: Vec<LayerContext>,
    caches: Vec<LayerCache>,
    inputs: Vec<Tensor>,
    /// Final representations, one row per target node (in DENSE target order).
    pub output: Tensor,
}

/// A stack of GNN layers executed over DENSE samples.
#[derive(Debug, Default)]
pub struct Encoder {
    layers: Vec<Box<dyn GnnLayer>>,
}

impl Encoder {
    /// Creates an empty (zero-layer) encoder: the identity over base
    /// representations, which is exactly the "specialised decoder-only model"
    /// configuration compared in Table 8.
    pub fn new() -> Self {
        Encoder { layers: Vec::new() }
    }

    /// Adds a layer to the top of the stack.
    pub fn push_layer(mut self, layer: Box<dyn GnnLayer>) -> Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of scalar parameters across all layers.
    pub fn num_parameters(&self) -> usize {
        self.layers.iter().map(|l| l.num_parameters()).sum()
    }

    /// Output dimension of the final layer (or `input_dim` of an identity
    /// encoder, which callers must track themselves).
    pub fn output_dim(&self) -> Option<usize> {
        self.layers.last().map(|l| l.output_dim())
    }

    /// Runs the forward pass. `dense` must cover at least `self.num_layers()`
    /// hops; `h0` must have one row per entry of `dense.node_ids()` in order.
    ///
    /// The DENSE structure is consumed layer by layer (Algorithm 2), matching the
    /// paper's execution; pass a clone if the caller needs the original.
    ///
    /// # Panics
    ///
    /// Panics if the DENSE sample has fewer hops than the encoder has layers or
    /// if `h0` has the wrong number of rows.
    pub fn forward(&self, dense: &mut Dense, h0: Tensor) -> EncoderActivations {
        assert!(
            dense.num_layers() >= self.layers.len(),
            "DENSE sample supports {} layers but encoder has {}",
            dense.num_layers(),
            self.layers.len()
        );
        assert_eq!(
            h0.rows(),
            dense.node_ids().len(),
            "base representation rows must match DENSE node_ids"
        );
        if self.layers.is_empty() {
            // Identity encoder: the output is the base representation of the
            // target nodes, which are the final rows of h0.
            let start = dense.self_offset_for_targets();
            let output = h0
                .slice_rows(start, h0.rows())
                .expect("target rows in range");
            return EncoderActivations {
                contexts: Vec::new(),
                caches: Vec::new(),
                inputs: vec![h0],
                output,
            };
        }

        dense.build_repr_map();
        let mut contexts = Vec::with_capacity(self.layers.len());
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut h = h0;
        for (i, layer) in self.layers.iter().enumerate() {
            let ctx = LayerContext::from_dense(dense);
            let (out, cache) = layer.forward(&ctx, &h);
            contexts.push(ctx);
            caches.push(cache);
            inputs.push(h);
            h = out;
            if i + 1 < self.layers.len() {
                dense.advance_layer();
            }
        }
        EncoderActivations {
            contexts,
            caches,
            inputs,
            output: h,
        }
    }

    /// Runs the forward pass over explicit per-layer contexts instead of a DENSE
    /// structure. Used by the baseline (DGL/PyG-style) execution path, whose
    /// layer-wise re-sampling produces one context per layer directly; the
    /// contexts must be ordered from the innermost layer (largest input) to the
    /// outermost, and `h0` rows must match the first context's `num_input_rows`.
    ///
    /// # Panics
    ///
    /// Panics if the number of contexts differs from the number of layers or the
    /// input row count does not match.
    pub fn forward_contexts(&self, contexts: &[LayerContext], h0: Tensor) -> EncoderActivations {
        assert_eq!(
            contexts.len(),
            self.layers.len(),
            "one context per layer required"
        );
        if self.layers.is_empty() {
            return EncoderActivations {
                contexts: Vec::new(),
                caches: Vec::new(),
                inputs: vec![h0.clone()],
                output: h0,
            };
        }
        assert_eq!(
            h0.rows(),
            contexts[0].num_input_rows,
            "base representation rows must match the first context"
        );
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut h = h0;
        for (layer, ctx) in self.layers.iter().zip(contexts.iter()) {
            let (out, cache) = layer.forward(ctx, &h);
            caches.push(cache);
            inputs.push(h);
            h = out;
        }
        EncoderActivations {
            contexts: contexts.to_vec(),
            caches,
            inputs,
            output: h,
        }
    }

    /// Runs the backward pass for `grad_output` (one row per target node) and
    /// returns the gradient with respect to the base representations `h0`
    /// (one row per original DENSE `node_ids` entry).
    ///
    /// Parameter gradients are accumulated inside each layer; call
    /// [`Encoder::step`] to apply them.
    pub fn backward(&mut self, activations: &EncoderActivations, grad_output: &Tensor) -> Tensor {
        if self.layers.is_empty() {
            // Identity encoder: route the target gradient back to the target rows
            // of h0 and zero elsewhere.
            let h0 = &activations.inputs[0];
            let mut grad = Tensor::zeros(h0.rows(), h0.cols());
            let start = h0.rows() - grad_output.rows();
            crate::layers::add_into_rows(&mut grad, start, grad_output);
            return grad;
        }
        let mut grad = grad_output.clone();
        for i in (0..self.layers.len()).rev() {
            grad = self.layers[i].backward(
                &activations.contexts[i],
                &activations.caches[i],
                &activations.inputs[i],
                &grad,
            );
        }
        grad
    }

    /// Applies one optimizer step to every layer parameter and clears gradients.
    pub fn step(&mut self, optimizer: &Optimizer) {
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                optimizer.step(p);
            }
        }
    }

    /// Clears all accumulated parameter gradients without updating.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                p.zero_grad();
            }
        }
    }

    /// Read-only access to the layers (used by diagnostics and benches).
    pub fn layers(&self) -> &[Box<dyn GnnLayer>] {
        &self.layers
    }

    /// Mutable access to the layers (used when restoring parameters and
    /// optimizer state from a checkpoint).
    pub fn layers_mut(&mut self) -> &mut [Box<dyn GnnLayer>] {
        &mut self.layers
    }
}

/// Extension used by the identity-encoder path: the row at which target nodes
/// start within `node_ids` (they are always the last `Δ` group).
trait TargetOffset {
    fn self_offset_for_targets(&self) -> usize;
}

impl TargetOffset for Dense {
    fn self_offset_for_targets(&self) -> usize {
        self.node_ids().len() - self.target_nodes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Aggregator, GraphSageLayer};
    use marius_graph::{Edge, InMemorySubgraph};
    use marius_sampling::{MultiHopSampler, SamplingDirection};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_graph() -> InMemorySubgraph {
        let mut edges = Vec::new();
        for i in 0..30u64 {
            edges.push(Edge::new((i + 1) % 30, i));
            edges.push(Edge::new((i + 7) % 30, i));
            edges.push(Edge::new((i + 13) % 30, i));
        }
        InMemorySubgraph::from_edges(&edges)
    }

    fn sample(graph: &InMemorySubgraph, layers: usize, seed: u64) -> Dense {
        let sampler = MultiHopSampler::new(vec![5; layers], SamplingDirection::Incoming);
        let mut rng = StdRng::seed_from_u64(seed);
        sampler.sample(graph, &[0, 1, 2, 3], &mut rng)
    }

    fn two_layer_encoder(in_dim: usize, hidden: usize, out: usize, seed: u64) -> Encoder {
        let mut rng = StdRng::seed_from_u64(seed);
        Encoder::new()
            .push_layer(Box::new(GraphSageLayer::new(
                in_dim,
                hidden,
                Aggregator::Mean,
                true,
                &mut rng,
            )))
            .push_layer(Box::new(GraphSageLayer::new(
                hidden,
                out,
                Aggregator::Mean,
                false,
                &mut rng,
            )))
    }

    fn random_h0(rows: usize, dim: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        marius_tensor::uniform_init(&mut rng, rows, dim, 1.0)
    }

    #[test]
    fn forward_outputs_one_row_per_target() {
        let graph = test_graph();
        let mut dense = sample(&graph, 2, 1);
        let encoder = two_layer_encoder(4, 8, 3, 2);
        let h0 = random_h0(dense.node_ids().len(), 4, 3);
        let acts = encoder.forward(&mut dense, h0);
        assert_eq!(acts.output.shape(), (4, 3));
        assert!(acts.output.all_finite());
    }

    #[test]
    fn forward_panics_on_shallow_dense() {
        let graph = test_graph();
        let mut dense = sample(&graph, 1, 1);
        let encoder = two_layer_encoder(4, 8, 3, 2);
        let h0 = random_h0(dense.node_ids().len(), 4, 3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            encoder.forward(&mut dense, h0)
        }));
        assert!(result.is_err());
    }

    #[test]
    fn identity_encoder_returns_target_rows() {
        let graph = test_graph();
        let mut dense = sample(&graph, 0, 4);
        let encoder = Encoder::new();
        assert_eq!(encoder.num_layers(), 0);
        let h0 = random_h0(dense.node_ids().len(), 5, 5);
        let expected_last = h0.row(h0.rows() - 1).to_vec();
        let acts = encoder.forward(&mut dense, h0);
        assert_eq!(acts.output.rows(), 4);
        assert_eq!(acts.output.row(3), expected_last.as_slice());
    }

    #[test]
    fn identity_encoder_backward_routes_to_targets() {
        let graph = test_graph();
        let mut dense = sample(&graph, 0, 6);
        let mut encoder = Encoder::new();
        let rows = dense.node_ids().len();
        let h0 = random_h0(rows, 3, 7);
        let acts = encoder.forward(&mut dense, h0);
        let grad = encoder.backward(&acts, &Tensor::ones(4, 3));
        assert_eq!(grad.rows(), rows);
        // All gradient mass is on the last four rows (the targets).
        assert_eq!(grad.sum(), 12.0);
        assert_eq!(grad.row(rows - 1), &[1.0, 1.0, 1.0]);
    }

    /// End-to-end gradient check through a two-layer encoder: the gradient of the
    /// summed output with respect to the base representations must match finite
    /// differences. This exercises Algorithm 2's bookkeeping (layer advance,
    /// repr_map shifts) as well as the layer adjoints.
    #[test]
    fn end_to_end_gradient_check_through_two_layers() {
        let graph = test_graph();
        let encoder_seed = 8;
        let mut encoder = two_layer_encoder(3, 5, 2, encoder_seed);

        let dense_template = sample(&graph, 2, 9);
        let rows = dense_template.node_ids().len();
        let h0 = random_h0(rows, 3, 10);

        let mut dense = dense_template.clone();
        let acts = encoder.forward(&mut dense, h0.clone());
        let grad_out = Tensor::ones(acts.output.rows(), acts.output.cols());
        let grad_h0 = encoder.backward(&acts, &grad_out);
        assert_eq!(grad_h0.shape(), (rows, 3));

        let eps = 1e-2f32;
        // Check a subset of entries to keep the test fast.
        for r in (0..rows).step_by(3) {
            for c in 0..3 {
                let mut plus = h0.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = h0.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let mut d1 = dense_template.clone();
                let mut d2 = dense_template.clone();
                let lp = encoder.forward(&mut d1, plus).output.sum();
                let lm = encoder.forward(&mut d2, minus).output.sum();
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = grad_h0.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 0.05 * (1.0 + analytic.abs()),
                    "h0 grad ({r},{c}): numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn step_changes_parameters_and_clears_gradients() {
        let graph = test_graph();
        let mut dense = sample(&graph, 2, 11);
        let mut encoder = two_layer_encoder(3, 4, 2, 12);
        let before: Vec<f32> = encoder.layers()[0].params()[0].value.data().to_vec();
        let h0 = random_h0(dense.node_ids().len(), 3, 13);
        let acts = encoder.forward(&mut dense, h0);
        let grad_out = Tensor::ones(acts.output.rows(), acts.output.cols());
        let _ = encoder.backward(&acts, &grad_out);
        encoder.step(&Optimizer::sgd(0.1));
        let after: Vec<f32> = encoder.layers()[0].params()[0].value.data().to_vec();
        assert_ne!(before, after);
        assert_eq!(encoder.layers()[0].params()[0].grad.sum(), 0.0);
    }

    #[test]
    fn zero_grad_clears_without_updating() {
        let graph = test_graph();
        let mut dense = sample(&graph, 2, 14);
        let mut encoder = two_layer_encoder(3, 4, 2, 15);
        let before: Vec<f32> = encoder.layers()[1].params()[0].value.data().to_vec();
        let h0 = random_h0(dense.node_ids().len(), 3, 16);
        let acts = encoder.forward(&mut dense, h0);
        let grad_out = Tensor::ones(acts.output.rows(), acts.output.cols());
        let _ = encoder.backward(&acts, &grad_out);
        encoder.zero_grad();
        let after: Vec<f32> = encoder.layers()[1].params()[0].value.data().to_vec();
        assert_eq!(before, after);
        assert_eq!(encoder.layers()[1].params()[0].grad.sum(), 0.0);
    }

    #[test]
    fn num_parameters_and_output_dim() {
        let encoder = two_layer_encoder(3, 4, 2, 17);
        assert_eq!(encoder.output_dim(), Some(2));
        assert_eq!(encoder.num_parameters(), (3 * 4 * 2 + 4) + (4 * 2 * 2 + 2));
        assert_eq!(Encoder::new().output_dim(), None);
    }
}
