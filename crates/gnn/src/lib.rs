// Index-based loops are the idiom throughout these hand-written kernels
// (forward and backward walk several tensors in lockstep by row index).
#![allow(clippy::needless_range_loop)]

//! GNN models, decoders, losses and optimizers for the MariusGNN reproduction.
//!
//! The crate implements the model zoo used throughout the paper's evaluation:
//!
//! * [`layers`] — GraphSage, GCN and GAT encoder layers whose forward pass
//!   consumes the DENSE structure exactly as Algorithm 3 describes
//!   (`index_select` + `segment_sum` over contiguous neighbour lists), and whose
//!   backward passes are written by hand against the same kernels.
//! * [`encoder::Encoder`] — a stack of layers driven by a DENSE sample: it
//!   snapshots the per-layer views (Algorithm 2) so that forward and backward can
//!   replay the same dataflow.
//! * [`decoder`] — the DistMult score function used for link prediction, plus a
//!   linear classification head for node classification.
//! * [`loss`] — softmax cross-entropy for node classification and the
//!   positive-vs-negatives softmax ranking loss for link prediction.
//! * [`optimizer`] — SGD and Adagrad for dense parameters, and
//!   [`embedding::EmbeddingTable`] with sparse Adagrad updates for learnable base
//!   representations (the lookup table of paper §2).
//!
//! Everything is CPU-only but expressed with the dense kernels of
//! [`marius_tensor`], so compute scales with the same quantities (nodes sampled,
//! edges sampled, feature dimensions) that determine GPU time in the paper.

pub mod decoder;
pub mod embedding;
pub mod encoder;
pub mod kg_decoders;
pub mod layers;
pub mod loss;
pub mod optimizer;

pub use decoder::{ClassifierHead, DistMult};
pub use embedding::EmbeddingTable;
pub use encoder::Encoder;
pub use kg_decoders::{ComplEx, TransE};
pub use layers::{GatLayer, GcnLayer, GnnLayer, GraphSageLayer, LayerContext};
pub use optimizer::{Optimizer, Param};
