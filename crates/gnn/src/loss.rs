//! Loss functions and their gradients.
//!
//! * [`softmax_cross_entropy`] — multi-class classification loss for node
//!   classification (the "fully connected and softmax layer" of paper §2).
//! * [`ranking_softmax_loss`] — the positive-vs-negatives contrastive loss used
//!   for link prediction: every positive edge is the "true class" in a softmax
//!   over `[positive, negative_1, ..., negative_N]`, the objective used by
//!   Marius-style systems with shared negative pools.

use marius_tensor::Tensor;

/// Result of a classification loss computation.
#[derive(Debug, Clone)]
pub struct ClassificationLoss {
    /// Mean cross-entropy loss over the batch.
    pub loss: f64,
    /// Gradient with respect to the logits (already divided by the batch size).
    pub grad_logits: Tensor,
    /// Number of examples whose argmax prediction matched the label.
    pub correct: usize,
}

/// Softmax cross-entropy over `(B, C)` logits with integer labels.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[u32]) -> ClassificationLoss {
    assert_eq!(logits.rows(), labels.len(), "label count mismatch");
    let batch = logits.rows().max(1);
    let probs = logits.softmax_rows();
    let log_probs = logits.log_softmax_rows();
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    let mut correct = 0usize;
    let predictions = logits.argmax_rows();
    for (b, &label) in labels.iter().enumerate() {
        let label = label as usize;
        assert!(label < logits.cols(), "label {label} out of range");
        loss -= log_probs.get(b, label) as f64;
        let cur = grad.get(b, label);
        grad.set(b, label, cur - 1.0);
        if predictions[b] == label {
            correct += 1;
        }
    }
    grad.scale_assign(1.0 / batch as f32);
    ClassificationLoss {
        loss: loss / batch as f64,
        grad_logits: grad,
        correct,
    }
}

/// Result of a link-prediction ranking loss computation.
#[derive(Debug, Clone)]
pub struct RankingLoss {
    /// Mean loss over the positives.
    pub loss: f64,
    /// Gradient with respect to the positive scores, `(B, 1)`.
    pub grad_positive: Tensor,
    /// Gradient with respect to the negative score matrix, `(B, N)`.
    pub grad_negative: Tensor,
}

/// Softmax ranking loss: for each positive `b`, cross-entropy of the softmax over
/// `[pos_b, neg_b1, ..., neg_bN]` with the positive as the true class.
///
/// # Panics
///
/// Panics if the row counts of the two score tensors differ.
pub fn ranking_softmax_loss(positive: &Tensor, negative: &Tensor) -> RankingLoss {
    assert_eq!(
        positive.rows(),
        negative.rows(),
        "positive/negative batch mismatch"
    );
    let batch = positive.rows().max(1);
    let n = negative.cols();
    let mut grad_pos = Tensor::zeros(positive.rows(), 1);
    let mut grad_neg = Tensor::zeros(negative.rows(), n);
    let mut loss = 0.0f64;
    for b in 0..positive.rows() {
        // Numerically stable log-softmax over the concatenated scores.
        let p = positive.get(b, 0);
        let mut max = p;
        for j in 0..n {
            max = max.max(negative.get(b, j));
        }
        let mut denom = (p - max).exp();
        for j in 0..n {
            denom += (negative.get(b, j) - max).exp();
        }
        let log_denom = denom.ln();
        loss -= (p - max - log_denom) as f64;
        // Gradient: softmax - one-hot(positive).
        let soft_p = (p - max).exp() / denom;
        grad_pos.set(b, 0, (soft_p - 1.0) / batch as f32);
        for j in 0..n {
            let soft = (negative.get(b, j) - max).exp() / denom;
            grad_neg.set(b, j, soft / batch as f32);
        }
    }
    RankingLoss {
        loss: loss / batch as f64,
        grad_positive: grad_pos,
        grad_negative: grad_neg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let logits = Tensor::from_rows(&[&[10.0, -10.0], &[-10.0, 10.0]]);
        let out = softmax_cross_entropy(&logits, &[0, 1]);
        assert!(out.loss < 1e-3);
        assert_eq!(out.correct, 2);
    }

    #[test]
    fn cross_entropy_of_wrong_prediction_is_large() {
        let logits = Tensor::from_rows(&[&[10.0, -10.0]]);
        let out = softmax_cross_entropy(&logits, &[1]);
        assert!(out.loss > 5.0);
        assert_eq!(out.correct, 0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_rows(&[&[0.5, -0.3, 1.2], &[0.1, 0.0, -0.4]]);
        let labels = vec![2u32, 0u32];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut p = logits.clone();
                p.set(r, c, p.get(r, c) + eps);
                let mut m = logits.clone();
                m.set(r, c, m.get(r, c) - eps);
                let numeric = (softmax_cross_entropy(&p, &labels).loss
                    - softmax_cross_entropy(&m, &labels).loss) as f32
                    / (2.0 * eps);
                assert!(
                    (numeric - out.grad_logits.get(r, c)).abs() < 1e-3,
                    "grad ({r},{c})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn cross_entropy_label_count_mismatch_panics() {
        let _ = softmax_cross_entropy(&Tensor::zeros(2, 2), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn cross_entropy_label_out_of_range_panics() {
        let _ = softmax_cross_entropy(&Tensor::zeros(1, 2), &[5]);
    }

    #[test]
    fn ranking_loss_small_when_positive_dominates() {
        let pos = Tensor::from_rows(&[&[20.0]]);
        let neg = Tensor::from_rows(&[&[0.0, -1.0, 1.0]]);
        let out = ranking_softmax_loss(&pos, &neg);
        assert!(out.loss < 1e-3);
        // Gradient nearly zero everywhere.
        assert!(out.grad_positive.get(0, 0).abs() < 1e-3);
    }

    #[test]
    fn ranking_loss_large_when_negative_dominates() {
        let pos = Tensor::from_rows(&[&[-5.0]]);
        let neg = Tensor::from_rows(&[&[5.0, 5.0]]);
        let out = ranking_softmax_loss(&pos, &neg);
        assert!(out.loss > 5.0);
        // Positive gradient pushes the positive score up (negative gradient value).
        assert!(out.grad_positive.get(0, 0) < 0.0);
        assert!(out.grad_negative.get(0, 0) > 0.0);
    }

    #[test]
    fn ranking_loss_gradient_matches_finite_difference() {
        let pos = Tensor::from_rows(&[&[0.3], &[-0.7]]);
        let neg = Tensor::from_rows(&[&[0.1, 0.6, -0.2], &[0.4, 0.0, 0.9]]);
        let out = ranking_softmax_loss(&pos, &neg);
        let eps = 1e-3f32;
        for b in 0..2 {
            let mut p = pos.clone();
            p.set(b, 0, p.get(b, 0) + eps);
            let mut m = pos.clone();
            m.set(b, 0, m.get(b, 0) - eps);
            let numeric = (ranking_softmax_loss(&p, &neg).loss
                - ranking_softmax_loss(&m, &neg).loss) as f32
                / (2.0 * eps);
            assert!((numeric - out.grad_positive.get(b, 0)).abs() < 1e-3);
            for j in 0..3 {
                let mut pn = neg.clone();
                pn.set(b, j, pn.get(b, j) + eps);
                let mut mn = neg.clone();
                mn.set(b, j, mn.get(b, j) - eps);
                let numeric = (ranking_softmax_loss(&pos, &pn).loss
                    - ranking_softmax_loss(&pos, &mn).loss) as f32
                    / (2.0 * eps);
                assert!((numeric - out.grad_negative.get(b, j)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn ranking_loss_with_no_negatives_is_zero() {
        let pos = Tensor::from_rows(&[&[0.5]]);
        let neg = Tensor::zeros(1, 0);
        let out = ranking_softmax_loss(&pos, &neg);
        assert!(out.loss.abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn ranking_loss_batch_mismatch_panics() {
        let _ = ranking_softmax_loss(&Tensor::zeros(2, 1), &Tensor::zeros(3, 4));
    }
}
