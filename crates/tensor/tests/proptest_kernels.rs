//! Property-based tests for the dense kernels: algebraic identities that must
//! hold for arbitrary shapes and values.

use marius_tensor::segment::{
    index_add, index_select, segment_expand, segment_mean, segment_softmax, segment_sum,
};
use marius_tensor::Tensor;
use proptest::prelude::*;

/// Strategy: a small tensor with the given number of rows.
fn tensor_with_rows(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(data, rows, cols))
}

/// Strategy: a tensor of arbitrary small shape.
fn small_tensor() -> impl Strategy<Value = Tensor> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| tensor_with_rows(r, c))
}

/// Strategy: monotone offsets covering `len` rows, one entry per segment.
fn offsets_for(len: usize) -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0usize..=len, 1..5).prop_map(move |mut v| {
        v.sort_unstable();
        if v.is_empty() || v[0] != 0 {
            v.insert(0, 0);
        }
        v
    })
}

proptest! {
    /// (A · B) · C == A · (B · C) within floating-point tolerance.
    #[test]
    fn matmul_is_associative(
        a in tensor_with_rows(3, 4),
        b in tensor_with_rows(4, 2),
        c in tensor_with_rows(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data().iter()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    /// Transposing twice is the identity.
    #[test]
    fn double_transpose_is_identity(t in small_tensor()) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    /// Softmax rows are a probability distribution.
    #[test]
    fn softmax_rows_are_distributions(t in small_tensor()) {
        let s = t.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
        }
    }

    /// segment_sum over singleton segments is the identity.
    #[test]
    fn segment_sum_singletons_identity(t in small_tensor()) {
        let offsets: Vec<usize> = (0..t.rows()).collect();
        let out = segment_sum(&t, &offsets).unwrap();
        prop_assert_eq!(out, t);
    }

    /// The total mass is preserved by segment_sum regardless of segmentation.
    #[test]
    fn segment_sum_preserves_total(
        (t, offsets) in (2usize..8)
            .prop_flat_map(|r| (tensor_with_rows(r, 3), offsets_for(r))),
    ) {
        let out = segment_sum(&t, &offsets).unwrap();
        prop_assert!((out.sum() - t.sum()).abs() < 1e-3);
    }

    /// segment_mean output never exceeds the per-segment max magnitude bound.
    #[test]
    fn segment_mean_is_bounded_by_extremes(
        t in (2usize..8).prop_flat_map(|r| tensor_with_rows(r, 2)),
    ) {
        let offsets = vec![0, t.rows() / 2];
        let out = segment_mean(&t, &offsets).unwrap();
        prop_assert!(out.max() <= t.max() + 1e-5);
        prop_assert!(out.min() >= t.min() - 1e-5);
    }

    /// index_add is the adjoint of index_select: <select(h, idx), g> == <h, add(idx, g)>.
    #[test]
    fn gather_scatter_adjointness(
        h in tensor_with_rows(5, 3),
        idx in proptest::collection::vec(0usize..5, 1..12),
    ) {
        let sel = index_select(&h, &idx).unwrap();
        let g = Tensor::ones(idx.len(), 3);
        let lhs: f32 = sel.data().iter().sum();
        let back = index_add(5, 3, &idx, &g).unwrap();
        let rhs: f32 = h
            .data()
            .iter()
            .zip(back.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        prop_assert!((lhs - rhs).abs() < 1e-2);
    }

    /// segment_expand of a segment_sum reproduces each segment's total on every row.
    #[test]
    fn expand_after_sum_is_constant_within_segments(
        t in (3usize..9).prop_flat_map(|r| tensor_with_rows(r, 2)),
    ) {
        let offsets = vec![0, t.rows() / 3, 2 * t.rows() / 3];
        let summed = segment_sum(&t, &offsets).unwrap();
        let expanded = segment_expand(&summed, &offsets, t.rows()).unwrap();
        for s in 0..offsets.len() {
            let start = offsets[s];
            let end = if s + 1 < offsets.len() { offsets[s + 1] } else { t.rows() };
            for r in start..end {
                prop_assert_eq!(expanded.row(r), summed.row(s));
            }
        }
    }

    /// Segment softmax sums to one within every non-empty segment.
    #[test]
    fn segment_softmax_normalises(
        scores in (3usize..10).prop_flat_map(|r| tensor_with_rows(r, 1)),
    ) {
        let offsets = vec![0, scores.rows() / 2];
        let out = segment_softmax(&scores, &offsets).unwrap();
        let first: f32 = (0..scores.rows() / 2).map(|r| out.get(r, 0)).sum();
        let second: f32 = (scores.rows() / 2..scores.rows()).map(|r| out.get(r, 0)).sum();
        if scores.rows() / 2 > 0 {
            prop_assert!((first - 1.0).abs() < 1e-4);
        }
        prop_assert!((second - 1.0).abs() < 1e-4);
    }

    /// ReLU is idempotent and non-negative.
    #[test]
    fn relu_idempotent(t in small_tensor()) {
        let once = t.relu();
        prop_assert!(once.min() >= 0.0);
        prop_assert_eq!(once.relu(), once);
    }
}
