//! Elementwise and linear-algebra kernels on [`Tensor`].
//!
//! These mirror the dense GPU kernels MariusGNN relies on for GNN forward and
//! backward passes: GEMM, broadcast add, row-wise softmax, ReLU and friends. All
//! kernels are written against the row-major layout of [`Tensor`] so that the inner
//! loops are cache friendly.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix multiplication `self (m x k) * other (k x n) -> (m x n)`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree. Use [`Tensor::try_matmul`] for a
    /// fallible variant.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.try_matmul(other)
            .expect("matmul shape mismatch; use try_matmul for fallible behaviour")
    }

    /// Fallible matrix multiplication.
    pub fn try_matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.cols() != other.rows() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape(),
                rhs: other.shape(),
                op: "matmul",
            });
        }
        let (m, k) = self.shape();
        let n = other.cols();
        let mut out = Tensor::zeros(m, n);
        // Classic ikj loop order: the innermost loop walks both `other` and `out`
        // rows contiguously which is the cache-friendly order for row-major data.
        for i in 0..m {
            let a_row = self.row(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                let out_row = out.row_mut(i);
                for j in 0..n {
                    out_row[j] += a * b_row[j];
                }
            }
        }
        Ok(out)
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) multiplication.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip_with(other, "mul", |a, b| a * b)
    }

    /// Adds `other` to `self` in place.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape(),
                rhs: other.shape(),
                op: "add_assign",
            });
        }
        for (a, b) in self.data_mut().iter_mut().zip(other.data().iter()) {
            *a += *b;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, factor: f32) -> Tensor {
        let data = self.data().iter().map(|x| x * factor).collect();
        Tensor::from_vec(data, self.rows(), self.cols())
    }

    /// Multiplies every element by a scalar in place.
    pub fn scale_assign(&mut self, factor: f32) {
        for x in self.data_mut() {
            *x *= factor;
        }
    }

    /// Adds the single-row tensor `bias` to every row of `self` (broadcast add).
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Result<Tensor> {
        if bias.rows() != 1 || bias.cols() != self.cols() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape(),
                rhs: bias.shape(),
                op: "add_row_broadcast",
            });
        }
        let mut out = self.clone();
        let b = bias.row(0).to_vec();
        for r in 0..out.rows() {
            for (x, bv) in out.row_mut(r).iter_mut().zip(b.iter()) {
                *x += *bv;
            }
        }
        Ok(out)
    }

    /// Element-wise ReLU.
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Gradient mask of ReLU: 1 where the (pre-activation) input was positive.
    pub fn relu_grad_mask(&self) -> Tensor {
        self.map(|x| if x > 0.0 { 1.0 } else { 0.0 })
    }

    /// Element-wise sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(|x| x.tanh())
    }

    /// Leaky ReLU with the given negative slope (used by GAT attention scores).
    pub fn leaky_relu(&self, negative_slope: f32) -> Tensor {
        self.map(|x| if x >= 0.0 { x } else { negative_slope * x })
    }

    /// Gradient mask of leaky ReLU.
    pub fn leaky_relu_grad_mask(&self, negative_slope: f32) -> Tensor {
        self.map(|x| if x >= 0.0 { 1.0 } else { negative_slope })
    }

    /// Row-wise softmax (numerically stabilised by subtracting the row max).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                sum += *x;
            }
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
        out
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let log_sum: f32 = row.iter().map(|x| (x - max).exp()).sum::<f32>().ln();
            for x in row.iter_mut() {
                *x = *x - max - log_sum;
            }
        }
        out
    }

    /// Normalises each row to unit L2 norm; zero rows are left untouched.
    pub fn l2_normalize_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows() {
            let norm = out.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 0.0 {
                for x in out.row_mut(r) {
                    *x /= norm;
                }
            }
        }
        out
    }

    /// Clips every element into `[-bound, bound]` in place (gradient clipping).
    pub fn clip_assign(&mut self, bound: f32) {
        for x in self.data_mut() {
            *x = x.clamp(-bound, bound);
        }
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let data = self.data().iter().map(|x| f(*x)).collect();
        Tensor::from_vec(data, self.rows(), self.cols())
    }

    /// Per-row dot products of two tensors with identical shapes, returned as a
    /// `(rows, 1)` tensor. Used by the DistMult decoder.
    pub fn rowwise_dot(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape(),
                rhs: other.shape(),
                op: "rowwise_dot",
            });
        }
        let mut out = Tensor::zeros(self.rows(), 1);
        for r in 0..self.rows() {
            let dot = self
                .row(r)
                .iter()
                .zip(other.row(r).iter())
                .map(|(a, b)| a * b)
                .sum();
            out.set(r, 0, dot);
        }
        Ok(out)
    }

    /// Sums the rows of `self`, returning a single-row tensor.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols());
        for r in 0..self.rows() {
            for (o, x) in out.row_mut(0).iter_mut().zip(self.row(r).iter()) {
                *o += *x;
            }
        }
        out
    }

    /// Returns per-row sums as a `(rows, 1)` tensor.
    pub fn sum_cols(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows(), 1);
        for r in 0..self.rows() {
            out.set(r, 0, self.row(r).iter().sum());
        }
        out
    }

    fn zip_with(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape(),
                rhs: other.shape(),
                op,
            });
        }
        let data = self
            .data()
            .iter()
            .zip(other.data().iter())
            .map(|(a, b)| f(*a, *b))
            .collect();
        Ok(Tensor::from_vec(data, self.rows(), self.cols()))
    }
}

/// Number of floating point operations needed for a GEMM of the given shape.
///
/// Used by the device cost model and the benchmark harnesses to report arithmetic
/// intensity next to wall-clock time.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * m as u64 * k as u64 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert!(approx_eq(c.get(0, 0), 58.0));
        assert!(approx_eq(c.get(0, 1), 64.0));
        assert!(approx_eq(c.get(1, 0), 139.0));
        assert!(approx_eq(c.get(1, 1), 154.0));
    }

    #[test]
    fn try_matmul_shape_mismatch_errors() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        assert!(a.try_matmul(&b).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).unwrap().row(0), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).unwrap().row(0), &[2.0, 2.0]);
        assert_eq!(a.mul(&b).unwrap().row(0), &[3.0, 8.0]);
    }

    #[test]
    fn elementwise_shape_mismatch_errors() {
        let a = Tensor::zeros(1, 2);
        let b = Tensor::zeros(2, 1);
        assert!(a.add(&b).is_err());
        assert!(a.mul(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.rowwise_dot(&b).is_err());
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Tensor::ones(2, 2);
        let b = Tensor::full(2, 2, 2.0);
        a.add_assign(&b).unwrap();
        assert_eq!(a.sum(), 12.0);
        assert!(a.add_assign(&Tensor::zeros(3, 3)).is_err());
    }

    #[test]
    fn scale_and_scale_assign() {
        let a = Tensor::ones(2, 2);
        assert_eq!(a.scale(3.0).sum(), 12.0);
        let mut b = Tensor::ones(2, 2);
        b.scale_assign(0.5);
        assert_eq!(b.sum(), 2.0);
    }

    #[test]
    fn broadcast_add_bias() {
        let a = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let bias = Tensor::from_rows(&[&[10.0, 20.0]]);
        let out = a.add_row_broadcast(&bias).unwrap();
        assert_eq!(out.row(0), &[11.0, 21.0]);
        assert_eq!(out.row(1), &[12.0, 22.0]);
        assert!(a.add_row_broadcast(&Tensor::zeros(2, 2)).is_err());
    }

    #[test]
    fn relu_and_grad_mask() {
        let a = Tensor::from_rows(&[&[-1.0, 0.0, 2.0]]);
        assert_eq!(a.relu().row(0), &[0.0, 0.0, 2.0]);
        assert_eq!(a.relu_grad_mask().row(0), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_behaviour() {
        let a = Tensor::from_rows(&[&[-2.0, 3.0]]);
        let out = a.leaky_relu(0.1);
        assert!(approx_eq(out.get(0, 0), -0.2));
        assert_eq!(out.get(0, 1), 3.0);
        let mask = a.leaky_relu_grad_mask(0.1);
        assert!(approx_eq(mask.get(0, 0), 0.1));
        assert_eq!(mask.get(0, 1), 1.0);
    }

    #[test]
    fn sigmoid_and_tanh_bounds() {
        let a = Tensor::from_rows(&[&[-50.0, 0.0, 50.0]]);
        let s = a.sigmoid();
        assert!(s.get(0, 0) < 1e-6);
        assert!(approx_eq(s.get(0, 1), 0.5));
        assert!(s.get(0, 2) > 1.0 - 1e-6);
        let t = a.tanh();
        assert!(t.get(0, 0) < -0.999);
        assert!(approx_eq(t.get(0, 1), 0.0));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!(approx_eq(sum, 1.0));
        }
        // Row of equal large values must not overflow and be uniform.
        assert!(approx_eq(s.get(1, 0), 1.0 / 3.0));
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let a = Tensor::from_rows(&[&[0.5, -1.0, 2.0]]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows();
        for c in 0..3 {
            assert!(approx_eq(ls.get(0, c), s.get(0, c).ln()));
        }
    }

    #[test]
    fn l2_normalize_rows_skips_zero_rows() {
        let a = Tensor::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let n = a.l2_normalize_rows();
        assert!(approx_eq(n.row(0).iter().map(|x| x * x).sum::<f32>(), 1.0));
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn clip_assign_bounds_values() {
        let mut a = Tensor::from_rows(&[&[-10.0, 0.5, 10.0]]);
        a.clip_assign(1.0);
        assert_eq!(a.row(0), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn rowwise_dot_matches_manual() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let d = a.rowwise_dot(&b).unwrap();
        assert_eq!(d.get(0, 0), 17.0);
        assert_eq!(d.get(1, 0), 53.0);
    }

    #[test]
    fn sum_rows_and_cols() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum_rows().row(0), &[4.0, 6.0]);
        let sc = a.sum_cols();
        assert_eq!(sc.get(0, 0), 3.0);
        assert_eq!(sc.get(1, 0), 7.0);
    }

    #[test]
    fn matmul_flops_formula() {
        assert_eq!(matmul_flops(2, 3, 4), 48);
    }
}
