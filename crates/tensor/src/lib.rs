//! Dense CPU tensor kernels for the MariusGNN reproduction.
//!
//! The original MariusGNN system executes GNN forward and backward passes with dense
//! GPU kernels (cuBLAS GEMM, segment reductions, gathers). This crate provides the
//! equivalent operations on the CPU so that the rest of the reproduction can express
//! the exact same dataflow: the DENSE data structure produced by the sampler is
//! consumed by [`segment::segment_sum`] / [`segment::index_select`] style kernels
//! exactly as described in Algorithm 3 of the paper.
//!
//! The crate deliberately keeps the tensor model simple:
//!
//! * All tensors are dense, row-major, two-dimensional `f32` matrices ([`Tensor`]).
//! * There is no automatic differentiation; the GNN crate implements manual
//!   backward passes using the same kernels.
//! * A [`device::DeviceCostModel`] estimates the time an equivalent GPU would need
//!   for a given kernel so that benchmark harnesses can report "GPU compute"
//!   analogues next to the measured CPU numbers.
//!
//! # Examples
//!
//! ```
//! use marius_tensor::Tensor;
//!
//! let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.get(1, 0), 3.0);
//! ```

pub mod device;
pub mod init;
pub mod ops;
pub mod segment;
pub mod tensor;

pub use device::{DeviceCostModel, DeviceKind, TransferDirection};
pub use init::{glorot_uniform, uniform_init, zeros_init};
pub use tensor::Tensor;

/// Error type for tensor operations with incompatible shapes or invalid indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had shapes that cannot be combined by the requested operation.
    ShapeMismatch {
        /// Shape of the left-hand operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        rhs: (usize, usize),
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An index was out of bounds for the tensor it was applied to.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The bound the index had to be strictly less than.
        bound: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// An offsets array passed to a segment operation was not monotone or did not
    /// cover the input.
    InvalidOffsets {
        /// Human readable description of the violation.
        reason: String,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::IndexOutOfBounds { index, bound, op } => {
                write!(f, "index {index} out of bounds {bound} in {op}")
            }
            TensorError::InvalidOffsets { reason } => write!(f, "invalid offsets: {reason}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience result alias for fallible tensor operations.
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_informative() {
        let e = TensorError::ShapeMismatch {
            lhs: (2, 3),
            rhs: (4, 5),
            op: "matmul",
        };
        let s = format!("{e}");
        assert!(s.contains("matmul"));
        assert!(s.contains("(2, 3)"));

        let e = TensorError::IndexOutOfBounds {
            index: 7,
            bound: 5,
            op: "index_select",
        };
        assert!(format!("{e}").contains("7"));

        let e = TensorError::InvalidOffsets {
            reason: "not monotone".into(),
        };
        assert!(format!("{e}").contains("monotone"));
    }
}
