//! Simulated accelerator cost model.
//!
//! The paper's evaluation reports GPU compute time and CPU↔GPU transfer time for
//! every mini batch. This reproduction runs all kernels on the CPU, so the
//! [`DeviceCostModel`] estimates how long the equivalent dense kernel and PCIe
//! transfer would take on the paper's hardware (an NVIDIA V100 over PCIe 3.0 x16).
//! Benchmarks use these estimates to report "GPU compute" analogues alongside the
//! measured CPU wall-clock, so that the *shape* of the paper's tables (who is
//! faster, by how much, where crossovers fall) can be regenerated.

use std::time::Duration;

/// Direction of a simulated host↔device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDirection {
    /// CPU memory to accelerator memory (mini batch upload).
    HostToDevice,
    /// Accelerator memory to CPU memory (gradient / embedding update download).
    DeviceToHost,
}

/// The class of accelerator being modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// NVIDIA V100 (16 GB) as used on AWS P3 instances in the paper.
    V100,
    /// A slower accelerator useful for sensitivity experiments.
    T4,
    /// Pure CPU execution (no transfer cost, throughput equals the host).
    Cpu,
}

/// Cost model for dense kernels and host↔device transfers.
///
/// The model is intentionally simple: a kernel is charged a fixed launch latency
/// plus `flops / peak_flops`, and a transfer is charged a fixed latency plus
/// `bytes / bandwidth`. This captures the two effects that matter for the paper's
/// comparisons: (1) many small kernels are launch-bound, so reducing the number of
/// sampled nodes/edges (DENSE) shortens compute; and (2) transfer time scales with
/// the mini-batch size.
#[derive(Debug, Clone)]
pub struct DeviceCostModel {
    kind: DeviceKind,
    /// Peak throughput in FLOP/s for dense f32 kernels.
    peak_flops: f64,
    /// Achievable host↔device bandwidth in bytes/s.
    transfer_bandwidth: f64,
    /// Fixed per-kernel launch latency.
    kernel_latency: Duration,
    /// Fixed per-transfer latency.
    transfer_latency: Duration,
    /// Fraction of peak FLOPs achievable on irregular (gather/segment) kernels.
    irregular_efficiency: f64,
}

impl DeviceCostModel {
    /// Creates a cost model for the given device kind with published peak numbers
    /// derated to realistic achievable fractions.
    pub fn new(kind: DeviceKind) -> Self {
        match kind {
            DeviceKind::V100 => DeviceCostModel {
                kind,
                // 14 TFLOP/s fp32 peak derated to ~40% achievable on GEMM-heavy GNN layers.
                peak_flops: 5.6e12,
                // PCIe 3.0 x16 ≈ 12 GB/s achievable.
                transfer_bandwidth: 12.0e9,
                kernel_latency: Duration::from_micros(8),
                transfer_latency: Duration::from_micros(15),
                irregular_efficiency: 0.15,
            },
            DeviceKind::T4 => DeviceCostModel {
                kind,
                peak_flops: 2.5e12,
                transfer_bandwidth: 6.0e9,
                kernel_latency: Duration::from_micros(10),
                transfer_latency: Duration::from_micros(20),
                irregular_efficiency: 0.12,
            },
            DeviceKind::Cpu => DeviceCostModel {
                kind,
                peak_flops: 1.0e11,
                transfer_bandwidth: f64::INFINITY,
                kernel_latency: Duration::ZERO,
                transfer_latency: Duration::ZERO,
                irregular_efficiency: 0.5,
            },
        }
    }

    /// Returns the modelled device kind.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Estimated time for a dense (GEMM-like) kernel performing `flops` operations.
    pub fn dense_kernel_time(&self, flops: u64) -> Duration {
        self.kernel_latency + Duration::from_secs_f64(flops as f64 / self.peak_flops)
    }

    /// Estimated time for an irregular kernel (gather, scatter, segment reduce)
    /// touching `elements` f32 values.
    pub fn irregular_kernel_time(&self, elements: u64) -> Duration {
        // Irregular kernels are memory-bound; charge 2 flops per element at the
        // derated efficiency.
        let effective = self.peak_flops * self.irregular_efficiency;
        self.kernel_latency + Duration::from_secs_f64(2.0 * elements as f64 / effective)
    }

    /// Estimated time to move `bytes` across the host↔device link.
    pub fn transfer_time(&self, bytes: u64, _direction: TransferDirection) -> Duration {
        if self.transfer_bandwidth.is_infinite() {
            return Duration::ZERO;
        }
        self.transfer_latency + Duration::from_secs_f64(bytes as f64 / self.transfer_bandwidth)
    }

    /// Estimated time for a full GNN layer over a mini batch described by the
    /// number of nodes, sampled edges and feature dimensions.
    ///
    /// The layer is modelled as: one gather over `edges` neighbour rows, one
    /// segment reduction over the same rows, and one `(nodes, in_dim) x (in_dim,
    /// out_dim)` GEMM.
    pub fn gnn_layer_time(
        &self,
        nodes: usize,
        edges: usize,
        in_dim: usize,
        out_dim: usize,
    ) -> Duration {
        let gather = self.irregular_kernel_time((edges * in_dim) as u64);
        let reduce = self.irregular_kernel_time((edges * in_dim) as u64);
        let gemm = self.dense_kernel_time(crate::ops::matmul_flops(nodes, in_dim, out_dim));
        gather + reduce + gemm
    }
}

impl Default for DeviceCostModel {
    fn default() -> Self {
        DeviceCostModel::new(DeviceKind::V100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_kernel_time_scales_with_flops() {
        let m = DeviceCostModel::new(DeviceKind::V100);
        let small = m.dense_kernel_time(1_000);
        let large = m.dense_kernel_time(1_000_000_000_000);
        assert!(large > small);
        // A tera-flop on a ~5.6 TFLOP/s device takes on the order of 0.2 s.
        assert!(large > Duration::from_millis(100));
        assert!(large < Duration::from_secs(1));
    }

    #[test]
    fn small_kernels_are_launch_bound() {
        let m = DeviceCostModel::new(DeviceKind::V100);
        let tiny = m.dense_kernel_time(10);
        assert!(tiny >= Duration::from_micros(8));
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = DeviceCostModel::new(DeviceKind::V100);
        let a = m.transfer_time(1 << 20, TransferDirection::HostToDevice);
        let b = m.transfer_time(1 << 30, TransferDirection::HostToDevice);
        assert!(b > a * 100);
    }

    #[test]
    fn cpu_device_has_no_transfer_cost() {
        let m = DeviceCostModel::new(DeviceKind::Cpu);
        assert_eq!(
            m.transfer_time(1 << 30, TransferDirection::DeviceToHost),
            Duration::ZERO
        );
    }

    #[test]
    fn v100_faster_than_t4() {
        let v = DeviceCostModel::new(DeviceKind::V100);
        let t = DeviceCostModel::new(DeviceKind::T4);
        let flops = 10_000_000_000u64;
        assert!(v.dense_kernel_time(flops) < t.dense_kernel_time(flops));
    }

    #[test]
    fn gnn_layer_time_monotone_in_edges() {
        let m = DeviceCostModel::new(DeviceKind::V100);
        let small = m.gnn_layer_time(1_000, 10_000, 128, 128);
        let large = m.gnn_layer_time(1_000, 1_000_000, 128, 128);
        assert!(large > small);
    }

    #[test]
    fn default_is_v100() {
        assert_eq!(DeviceCostModel::default().kind(), DeviceKind::V100);
    }
}
