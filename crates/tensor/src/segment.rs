//! Segment reductions and gather kernels (Algorithm 3 of the paper).
//!
//! The DENSE data structure stores the one-hop neighbours of every node
//! *contiguously*, separated by an offsets array. That layout turns neighbourhood
//! aggregation into a *dense segment reduction*: select the neighbour
//! representations with [`index_select`], then reduce each contiguous segment with
//! [`segment_sum`] / [`segment_mean`] / [`segment_max`]. These are exactly the
//! kernels MariusGNN runs on the GPU; here they run on the CPU over the same data
//! layout.

use crate::{Result, Tensor, TensorError};

/// Gathers rows of `input` according to `indices`, producing one output row per
/// index (PyTorch's `index_select` over dimension 0).
///
/// # Examples
///
/// ```
/// use marius_tensor::Tensor;
/// use marius_tensor::segment::index_select;
///
/// let h = Tensor::from_rows(&[&[0.0], &[1.0], &[2.0]]);
/// let out = index_select(&h, &[2, 0, 2]).unwrap();
/// assert_eq!(out.get(0, 0), 2.0);
/// assert_eq!(out.get(2, 0), 2.0);
/// ```
pub fn index_select(input: &Tensor, indices: &[usize]) -> Result<Tensor> {
    let mut out = Tensor::zeros(indices.len(), input.cols());
    for (i, &idx) in indices.iter().enumerate() {
        if idx >= input.rows() {
            return Err(TensorError::IndexOutOfBounds {
                index: idx,
                bound: input.rows(),
                op: "index_select",
            });
        }
        out.row_mut(i).copy_from_slice(input.row(idx));
    }
    Ok(out)
}

/// Scatter-adds rows of `grad` back into an accumulator of `num_rows` rows: the
/// adjoint of [`index_select`]. Repeated indices accumulate.
pub fn index_add(num_rows: usize, cols: usize, indices: &[usize], grad: &Tensor) -> Result<Tensor> {
    if grad.rows() != indices.len() || grad.cols() != cols {
        return Err(TensorError::ShapeMismatch {
            lhs: (indices.len(), cols),
            rhs: grad.shape(),
            op: "index_add",
        });
    }
    let mut out = Tensor::zeros(num_rows, cols);
    for (i, &idx) in indices.iter().enumerate() {
        if idx >= num_rows {
            return Err(TensorError::IndexOutOfBounds {
                index: idx,
                bound: num_rows,
                op: "index_add",
            });
        }
        for (o, g) in out.row_mut(idx).iter_mut().zip(grad.row(i).iter()) {
            *o += *g;
        }
    }
    Ok(out)
}

/// Validates a segment offsets array against an input with `len` rows.
///
/// `offsets[i]` is the starting row of segment `i`; segment `i` covers rows
/// `[offsets[i], offsets[i+1])` with the final segment ending at `len`. Offsets
/// must therefore be monotone non-decreasing and bounded by `len`.
fn validate_offsets(offsets: &[usize], len: usize) -> Result<()> {
    let mut prev = 0usize;
    for (i, &o) in offsets.iter().enumerate() {
        if o < prev {
            return Err(TensorError::InvalidOffsets {
                reason: format!("offsets[{i}] = {o} is smaller than previous offset {prev}"),
            });
        }
        if o > len {
            return Err(TensorError::InvalidOffsets {
                reason: format!("offsets[{i}] = {o} exceeds input length {len}"),
            });
        }
        prev = o;
    }
    Ok(())
}

/// Dense segment sum: reduces contiguous row segments of `input` by addition.
///
/// Produces one output row per segment. Empty segments produce a zero row. This is
/// the aggregation kernel from Algorithm 3 in the paper.
pub fn segment_sum(input: &Tensor, offsets: &[usize]) -> Result<Tensor> {
    validate_offsets(offsets, input.rows())?;
    let num_segments = offsets.len();
    let mut out = Tensor::zeros(num_segments, input.cols());
    for s in 0..num_segments {
        let start = offsets[s];
        let end = if s + 1 < num_segments {
            offsets[s + 1]
        } else {
            input.rows()
        };
        for r in start..end {
            for (o, x) in out.row_mut(s).iter_mut().zip(input.row(r).iter()) {
                *o += *x;
            }
        }
    }
    Ok(out)
}

/// Dense segment mean: like [`segment_sum`] but divides by the segment length.
/// Empty segments produce a zero row.
pub fn segment_mean(input: &Tensor, offsets: &[usize]) -> Result<Tensor> {
    let mut out = segment_sum(input, offsets)?;
    let num_segments = offsets.len();
    for s in 0..num_segments {
        let start = offsets[s];
        let end = if s + 1 < num_segments {
            offsets[s + 1]
        } else {
            input.rows()
        };
        let len = end.saturating_sub(start);
        if len > 1 {
            let inv = 1.0 / len as f32;
            for o in out.row_mut(s) {
                *o *= inv;
            }
        }
    }
    Ok(out)
}

/// Dense segment max: element-wise maximum across each segment. Empty segments
/// produce a zero row (rather than `-inf`) so downstream layers stay finite.
pub fn segment_max(input: &Tensor, offsets: &[usize]) -> Result<Tensor> {
    validate_offsets(offsets, input.rows())?;
    let num_segments = offsets.len();
    let mut out = Tensor::zeros(num_segments, input.cols());
    for s in 0..num_segments {
        let start = offsets[s];
        let end = if s + 1 < num_segments {
            offsets[s + 1]
        } else {
            input.rows()
        };
        if start == end {
            continue;
        }
        out.row_mut(s).copy_from_slice(input.row(start));
        for r in start + 1..end {
            for (o, x) in out.row_mut(s).iter_mut().zip(input.row(r).iter()) {
                if *x > *o {
                    *o = *x;
                }
            }
        }
    }
    Ok(out)
}

/// Expands one row per segment back to one row per input row (the adjoint of
/// [`segment_sum`]): output row `r` is `seg_values` row `s` where segment `s`
/// contains `r`. Used in backward passes of segment reductions.
pub fn segment_expand(seg_values: &Tensor, offsets: &[usize], total_rows: usize) -> Result<Tensor> {
    validate_offsets(offsets, total_rows)?;
    if seg_values.rows() != offsets.len() {
        return Err(TensorError::ShapeMismatch {
            lhs: (offsets.len(), seg_values.cols()),
            rhs: seg_values.shape(),
            op: "segment_expand",
        });
    }
    let mut out = Tensor::zeros(total_rows, seg_values.cols());
    for s in 0..offsets.len() {
        let start = offsets[s];
        let end = if s + 1 < offsets.len() {
            offsets[s + 1]
        } else {
            total_rows
        };
        for r in start..end {
            out.row_mut(r).copy_from_slice(seg_values.row(s));
        }
    }
    Ok(out)
}

/// Segment softmax: applies a numerically-stable softmax within each contiguous
/// segment of the single-column tensor `scores`. Used for GAT attention weights.
pub fn segment_softmax(scores: &Tensor, offsets: &[usize]) -> Result<Tensor> {
    if scores.cols() != 1 {
        return Err(TensorError::ShapeMismatch {
            lhs: scores.shape(),
            rhs: (scores.rows(), 1),
            op: "segment_softmax",
        });
    }
    validate_offsets(offsets, scores.rows())?;
    let mut out = scores.clone();
    for s in 0..offsets.len() {
        let start = offsets[s];
        let end = if s + 1 < offsets.len() {
            offsets[s + 1]
        } else {
            scores.rows()
        };
        if start == end {
            continue;
        }
        let mut max = f32::NEG_INFINITY;
        for r in start..end {
            max = max.max(out.get(r, 0));
        }
        let mut sum = 0.0;
        for r in start..end {
            let e = (out.get(r, 0) - max).exp();
            out.set(r, 0, e);
            sum += e;
        }
        if sum > 0.0 {
            for r in start..end {
                let v = out.get(r, 0) / sum;
                out.set(r, 0, v);
            }
        }
    }
    Ok(out)
}

/// Multiplies every row of `input` by the corresponding scalar in the
/// single-column tensor `weights` (used to weight neighbour representations by
/// attention scores before a segment sum).
pub fn rows_scale(input: &Tensor, weights: &Tensor) -> Result<Tensor> {
    if weights.cols() != 1 || weights.rows() != input.rows() {
        return Err(TensorError::ShapeMismatch {
            lhs: input.shape(),
            rhs: weights.shape(),
            op: "rows_scale",
        });
    }
    let mut out = input.clone();
    for r in 0..out.rows() {
        let w = weights.get(r, 0);
        for x in out.row_mut(r) {
            *x *= w;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_select_gathers_rows() {
        let h = Tensor::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let out = index_select(&h, &[2, 1, 1, 0]).unwrap();
        assert_eq!(out.shape(), (4, 2));
        assert_eq!(out.row(0), &[3.0, 3.0]);
        assert_eq!(out.row(2), &[2.0, 2.0]);
    }

    #[test]
    fn index_select_out_of_bounds_errors() {
        let h = Tensor::zeros(2, 2);
        assert!(index_select(&h, &[2]).is_err());
    }

    #[test]
    fn index_add_accumulates_repeated_indices() {
        let grad = Tensor::from_rows(&[&[1.0], &[2.0], &[4.0]]);
        let out = index_add(3, 1, &[0, 2, 0], &grad).unwrap();
        assert_eq!(out.get(0, 0), 5.0);
        assert_eq!(out.get(1, 0), 0.0);
        assert_eq!(out.get(2, 0), 2.0);
    }

    #[test]
    fn index_add_is_adjoint_of_index_select() {
        // <select(h, idx), g> == <h, add(idx, g)> for any h, g.
        let h = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let idx = vec![1, 1, 2, 0];
        let g = Tensor::from_rows(&[&[0.1, 0.2], &[0.3, 0.4], &[0.5, 0.6], &[0.7, 0.8]]);
        let sel = index_select(&h, &idx).unwrap();
        let lhs: f32 = sel
            .data()
            .iter()
            .zip(g.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        let back = index_add(3, 2, &idx, &g).unwrap();
        let rhs: f32 = h
            .data()
            .iter()
            .zip(back.data().iter())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn index_add_shape_errors() {
        let grad = Tensor::zeros(2, 2);
        assert!(index_add(3, 2, &[0], &grad).is_err());
        assert!(index_add(1, 2, &[5, 5], &grad).is_err());
    }

    #[test]
    fn segment_sum_basic() {
        // Segments: [0,2), [2,3), [3,3) (empty), [3,5).
        let x = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0], &[5.0]]);
        let out = segment_sum(&x, &[0, 2, 3, 3]).unwrap();
        assert_eq!(out.shape(), (4, 1));
        assert_eq!(out.get(0, 0), 3.0);
        assert_eq!(out.get(1, 0), 3.0);
        assert_eq!(out.get(2, 0), 0.0);
        assert_eq!(out.get(3, 0), 9.0);
    }

    #[test]
    fn segment_sum_invalid_offsets_error() {
        let x = Tensor::zeros(3, 1);
        assert!(segment_sum(&x, &[0, 2, 1]).is_err());
        assert!(segment_sum(&x, &[0, 4]).is_err());
    }

    #[test]
    fn segment_mean_divides_by_length() {
        let x = Tensor::from_rows(&[&[2.0], &[4.0], &[9.0]]);
        let out = segment_mean(&x, &[0, 2]).unwrap();
        assert_eq!(out.get(0, 0), 3.0);
        assert_eq!(out.get(1, 0), 9.0);
    }

    #[test]
    fn segment_mean_empty_segment_is_zero() {
        let x = Tensor::from_rows(&[&[2.0]]);
        let out = segment_mean(&x, &[0, 1]).unwrap();
        assert_eq!(out.get(1, 0), 0.0);
    }

    #[test]
    fn segment_max_elementwise() {
        let x = Tensor::from_rows(&[&[1.0, 5.0], &[3.0, 2.0], &[-1.0, -2.0]]);
        let out = segment_max(&x, &[0, 2]).unwrap();
        assert_eq!(out.row(0), &[3.0, 5.0]);
        assert_eq!(out.row(1), &[-1.0, -2.0]);
    }

    #[test]
    fn segment_expand_replicates_rows() {
        let seg = Tensor::from_rows(&[&[1.0], &[2.0]]);
        let out = segment_expand(&seg, &[0, 3], 5).unwrap();
        assert_eq!(out.get(0, 0), 1.0);
        assert_eq!(out.get(2, 0), 1.0);
        assert_eq!(out.get(3, 0), 2.0);
        assert_eq!(out.get(4, 0), 2.0);
    }

    #[test]
    fn segment_expand_shape_mismatch_errors() {
        let seg = Tensor::zeros(3, 1);
        assert!(segment_expand(&seg, &[0, 1], 4).is_err());
    }

    #[test]
    fn segment_softmax_sums_to_one_per_segment() {
        let s = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0], &[100.0], &[100.0]]);
        let out = segment_softmax(&s, &[0, 3]).unwrap();
        let sum0: f32 = (0..3).map(|r| out.get(r, 0)).sum();
        let sum1: f32 = (3..5).map(|r| out.get(r, 0)).sum();
        assert!((sum0 - 1.0).abs() < 1e-5);
        assert!((sum1 - 1.0).abs() < 1e-5);
        assert!((out.get(3, 0) - 0.5).abs() < 1e-5);
    }

    #[test]
    fn segment_softmax_requires_column_vector() {
        let s = Tensor::zeros(3, 2);
        assert!(segment_softmax(&s, &[0]).is_err());
    }

    #[test]
    fn rows_scale_multiplies_each_row() {
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let w = Tensor::from_rows(&[&[2.0], &[0.5]]);
        let out = rows_scale(&x, &w).unwrap();
        assert_eq!(out.row(0), &[2.0, 4.0]);
        assert_eq!(out.row(1), &[1.5, 2.0]);
        assert!(rows_scale(&x, &Tensor::zeros(3, 1)).is_err());
    }

    #[test]
    fn segment_sum_then_expand_roundtrip_on_singleton_segments() {
        // When every segment has exactly one element, sum followed by expand is identity.
        let x = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let offsets = vec![0, 1, 2];
        let summed = segment_sum(&x, &offsets).unwrap();
        let expanded = segment_expand(&summed, &offsets, 3).unwrap();
        assert_eq!(expanded, x);
    }
}
