//! The core dense, row-major, two-dimensional `f32` tensor type.

use crate::{Result, TensorError};

/// A dense, row-major matrix of `f32` values.
///
/// This is the single tensor type used throughout the reproduction. Node
/// representations are stored as one row per node; GNN layer weights are stored as
/// `(in_dim, out_dim)` matrices; vectors are represented as single-row or
/// single-column matrices.
///
/// # Examples
///
/// ```
/// use marius_tensor::Tensor;
///
/// let t = Tensor::zeros(3, 4);
/// assert_eq!(t.shape(), (3, 4));
/// assert_eq!(t.get(2, 3), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor {
            data: vec![1.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Tensor {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t.set(i, i, 1.0);
        }
        t
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Tensor { data, rows, cols }
    }

    /// Creates a tensor from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Tensor::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows passed to from_rows");
            data.extend_from_slice(r);
        }
        Tensor {
            data,
            rows: rows.len(),
            cols,
        }
    }

    /// Returns the shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Returns a view of one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns a mutable view of one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert!(row < self.rows, "row index out of bounds");
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying row-major buffer mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a new tensor containing rows `[start, end)`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Tensor> {
        if start > end || end > self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: end,
                bound: self.rows,
                op: "slice_rows",
            });
        }
        Ok(Tensor {
            data: self.data[start * self.cols..end * self.cols].to_vec(),
            rows: end - start,
            cols: self.cols,
        })
    }

    /// Appends the rows of `other` below `self`, returning the stacked tensor.
    pub fn vstack(&self, other: &Tensor) -> Result<Tensor> {
        if self.rows > 0 && other.rows > 0 && self.cols != other.cols {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape(),
                rhs: other.shape(),
                op: "vstack",
            });
        }
        let cols = if self.rows == 0 {
            other.cols
        } else {
            self.cols
        };
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Tensor {
            data,
            rows: self.rows + other.rows,
            cols,
        })
    }

    /// Concatenates `self` and `other` column-wise (same number of rows required).
    pub fn hstack(&self, other: &Tensor) -> Result<Tensor> {
        if self.rows != other.rows {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape(),
                rhs: other.shape(),
                op: "hstack",
            });
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Tensor {
            data,
            rows: self.rows,
            cols,
        })
    }

    /// Returns the transpose of the tensor.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Returns a copy of the tensor reshaped to `(rows, cols)`.
    pub fn reshape(&self, rows: usize, cols: usize) -> Result<Tensor> {
        if rows * cols != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape(),
                rhs: (rows, cols),
                op: "reshape",
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            rows,
            cols,
        })
    }

    /// Returns the sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Returns the mean of all elements, or 0.0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Returns the maximum element, or negative infinity for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Returns the minimum element, or positive infinity for an empty tensor.
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Returns the Frobenius norm (square root of the sum of squares).
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Returns the per-row L2 norms as a `(rows, 1)` tensor.
    pub fn row_norms(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, 1);
        for r in 0..self.rows {
            let norm = self.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            out.set(r, 0, norm);
        }
        out
    }

    /// Returns `true` if every element is finite (no NaN or infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Returns the index of the maximum value in each row.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Tensor({}x{}) [", self.rows, self.cols)?;
        let max_rows = 6;
        for r in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4}", self.get(r, c))?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert_eq!(z.sum(), 0.0);

        let o = Tensor::ones(2, 3);
        assert_eq!(o.sum(), 6.0);

        let f = Tensor::full(2, 2, 2.5);
        assert_eq!(f.sum(), 10.0);
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let e = Tensor::eye(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(e.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(3, 3);
        t.set(1, 2, 7.0);
        assert_eq!(t.get(1, 2), 7.0);
        assert_eq!(t.get(2, 1), 0.0);
    }

    #[test]
    fn from_rows_and_row_access() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn from_rows_empty_is_empty_tensor() {
        let t = Tensor::from_rows(&[]);
        assert!(t.is_empty());
        assert_eq!(t.shape(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Tensor::from_rows(&[&[1.0, 2.0], &[1.0]]);
    }

    #[test]
    fn slice_rows_returns_expected_rows() {
        let t = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]);
        let s = t.slice_rows(1, 3).unwrap();
        assert_eq!(s.shape(), (2, 1));
        assert_eq!(s.get(0, 0), 2.0);
        assert_eq!(s.get(1, 0), 3.0);
    }

    #[test]
    fn slice_rows_out_of_bounds_errors() {
        let t = Tensor::zeros(2, 2);
        assert!(t.slice_rows(0, 3).is_err());
        assert!(t.slice_rows(2, 1).is_err());
    }

    #[test]
    fn vstack_stacks_rows() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.vstack(&b).unwrap();
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn vstack_with_empty_adopts_other_cols() {
        let empty = Tensor::zeros(0, 0);
        let b = Tensor::from_rows(&[&[3.0, 4.0]]);
        let c = empty.vstack(&b).unwrap();
        assert_eq!(c.shape(), (1, 2));
    }

    #[test]
    fn vstack_mismatched_cols_errors() {
        let a = Tensor::zeros(1, 2);
        let b = Tensor::zeros(1, 3);
        assert!(a.vstack(&b).is_err());
    }

    #[test]
    fn hstack_concatenates_columns() {
        let a = Tensor::from_rows(&[&[1.0], &[2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.hstack(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
    }

    #[test]
    fn transpose_swaps_shape_and_values() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), (3, 2));
        assert_eq!(tt.get(2, 1), 6.0);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let r = t.reshape(2, 2).unwrap();
        assert_eq!(r.get(1, 0), 3.0);
        assert!(t.reshape(3, 3).is_err());
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_rows(&[&[1.0, -2.0], &[3.0, 4.0]]);
        assert_eq!(t.sum(), 6.0);
        assert_eq!(t.mean(), 1.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -2.0);
        assert!((t.frobenius_norm() - (1.0f32 + 4.0 + 9.0 + 16.0).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn empty_mean_is_zero() {
        let t = Tensor::zeros(0, 0);
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn row_norms_per_row() {
        let t = Tensor::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let n = t.row_norms();
        assert!((n.get(0, 0) - 5.0).abs() < 1e-6);
        assert_eq!(n.get(1, 0), 0.0);
    }

    #[test]
    fn argmax_rows_returns_index_of_max() {
        let t = Tensor::from_rows(&[&[0.1, 0.9, 0.3], &[2.0, 1.0, 0.0]]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(2, 2);
        assert!(t.all_finite());
        t.set(0, 0, f32::NAN);
        assert!(!t.all_finite());
    }

    #[test]
    fn display_does_not_panic_for_large_tensors() {
        let t = Tensor::zeros(100, 100);
        let s = format!("{t}");
        assert!(s.contains("Tensor(100x100)"));
    }
}
