//! Parameter and embedding initialisation helpers.
//!
//! GNN layer weights use Glorot (Xavier) uniform initialisation, matching the
//! defaults of the systems compared in the paper; learnable base representations
//! for knowledge-graph nodes use a small uniform range as in Marius.

use crate::Tensor;
use rand::Rng;

/// Glorot / Xavier uniform initialisation for a `(fan_in, fan_out)` weight matrix.
///
/// Values are drawn from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn glorot_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
    let bound = if fan_in + fan_out == 0 {
        0.0
    } else {
        (6.0 / (fan_in + fan_out) as f32).sqrt()
    };
    uniform_init(rng, fan_in, fan_out, bound)
}

/// Uniform initialisation in `[-bound, bound]` for a `(rows, cols)` tensor.
pub fn uniform_init<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, bound: f32) -> Tensor {
    let mut t = Tensor::zeros(rows, cols);
    if bound > 0.0 {
        for x in t.data_mut() {
            *x = rng.gen_range(-bound..bound);
        }
    }
    t
}

/// Zero initialisation (used for biases).
pub fn zeros_init(rows: usize, cols: usize) -> Tensor {
    Tensor::zeros(rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_values_within_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = glorot_uniform(&mut rng, 64, 32);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(w.max() <= bound);
        assert!(w.min() >= -bound);
        assert_eq!(w.shape(), (64, 32));
    }

    #[test]
    fn glorot_zero_fan_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = glorot_uniform(&mut rng, 0, 0);
        assert!(w.is_empty());
    }

    #[test]
    fn uniform_init_respects_bound_and_seed() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a = uniform_init(&mut rng1, 10, 10, 0.5);
        let b = uniform_init(&mut rng2, 10, 10, 0.5);
        assert_eq!(a, b);
        assert!(a.max() <= 0.5 && a.min() >= -0.5);
    }

    #[test]
    fn uniform_init_zero_bound_is_zeros() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = uniform_init(&mut rng, 3, 3, 0.0);
        assert_eq!(a.sum(), 0.0);
    }

    #[test]
    fn zeros_init_shape() {
        let z = zeros_init(4, 2);
        assert_eq!(z.shape(), (4, 2));
        assert_eq!(z.sum(), 0.0);
    }

    #[test]
    fn glorot_is_not_degenerate() {
        // With a reasonable size the sample variance should be close to bound^2/3.
        let mut rng = StdRng::seed_from_u64(42);
        let w = glorot_uniform(&mut rng, 100, 100);
        let mean = w.mean();
        let var: f32 = w
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / w.len() as f32;
        let bound = (6.0f32 / 200.0).sqrt();
        let expected_var = bound * bound / 3.0;
        assert!((var - expected_var).abs() / expected_var < 0.2);
    }
}
