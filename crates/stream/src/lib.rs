//! Streaming edge ingest for the MariusGNN reproduction: seeded edge
//! streams, crash-atomic delta staging, and epoch-boundary application into
//! a live disk-training run.
//!
//! Everything else in the workspace trains over a frozen dataset; this crate
//! is the half that lets the training-edge set *grow* while a run is in
//! flight, without giving up the system's three core guarantees — bit-exact
//! determinism, crash-atomic durability, and resumability. It provides:
//!
//! * [`EdgeStream`] — a seeded, replayable source of timestamped edge
//!   batches. Batch `k` is a pure function of `(seed, k)`, so any two
//!   consumers (an uninterrupted run, a resumed run, a verification oracle)
//!   that ask for the same batch index get byte-identical edges. Streamed
//!   edges connect nodes that already exist in the base dataset: streaming
//!   grows the *edge* set, never the node set, which keeps partition
//!   assignments and embedding-table shapes — and therefore every
//!   construction-time RNG draw — invariant under growth.
//! * [`Ingestor`] — stages each batch as an on-disk **delta file** and
//!   applies it to a run's [`DiskSetup`] (in-memory edge buckets *and* the
//!   partition store's bucket files). Progress is tracked in a shared
//!   [`StreamState`] cursor that the trainer records into checkpoint
//!   manifests.
//!
//! # Ingest atomicity
//!
//! Deltas are staged through [`marius_storage::PartitionStore::place_file`],
//! i.e. the same write-to-`.tmp`-sibling-then-rename discipline
//! ([`marius_storage::atomic_write`]) the checkpoint writer uses, riding the
//! store's fault injection ([`marius_storage::IoFaultPlan`]) and transient
//! retry ([`marius_storage::RetryPolicy`]). A crash or unabsorbed fault
//! mid-stage leaves only `.tmp` litter — never a readable half-written
//! `delta-*.bin` — and the [`Ingestor`] applies a delta only from the staged
//! bytes it reads back from the completed file, so a torn delta is never
//! applied. Durability of *applied* progress is owned by the checkpoint
//! manifest: the [`StreamState`] cursor in the manifest is the single source
//! of truth, and recovery replays the stream from the base dataset rather
//! than trusting any bucket file a crash may have left stale.
//!
//! # Epoch-boundary semantics
//!
//! Application happens only at disk-epoch boundaries, at the write-back safe
//! point (`marius_pipeline::writeback_safe_point`): the epoch's partition
//! flush has drained, so bucket files and in-memory buckets agree before
//! either is grown. The trainer invokes the ingest hook after an epoch's
//! training and before its evaluation and checkpoint, and the hook draws no
//! trainer RNG — the loss trajectory up to any boundary is bit-identical to
//! a frozen-dataset run's, sequential and pipelined executors stay
//! interchangeable, and the boundary's checkpoint snapshots the grown
//! buckets together with the cursor that reproduces them.
//!
//! # Temporal split rules
//!
//! Streamed edges carry implicit timestamps — their position after the base
//! edge list. The [`marius_core::TemporalLinkPredictionTask`] trained over a
//! streamed run freezes its evaluation windows over the newest *base* edges
//! ([`marius_graph::temporal::chronological_split`]) and draws ranking
//! candidates only from nodes observed in the base training window
//! ([`marius_graph::temporal::observed_nodes`]): every streamed edge lands
//! in the training split, evaluation never moves, and the split is
//! independent of how the stream was chunked into batches.
//!
//! ```
//! use marius_stream::EdgeStream;
//!
//! let stream = EdgeStream::new(7, 100, 3, 16);
//! assert_eq!(stream.batch(4), stream.batch(4)); // pure in (seed, k)
//! assert_ne!(stream.batch(4), stream.batch(5));
//! ```

use marius_core::{DiskSetup, StreamState};
use marius_graph::Edge;
use marius_storage::{PartitionStore, Result, StorageError};
use marius_telemetry::{Telemetry, NO_LABEL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// SplitMix64 finalizer mixing the stream seed with a batch index, so each
/// batch draws from an independent, reconstructible RNG stream (the same
/// idiom as `marius_pipeline::step_seed`, duplicated here to keep this crate
/// off the pipeline's dependency cone).
fn batch_seed(seed: u64, k: u64) -> u64 {
    let mut z = seed ^ (k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, replayable source of timestamped edge batches.
///
/// Batch `k` is a pure function of `(seed, k)`: replaying a stream from any
/// cursor reproduces exactly the edges an earlier consumer saw, which is the
/// foundation of streamed-run resumability (the checkpoint manifest only
/// needs to record the cursor, not the edges). Edges are sampled uniformly
/// over the *existing* node and relation id ranges — streaming never
/// introduces nodes, see the crate docs for why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeStream {
    seed: u64,
    num_nodes: u64,
    num_relations: u32,
    batch_size: usize,
}

impl EdgeStream {
    /// Creates a stream of `batch_size`-edge batches over `num_nodes` nodes
    /// and `num_relations` relation types.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes`, `num_relations` or `batch_size` is zero.
    pub fn new(seed: u64, num_nodes: u64, num_relations: u32, batch_size: usize) -> Self {
        assert!(num_nodes > 0, "stream needs at least one node");
        assert!(num_relations > 0, "stream needs at least one relation");
        assert!(batch_size > 0, "stream batches must be non-empty");
        EdgeStream {
            seed,
            num_nodes,
            num_relations,
            batch_size,
        }
    }

    /// The stream's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The number of edges per batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The `k`-th batch of the stream — a pure function of `(seed, k)`.
    pub fn batch(&self, k: u64) -> Vec<Edge> {
        let mut rng = StdRng::seed_from_u64(batch_seed(self.seed, k));
        (0..self.batch_size)
            .map(|_| {
                let src = rng.gen_range(0..self.num_nodes);
                let rel = rng.gen_range(0..self.num_relations);
                let dst = rng.gen_range(0..self.num_nodes);
                Edge::with_rel(src, rel, dst)
            })
            .collect()
    }
}

/// Encodes edges in the store's fixed-width bucket record format
/// (`src: u64 LE, dst: u64 LE, rel: u32 LE` — [`Edge::DISK_BYTES`] per
/// record), the wire format of staged delta files.
pub fn encode_edges(edges: &[Edge]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(edges.len() * Edge::DISK_BYTES);
    for e in edges {
        buf.extend_from_slice(&e.src.to_le_bytes());
        buf.extend_from_slice(&e.dst.to_le_bytes());
        buf.extend_from_slice(&e.rel.to_le_bytes());
    }
    buf
}

/// Decodes a delta file's bytes back into edges, rejecting lengths that are
/// not a whole number of records (a torn file must fail loudly, not load a
/// prefix).
pub fn decode_edges(bytes: &[u8]) -> Result<Vec<Edge>> {
    if !bytes.len().is_multiple_of(Edge::DISK_BYTES) {
        return Err(StorageError::NotResident {
            reason: format!(
                "delta file length {} is not a multiple of the {}-byte edge record",
                bytes.len(),
                Edge::DISK_BYTES
            ),
        });
    }
    let mut edges = Vec::with_capacity(bytes.len() / Edge::DISK_BYTES);
    for rec in bytes.chunks_exact(Edge::DISK_BYTES) {
        let src = u64::from_le_bytes(rec[..8].try_into().expect("8 bytes"));
        let dst = u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"));
        let rel = u32::from_le_bytes(rec[16..20].try_into().expect("4 bytes"));
        edges.push(Edge::with_rel(src, rel, dst));
    }
    Ok(edges)
}

/// The staged on-disk name of delta `k` (zero-padded so directory listings
/// sort in stream order).
pub fn delta_file_name(k: u64) -> String {
    format!("delta-{k:06}.bin")
}

/// Stages edge batches as crash-atomic delta files and applies them to a
/// live disk-training run at epoch boundaries. See the crate docs for the
/// atomicity and determinism contract.
pub struct Ingestor {
    stream: EdgeStream,
    /// Store whose root holds the staged `delta-*.bin` files; staging rides
    /// its fault injection, retry policy and telemetry.
    staging: PartitionStore,
    /// Shared cursor: how far the stream has been applied. The trainer
    /// records it into checkpoint manifests via
    /// `Trainer::set_stream_state`.
    state: Arc<Mutex<StreamState>>,
    telemetry: Telemetry,
}

impl Ingestor {
    /// Creates an ingestor staging deltas under `staging`'s root. The store
    /// carries the fault-injection/retry/telemetry configuration for the
    /// staging writes (configure it with the usual `PartitionStore`
    /// builders before passing it in).
    pub fn new(stream: EdgeStream, staging: PartitionStore) -> Self {
        let state = StreamState {
            seed: stream.seed(),
            batch_size: stream.batch_size(),
            batches_applied: 0,
            edges_ingested: 0,
        };
        Ingestor {
            stream,
            staging,
            state: Arc::new(Mutex::new(state)),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry recorder: ingest progress lands in `ingest.*`
    /// counters and `ingest.stage`/`ingest.apply` trace spans.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// Fast-forwards the cursor to a checkpointed [`StreamState`] (resuming
    /// a streamed run): subsequent [`Ingestor::ingest`] calls continue from
    /// `cursor.batches_applied`. Fails if the cursor was recorded by a
    /// different stream (seed or batch size mismatch) — replaying a
    /// different stream would silently diverge from the checkpointed run.
    pub fn resume_at(self, cursor: StreamState) -> Result<Self> {
        if cursor.seed != self.stream.seed() || cursor.batch_size != self.stream.batch_size() {
            return Err(StorageError::checkpoint(format!(
                "stream cursor (seed {}, batch size {}) does not match this stream \
                 (seed {}, batch size {})",
                cursor.seed,
                cursor.batch_size,
                self.stream.seed(),
                self.stream.batch_size()
            )));
        }
        *self.state.lock().expect("stream state poisoned") = cursor;
        Ok(self)
    }

    /// The shared cursor handle, for `Trainer::set_stream_state`.
    pub fn state_handle(&self) -> Arc<Mutex<StreamState>> {
        Arc::clone(&self.state)
    }

    /// The current cursor value.
    pub fn cursor(&self) -> StreamState {
        *self.state.lock().expect("stream state poisoned")
    }

    /// Stages and applies the next `batches` stream batches into `setup`,
    /// returning the number of edges ingested. Must be called only at the
    /// write-back safe point (the trainer's ingest hook guarantees this).
    ///
    /// Each batch is staged as an atomic `delta-*.bin` file first and
    /// applied from the bytes read back off disk, so what lands in the
    /// buckets is exactly what recovery would replay. An error (e.g. an
    /// unabsorbed injected fault) propagates before the cursor advances:
    /// the failed delta is never applied, and at most `.tmp` litter remains.
    pub fn ingest(&self, setup: &mut DiskSetup, batches: usize) -> Result<u64> {
        let mut span = self.telemetry.scope("ingest");
        let mut total = 0u64;
        for _ in 0..batches {
            let k = self.cursor().batches_applied;
            let edges = self.stream.batch(k);
            let bytes = encode_edges(&edges);
            let name = delta_file_name(k);
            let path = self.staging.root().join(&name);
            span.begin("ingest.stage", k as i64, NO_LABEL);
            let staged = self
                .staging
                .place_file(&format!("ingest/{name}"), &path, &bytes)
                .and_then(|()| std::fs::read(&path).map_err(StorageError::from));
            span.end();
            let staged = staged?;
            self.telemetry.counter("ingest.batches_staged").incr();
            let delta = decode_edges(&staged)?;
            span.begin("ingest.apply", k as i64, NO_LABEL);
            let start = Instant::now();
            let applied = apply_delta(setup, &delta);
            let elapsed = start.elapsed();
            span.end();
            applied?;
            self.telemetry.counter("ingest.deltas_applied").incr();
            self.telemetry
                .counter("ingest.edges_appended")
                .add(delta.len() as u64);
            self.telemetry
                .counter("ingest.apply_ns")
                .add_duration(elapsed);
            let mut state = self.state.lock().expect("stream state poisoned");
            state.batches_applied += 1;
            state.edges_ingested += delta.len() as u64;
            total += delta.len() as u64;
        }
        Ok(total)
    }
}

/// Applies one decoded delta to a run's [`DiskSetup`]: appends each edge to
/// its `(partition(src), partition(dst))` bucket in memory, then rewrites
/// every touched bucket file so the store agrees (the pipelined executor's
/// prefetcher reads subgraph edges from the bucket *files*). Appending in
/// delta order keeps the per-bucket edge order identical to what a full
/// bucket rebuild from the grown, time-ordered edge list produces — the
/// invariant streamed-run resume relies on.
fn apply_delta(setup: &mut DiskSetup, edges: &[Edge]) -> Result<()> {
    let p = setup.assignment.num_partitions();
    let mut touched: BTreeSet<(u32, u32)> = BTreeSet::new();
    for e in edges {
        if e.src >= setup.assignment.num_nodes() || e.dst >= setup.assignment.num_nodes() {
            return Err(StorageError::NotResident {
                reason: format!(
                    "streamed edge ({}, {}) references a node outside the {}-node graph",
                    e.src,
                    e.dst,
                    setup.assignment.num_nodes()
                ),
            });
        }
        let (i, j) = setup.assignment.bucket_of(e);
        setup.buckets[(i * p + j) as usize].edges.push(*e);
        touched.insert((i, j));
    }
    for (i, j) in touched {
        setup
            .store
            .write_bucket(i, j, &setup.buckets[(i * p + j) as usize].edges)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn batches_are_pure_in_seed_and_index() {
        let s = EdgeStream::new(42, 1000, 4, 32);
        assert_eq!(s.batch(0), s.batch(0));
        assert_eq!(s.batch(17), EdgeStream::new(42, 1000, 4, 32).batch(17));
        assert_ne!(s.batch(0), s.batch(1));
        assert_ne!(s.batch(0), EdgeStream::new(43, 1000, 4, 32).batch(0));
    }

    #[test]
    fn batches_stay_inside_the_id_ranges() {
        let s = EdgeStream::new(7, 50, 3, 64);
        for k in 0..10 {
            for e in s.batch(k) {
                assert!(e.src < 50 && e.dst < 50 && e.rel < 3);
            }
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let edges = EdgeStream::new(1, 100, 5, 20).batch(3);
        assert_eq!(decode_edges(&encode_edges(&edges)).unwrap(), edges);
        assert_eq!(decode_edges(&[]).unwrap(), Vec::new());
    }

    #[test]
    fn decode_rejects_torn_bytes() {
        let mut bytes = encode_edges(&EdgeStream::new(1, 100, 5, 4).batch(0));
        bytes.pop();
        let err = decode_edges(&bytes).unwrap_err();
        assert!(format!("{err}").contains("multiple"));
    }

    #[test]
    fn delta_names_sort_in_stream_order() {
        assert_eq!(delta_file_name(7), "delta-000007.bin");
        assert!(delta_file_name(9) < delta_file_name(10));
    }

    #[test]
    fn resume_rejects_a_foreign_cursor() {
        let staging = PartitionStore::open_temp("ingest-resume").unwrap();
        let ing = Ingestor::new(EdgeStream::new(5, 100, 2, 8), staging);
        let err = match ing.resume_at(StreamState {
            seed: 6,
            batch_size: 8,
            batches_applied: 2,
            edges_ingested: 16,
        }) {
            Ok(_) => panic!("foreign cursor accepted"),
            Err(e) => e,
        };
        assert!(format!("{err}").contains("does not match"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Concatenating the stream's batches is independent of the cursor
        /// positions the concatenation was produced from: the stream has no
        /// hidden state besides the index.
        #[test]
        fn stream_is_stateless_across_cursors(
            seed in 0u64..1000,
            splits in proptest::collection::vec(1u64..5, 1..4),
        ) {
            let s = EdgeStream::new(seed, 200, 3, 16);
            let total: u64 = splits.iter().sum();
            let all: Vec<_> = (0..total).flat_map(|k| s.batch(k)).collect();
            let mut chunked = Vec::new();
            let mut k = 0u64;
            for n in &splits {
                for _ in 0..*n {
                    chunked.extend(s.batch(k));
                    k += 1;
                }
            }
            prop_assert!(all == chunked);
        }
    }
}
