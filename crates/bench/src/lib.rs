//! Shared helpers for the benchmark harnesses that regenerate the paper's
//! tables and figures.
//!
//! Each benchmark target under `benches/` is a standalone binary (Criterion is
//! used for the kernel micro-benchmarks; the table-level harnesses run scaled
//! experiments and print the corresponding table). The helpers here keep the
//! output format consistent and provide the baseline-system timing model shared
//! by the end-to-end comparisons.

use marius_baselines::scaling::BaselineSystem;
use marius_baselines::{LayerwiseSampler, MultiGpuScaling};
use marius_core::ModelConfig;
use marius_gnn::Encoder;
use marius_graph::{InMemorySubgraph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Prints a section header for a table/figure.
pub fn header(title: &str) {
    println!();
    println!("==========================================================");
    println!("{title}");
    println!("==========================================================");
}

/// Formats a duration in minutes with two decimals (the unit most paper tables
/// use).
pub fn minutes(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() / 60.0)
}

/// Formats a duration in milliseconds.
pub fn millis(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Formats a duration in seconds with two decimals (used by the scaled-down
/// harnesses whose epochs are sub-minute).
pub fn seconds(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Measured single-batch costs of a DGL/PyG-style baseline execution:
/// layer-wise re-sampling plus the same GNN forward pass over the larger blocks
/// it produces (backward is charged at the forward's cost).
#[derive(Debug, Clone, Copy)]
pub struct BaselineBatchCost {
    /// CPU sampling time per mini batch.
    pub sample_time: Duration,
    /// Model compute time per mini batch.
    pub compute_time: Duration,
    /// Unique base nodes gathered per mini batch.
    pub nodes_sampled: usize,
    /// Neighbour edges sampled per mini batch.
    pub edges_sampled: usize,
}

/// Measures the per-batch cost of the layer-wise baseline pipeline on a graph,
/// averaged over `rounds` batches of `batch_size` targets.
pub fn measure_baseline_batch(
    config: &ModelConfig,
    encoder: &Encoder,
    subgraph: &InMemorySubgraph,
    num_nodes: u64,
    batch_size: usize,
    rounds: usize,
    seed: u64,
) -> BaselineBatchCost {
    let sampler = LayerwiseSampler::new(config.fanouts.clone(), config.direction);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sample_time = Duration::ZERO;
    let mut compute_time = Duration::ZERO;
    let mut nodes = 0usize;
    let mut edges = 0usize;
    for round in 0..rounds {
        let start_node = (round * batch_size) as u64 % num_nodes.max(1);
        let targets: Vec<NodeId> = (0..batch_size as u64)
            .map(|i| (start_node + i) % num_nodes.max(1))
            .collect();
        let t0 = std::time::Instant::now();
        let sample = sampler.sample(subgraph, &targets, &mut rng);
        sample_time += t0.elapsed();
        nodes += sample.stats.nodes_sampled;
        edges += sample.stats.edges_sampled;
        if encoder.num_layers() == sample.contexts.len() && encoder.num_layers() > 0 {
            let h0 = marius_tensor::uniform_init(
                &mut rng,
                sample.base_nodes.len(),
                config.input_dim,
                0.1,
            );
            let t1 = std::time::Instant::now();
            let _acts = encoder.forward_contexts(&sample.contexts, h0);
            // Charge backward at roughly the forward cost.
            compute_time += t1.elapsed() * 2;
        }
    }
    let n = rounds.max(1) as u32;
    BaselineBatchCost {
        sample_time: sample_time / n,
        compute_time: compute_time / n,
        nodes_sampled: nodes / rounds.max(1),
        edges_sampled: edges / rounds.max(1),
    }
}

/// Extrapolates a baseline system's epoch time from measured per-batch costs.
pub fn baseline_epoch_time(
    cost: &BaselineBatchCost,
    batches_per_epoch: usize,
    system: BaselineSystem,
    gpus: u32,
) -> Duration {
    let single_gpu = (cost.sample_time + cost.compute_time) * batches_per_epoch.max(1) as u32;
    MultiGpuScaling::from_paper().scaled_epoch_time(system, gpus, single_gpu)
}

/// Writes the labeled experiment reports of one benchmark harness as
/// `BENCH_<name>.json` in the current working directory, so the perf
/// trajectory of every harness is machine-readable alongside its text table.
/// IO failures are reported on stderr but never abort the harness.
pub fn write_bench_json(name: &str, reports: &[(&str, &marius_core::ExperimentReport)]) {
    let mut out = format!("{{\"bench\":\"{name}\",\"reports\":[");
    for (i, (label, report)) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"label\":\"{}\",\"report\":{}}}",
            marius_core::report::json_escape(label),
            report.to_json()
        ));
    }
    out.push_str("]}");
    let path = format!("BENCH_{name}.json");
    match std::fs::write(&path, out) {
        Ok(()) => println!("\nwrote {path} ({} reports)", reports.len()),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Writes the telemetry artifacts of an instrumented harness run next to its
/// `BENCH_<name>.json`: `TRACE_<name>.json` (Chrome `trace_event` JSON,
/// loadable in `chrome://tracing` or Perfetto) and `METRICS_<name>.json` (the
/// aggregated counter/gauge/histogram snapshot). A disabled handle writes
/// nothing; IO failures are reported on stderr but never abort the harness.
pub fn write_telemetry_artifacts(name: &str, telemetry: &marius_telemetry::Telemetry) {
    if !telemetry.is_enabled() {
        return;
    }
    for (path, result) in [
        (
            format!("TRACE_{name}.json"),
            telemetry.write_chrome_trace(format!("TRACE_{name}.json")),
        ),
        (
            format!("METRICS_{name}.json"),
            telemetry.write_metrics_json(format!("METRICS_{name}.json")),
        ),
    ] {
        match result {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_core::models::build_encoder;
    use marius_graph::Edge;

    #[test]
    fn baseline_measurement_produces_nonzero_costs() {
        let mut edges = Vec::new();
        for i in 0..200u64 {
            edges.push(Edge::new((i + 1) % 200, i));
            edges.push(Edge::new((i + 7) % 200, i));
        }
        let subgraph = InMemorySubgraph::from_edges(&edges);
        let config = ModelConfig::paper_link_prediction_graphsage(8).shrunk(5, 8);
        let mut rng = StdRng::seed_from_u64(1);
        let encoder = build_encoder(&config, &mut rng);
        let cost = measure_baseline_batch(&config, &encoder, &subgraph, 200, 32, 2, 3);
        assert!(cost.edges_sampled > 0);
        assert!(cost.sample_time > Duration::ZERO);
        let epoch = baseline_epoch_time(&cost, 10, BaselineSystem::Dgl, 4);
        assert!(epoch > Duration::ZERO);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(minutes(Duration::from_secs(90)), "1.50");
        assert_eq!(millis(Duration::from_millis(5)), "5.00");
    }
}
