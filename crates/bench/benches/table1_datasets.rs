//! Table 1: storage overheads of the large-scale graphs.
//!
//! Prints the node/edge counts, feature dimension, and the edge / feature /
//! total storage (GB) for every dataset in the paper's Table 1, plus whether it
//! fits in the CPU memory of each AWS P3 instance.

use marius_baselines::AwsInstance;
use marius_bench::header;
use marius_graph::datasets::DatasetSpec;

fn main() {
    header("Table 1: dataset storage overheads");
    println!(
        "{:<16} {:>12} {:>14} {:>5} | {:>9} {:>9} {:>9} | fits on",
        "graph", "nodes", "edges", "dim", "edges GB", "feat GB", "total GB"
    );
    for spec in DatasetSpec::table1() {
        let fits: Vec<&str> = [
            AwsInstance::P3_2xLarge,
            AwsInstance::P3_8xLarge,
            AwsInstance::P3_16xLarge,
        ]
        .iter()
        .filter(|i| spec.fits_in_memory(i.cpu_memory_bytes()))
        .map(|i| i.name())
        .collect();
        println!(
            "{:<16} {:>12} {:>14} {:>5} | {:>9.1} {:>9.1} {:>9.1} | {}",
            spec.name,
            spec.num_nodes,
            spec.num_edges,
            spec.feat_dim,
            spec.edge_storage_gb(),
            spec.feature_storage_gb(),
            spec.total_storage_gb(),
            if fits.is_empty() {
                "disk only (16 TB SSD)".to_string()
            } else {
                fits.join(", ")
            }
        );
    }
    println!(
        "\nPaper reference (Table 1): Papers100M 13/57/70 GB, Mag240M-Cites 10/375/385 GB,\n\
         Freebase86M 4/69/73 GB, WikiKG90Mv2 7/73/80 GB, Hyperlink-2012 2k/1.4k/3.4k GB."
    );
}
