//! Table 8: COMET versus BETA for disk-based link prediction, across DistMult,
//! GraphSage and GAT on an FB15k-237-shaped graph, with the in-memory MRR as the
//! quality reference. A buffer holding one quarter of the partitions is used, as
//! in the paper.

use marius_bench::{header, seconds, write_bench_json};
use marius_core::{DiskConfig, LinkPredictionTask, ModelConfig, TrainConfig, Trainer};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};

fn main() {
    header("Table 8: COMET vs BETA disk-based link prediction (buffer = 1/4 of partitions)");
    let spec = DatasetSpec::fb15k_237().scaled(0.06);
    let data = ScaledDataset::generate(&spec, 88);
    println!(
        "dataset: {} nodes, {} train edges, {} relations\n",
        data.num_nodes(),
        data.train_edges.len(),
        spec.num_relations
    );

    let partitions = 16u32;
    let capacity = 4usize;
    let mut train = TrainConfig::quick(5, 88);
    train.batch_size = 256;
    train.num_negatives = 64;
    train.eval_negatives = 128;

    let models = vec![
        ("DistMult", ModelConfig::paper_distmult(24)),
        (
            "GraphSage",
            ModelConfig::paper_link_prediction_graphsage(24).shrunk(10, 24),
        ),
        (
            "GAT",
            ModelConfig::paper_link_prediction_gat(24).shrunk(8, 24),
        ),
    ];

    println!(
        "{:<10} {:>9} | {:>11} {:>11} | {:>13} {:>13}",
        "model", "Mem MRR", "COMET MRR", "BETA MRR", "COMET ep(s)", "BETA ep(s)"
    );
    let mut comet_wins = 0usize;
    let mut json_reports: Vec<(String, marius_core::ExperimentReport)> = Vec::new();
    for (name, model) in models {
        let trainer: Trainer<LinkPredictionTask> = Trainer::new(model, train.clone());
        let mem = trainer.train_in_memory(&data).expect("in-memory training");
        let comet = trainer
            .train_disk(&data, &DiskConfig::comet(partitions, capacity))
            .expect("disk training");
        let beta = trainer
            .train_disk(&data, &DiskConfig::beta(partitions, capacity))
            .expect("disk training");
        if comet.final_metric() >= beta.final_metric() {
            comet_wins += 1;
        }
        println!(
            "{:<10} {:>9.4} | {:>11.4} {:>11.4} | {:>13} {:>13}",
            name,
            mem.final_metric(),
            comet.final_metric(),
            beta.final_metric(),
            seconds(comet.avg_epoch_time()),
            seconds(beta.avg_epoch_time())
        );
        json_reports.push((format!("{name}/mem"), mem));
        json_reports.push((format!("{name}/disk-comet"), comet));
        json_reports.push((format!("{name}/disk-beta"), beta));
    }
    let labeled: Vec<(&str, &marius_core::ExperimentReport)> =
        json_reports.iter().map(|(l, r)| (l.as_str(), r)).collect();
    write_bench_json("table8_comet_vs_beta", &labeled);
    println!("\nCOMET matched or beat BETA's MRR on {comet_wins}/3 model configurations.");
    println!(
        "Paper reference (Table 8): COMET achieves higher MRR than BETA for 7 of 8\n\
         model/dataset combinations (closing up to 80% of the gap to in-memory MRR)\n\
         while training 5-28% faster per epoch."
    );
}
