//! Table 6: mini-batch sampling time, model compute time, and sampled
//! nodes/edges for GraphSage GNNs of depth 1–5, comparing DENSE (MariusGNN)
//! against the layer-wise re-sampling used by DGL/PyG.
//!
//! The graph is a Papers100M-shaped synthetic graph scaled to laptop size; the
//! absolute numbers are therefore much smaller than the paper's, but the trends
//! — DENSE's advantage growing with depth, driven by fewer sampled nodes/edges —
//! are the quantities Table 6 reports.

use marius_baselines::LayerwiseSampler;
use marius_bench::{header, millis};
use marius_core::models::build_encoder;
use marius_core::ModelConfig;
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_graph::InMemorySubgraph;
use marius_sampling::{MultiHopSampler, SamplingDirection};
use marius_tensor::{DeviceCostModel, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const BATCH: usize = 256;
const FANOUT: usize = 10;
const DIM: usize = 32;
const ROUNDS: usize = 3;

struct Row {
    sample: Duration,
    compute: Duration,
    gpu_estimate: Duration,
    nodes: usize,
    edges: usize,
    oom: bool,
}

fn measure_dense(
    subgraph: &InMemorySubgraph,
    layers: usize,
    compute_limit: usize,
    seed: u64,
) -> Row {
    let sampler = MultiHopSampler::new(vec![FANOUT; layers], SamplingDirection::Both);
    let mut rng = StdRng::seed_from_u64(seed);
    let device = DeviceCostModel::default();
    let mut config = ModelConfig::paper_link_prediction_graphsage(DIM);
    config.num_layers = layers;
    config.fanouts = vec![FANOUT; layers];
    let mut enc_rng = StdRng::seed_from_u64(seed + 1);
    let encoder = build_encoder(&config, &mut enc_rng);

    let mut sample = Duration::ZERO;
    let mut compute = Duration::ZERO;
    let mut gpu = Duration::ZERO;
    let mut nodes = 0usize;
    let mut edges = 0usize;
    let oom = layers > compute_limit;
    for r in 0..ROUNDS {
        let targets: Vec<u64> = (0..BATCH as u64).map(|i| i + r as u64 * 13).collect();
        let t0 = Instant::now();
        let mut dense = sampler.sample(subgraph, &targets, &mut rng);
        sample += t0.elapsed();
        nodes += dense.stats().nodes_sampled;
        edges += dense.stats().edges_sampled;
        gpu += device.gnn_layer_time(
            dense.stats().nodes_sampled,
            dense.stats().edges_sampled,
            DIM,
            DIM,
        ) * layers as u32;
        if !oom {
            let h0 = Tensor::ones(dense.node_ids().len(), DIM);
            let t1 = Instant::now();
            let _ = encoder.forward(&mut dense, h0);
            compute += t1.elapsed() * 2;
        }
    }
    Row {
        sample: sample / ROUNDS as u32,
        compute: compute / ROUNDS as u32,
        gpu_estimate: gpu / ROUNDS as u32,
        nodes: nodes / ROUNDS,
        edges: edges / ROUNDS,
        oom,
    }
}

fn measure_layerwise(
    subgraph: &InMemorySubgraph,
    layers: usize,
    compute_limit: usize,
    seed: u64,
) -> Row {
    let sampler = LayerwiseSampler::new(vec![FANOUT; layers], SamplingDirection::Both);
    let mut rng = StdRng::seed_from_u64(seed);
    let device = DeviceCostModel::default();
    let mut config = ModelConfig::paper_link_prediction_graphsage(DIM);
    config.num_layers = layers;
    config.fanouts = vec![FANOUT; layers];
    let mut enc_rng = StdRng::seed_from_u64(seed + 1);
    let encoder = build_encoder(&config, &mut enc_rng);

    let mut sample = Duration::ZERO;
    let mut compute = Duration::ZERO;
    let mut gpu = Duration::ZERO;
    let mut nodes = 0usize;
    let mut edges = 0usize;
    let oom = layers > compute_limit;
    for r in 0..ROUNDS {
        let targets: Vec<u64> = (0..BATCH as u64).map(|i| i + r as u64 * 13).collect();
        let t0 = Instant::now();
        let s = sampler.sample(subgraph, &targets, &mut rng);
        sample += t0.elapsed();
        nodes += s.stats.nodes_sampled;
        edges += s.stats.edges_sampled;
        gpu += device.gnn_layer_time(s.stats.nodes_sampled, s.stats.edges_sampled, DIM, DIM)
            * layers as u32;
        if !oom {
            let h0 = Tensor::ones(s.base_nodes.len(), DIM);
            let t1 = Instant::now();
            let _ = encoder.forward_contexts(&s.contexts, h0);
            compute += t1.elapsed() * 2;
        }
    }
    Row {
        sample: sample / ROUNDS as u32,
        compute: compute / ROUNDS as u32,
        gpu_estimate: gpu / ROUNDS as u32,
        nodes: nodes / ROUNDS,
        edges: edges / ROUNDS,
        oom,
    }
}

fn print_rows(system: &str, rows: &[Row]) {
    print!("{system:<12}");
    for r in rows {
        print!(" | {:>8}", millis(r.sample));
    }
    println!();
    print!("{:<12}", "  compute");
    for r in rows {
        if r.oom {
            print!(" | {:>8}", "OOM");
        } else {
            print!(" | {:>8}", millis(r.compute));
        }
    }
    println!();
    print!("{:<12}", "  gpu-model");
    for r in rows {
        print!(" | {:>8}", millis(r.gpu_estimate));
    }
    println!();
    print!("{:<12}", "  nodes/edges");
    for r in rows {
        print!(" | {:>4}k/{:>3}k", r.nodes / 1000, r.edges / 1000);
    }
    println!();
}

fn main() {
    header(
        "Table 6: sampling time (ms), compute time (ms), nodes/edges per mini batch vs GNN depth",
    );
    let spec = DatasetSpec::papers100m().scaled(0.0002);
    let data = ScaledDataset::generate(&spec, 6);
    println!(
        "dataset: {} ({} nodes, {} edges); batch {}, fanout {}/{} both directions\n",
        spec.name,
        data.num_nodes(),
        data.num_edges(),
        BATCH,
        FANOUT,
        FANOUT
    );
    let subgraph = InMemorySubgraph::from_edges(data.graph.edges());

    let depths = [1usize, 2, 3, 4, 5];
    // Forward/backward compute is executed up to four layers; five layers is the
    // paper's OOM row.
    let compute_limit = 4;
    print!("{:<12}", "#layers");
    for d in &depths {
        print!(" | {d:>8}");
    }
    println!("\n{}", "-".repeat(12 + depths.len() * 11));
    let dense_rows: Vec<Row> = depths
        .iter()
        .map(|&d| measure_dense(&subgraph, d, compute_limit, 100 + d as u64))
        .collect();
    print_rows("M-GNN (sampling ms)", &dense_rows);
    let layerwise_rows: Vec<Row> = depths
        .iter()
        .map(|&d| measure_layerwise(&subgraph, d, compute_limit, 200 + d as u64))
        .collect();
    print_rows("DGL/PyG-style (sampling ms)", &layerwise_rows);

    println!("\nSpeedups (layer-wise / DENSE):");
    for (i, d) in depths.iter().enumerate() {
        let s =
            layerwise_rows[i].sample.as_secs_f64() / dense_rows[i].sample.as_secs_f64().max(1e-9);
        let e = layerwise_rows[i].edges as f64 / dense_rows[i].edges.max(1) as f64;
        println!("  {d} layers: sampling {s:.1}x, edges sampled {e:.1}x");
    }
    println!(
        "\nPaper reference (Table 6): sampling speedups of 1.6-26x growing with depth,\n\
         driven by DENSE sampling roughly half the nodes/edges at 3+ layers."
    );
}
