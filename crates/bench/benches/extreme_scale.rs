//! §7.3: extreme-scale training of the Common Crawl 2012 hyperlink graph with a
//! single "GPU" and a small buffer.
//!
//! The full graph (3.5B nodes, 128B edges) cannot be synthesised on a laptop;
//! instead this harness trains on a hyperlink-shaped sample, measures the
//! sustained training throughput (edges/second) of the out-of-core pipeline, and
//! extrapolates the cost of one epoch over the full 128B-edge graph at the
//! paper's P3.2xLarge price — the same extrapolated quantity the paper reports
//! ($564/epoch at 194k edges/sec).

use marius_baselines::{AwsInstance, CostModel};
use marius_bench::{header, write_bench_json};
use marius_core::{DiskConfig, LinkPredictionTask, ModelConfig, TrainConfig, Trainer};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use std::time::Duration;

fn main() {
    header("Extreme scale (§7.3): hyperlink-graph throughput and $/epoch extrapolation");
    let spec = DatasetSpec::hyperlink2012().scaled(0.0000002);
    let data = ScaledDataset::generate(&spec, 99);
    println!(
        "sampled workload: {} nodes, {} edges (full graph: 3.5B nodes, 128B edges)\n",
        data.num_nodes(),
        data.num_edges()
    );

    // GraphSage with 10 neighbours, DistMult, dimension 50, shared negatives.
    let mut model = ModelConfig::paper_link_prediction_graphsage(50);
    model.fanouts = vec![10];
    let mut train = TrainConfig::quick(1, 99);
    train.batch_size = 1000;
    train.num_negatives = 100;
    train.eval_negatives = 100;
    let trainer: Trainer<LinkPredictionTask> = Trainer::new(model, train);

    let report = trainer
        .train_disk(&data, &DiskConfig::comet(8, 4))
        .expect("disk training");
    let epoch = &report.epochs[0];
    let throughput = epoch.examples as f64 / epoch.epoch_time.as_secs_f64().max(1e-9);
    println!(
        "measured training throughput: {:.0} edges/sec ({} edges in {:.1}s, MRR {:.3})",
        throughput,
        epoch.examples,
        epoch.epoch_time.as_secs_f64(),
        epoch.metric
    );

    let full_edges = 128_000_000_000f64;
    let full_epoch = Duration::from_secs_f64(full_edges / throughput.max(1.0));
    let cost = CostModel::cost_per_epoch(AwsInstance::P3_2xLarge, full_epoch);
    println!(
        "extrapolated full-graph epoch on a P3.2xLarge: {:.1} hours, ${:.0}/epoch",
        full_epoch.as_secs_f64() / 3600.0,
        cost
    );
    write_bench_json("extreme_scale", &[("hyperlink2012/disk-comet", &report)]);
    println!(
        "\nPaper reference (§7.3): 194k edges/sec sustained on one GPU + 60 GB RAM + SSD,\n\
         $564 per epoch over the full 128B-edge hyperlink graph. (A CPU-only reproduction\n\
         is far slower in absolute terms; the deliverable is the same cost arithmetic over\n\
         the measured throughput of the identical out-of-core pipeline.)"
    );
}
