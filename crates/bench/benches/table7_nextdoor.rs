//! Table 7: GPU-based multi-hop sampling — DENSE (built with stock tensor ops)
//! versus NextDoor's optimised sampling kernels, on a LiveJournal-shaped graph.
//!
//! NextDoor's kernels are simulated by the calibrated cost model in
//! `marius_baselines::nextdoor` (low per-sample cost, no cross-layer reuse,
//! 16 GB GPU memory ceiling); the DENSE side uses the *measured* sample counts
//! from the real sampler so the reuse advantage is genuine, with the same cost
//! model's per-op constants for the "stock tensor ops" overhead.

use marius_baselines::NextDoorModel;
use marius_bench::{header, millis};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_graph::InMemorySubgraph;
use marius_sampling::{MultiHopSampler, SamplingDirection};
use rand::rngs::StdRng;
use rand::SeedableRng;

const FANOUT: usize = 20;
const BATCH: usize = 1000;

fn main() {
    header("Table 7: GPU sampling time (ms) per mini batch vs GNN depth (LiveJournal-scaled)");
    let spec = DatasetSpec::livejournal().scaled(0.002);
    let data = ScaledDataset::generate(&spec, 7);
    let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
    println!(
        "dataset: {} nodes, {} edges; batch {}, fanout {} outgoing\n",
        data.num_nodes(),
        data.num_edges(),
        BATCH,
        FANOUT
    );

    let model = NextDoorModel::v100();
    println!(
        "{:<12} {:>10} {:>10} {:>14} {:>14}",
        "#layers", "M-GNN", "NextDoor", "DENSE samples", "NextDoor samples"
    );
    for layers in 1..=5usize {
        let sampler = MultiHopSampler::new(vec![FANOUT; layers], SamplingDirection::Outgoing);
        let mut rng = StdRng::seed_from_u64(70 + layers as u64);
        let targets: Vec<u64> = (0..BATCH as u64).collect();
        let dense = sampler.sample(&subgraph, &targets, &mut rng);
        let dense_samples = dense.stats().edges_sampled as u64;
        // Scale the measured (laptop-scale) sample count up to the full
        // LiveJournal degree distribution: the ratio of average degrees bounds
        // how many more samples the full graph would yield per hop.
        let dense_time = NextDoorModel::dense_gpu_sampling_time(dense_samples, layers as u32);

        let nextdoor_samples =
            NextDoorModel::samples_without_reuse(BATCH as u64, FANOUT as u64, layers as u32);
        let nextdoor_time = model.sampling_time(nextdoor_samples, layers as u32);

        println!(
            "{:<12} {:>10} {:>10} {:>14} {:>14}",
            layers,
            millis(dense_time),
            match nextdoor_time {
                Some(t) => millis(t),
                None => "OOM".to_string(),
            },
            dense_samples,
            nextdoor_samples
        );
    }
    println!(
        "\nPaper reference (Table 7): NextDoor wins at 1-2 layers (0.1-0.5 ms vs 1-2.5 ms),\n\
         the two cross between 3 and 4 layers, and NextDoor runs out of GPU memory at 5\n\
         layers while DENSE finishes in ~32 ms."
    );
}
