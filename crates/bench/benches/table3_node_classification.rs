//! Table 3 (and the left panel of Figure 7): node classification on
//! Papers100M- and Mag240M-shaped graphs — epoch time, accuracy and $/epoch for
//! MariusGNN in-memory, MariusGNN disk-based, and DGL/PyG-style baselines.
//!
//! Scaled-down reproduction: graphs are synthesised at laptop scale (the class
//! count and labeled fraction are raised so the scaled graphs remain learnable),
//! baselines are executed as layer-wise re-sampling pipelines on one core and
//! extrapolated to their multi-GPU configurations with the scaling factors the
//! paper measured. Absolute numbers differ from the paper; the comparisons
//! (who is faster, similar accuracy, order-of-magnitude cost gap for disk-based
//! training) are the reproduced shape.

use marius_baselines::scaling::BaselineSystem;
use marius_baselines::{AwsInstance, CostModel};
use marius_bench::{
    baseline_epoch_time, header, measure_baseline_batch, minutes, write_bench_json,
};
use marius_core::models::build_encoder;
use marius_core::{DiskConfig, ModelConfig, NodeClassificationTask, TrainConfig, Trainer};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_graph::InMemorySubgraph;

struct RowSpec {
    label: &'static str,
    spec: DatasetSpec,
    mem_instance: AwsInstance,
    baseline_gpus: u32,
}

fn scaled_spec(base: DatasetSpec, factor: f64) -> DatasetSpec {
    let mut s = base.scaled(factor);
    // Keep the scaled graph learnable: fewer classes, more labeled nodes.
    s.num_classes = Some(16);
    s.train_fraction = 0.1;
    s
}

fn main() {
    header("Table 3: node classification (GraphSage) — epoch time, accuracy, $/epoch");
    let rows = vec![
        RowSpec {
            label: "Papers100M-scaled",
            spec: scaled_spec(DatasetSpec::papers100m(), 0.00002),
            mem_instance: AwsInstance::P3_8xLarge,
            baseline_gpus: 4,
        },
        RowSpec {
            label: "Mag240M-Cites-scaled",
            spec: scaled_spec(DatasetSpec::mag240m_cites(), 0.00001),
            mem_instance: AwsInstance::P3_16xLarge,
            baseline_gpus: 8,
        },
    ];

    let mut json_reports: Vec<(String, marius_core::ExperimentReport)> = Vec::new();
    for row in rows {
        let data = ScaledDataset::generate(&row.spec, 33);
        println!(
            "\n--- {} ({} nodes, {} edges, {} classes) ---",
            row.label,
            data.num_nodes(),
            data.num_edges(),
            row.spec.num_classes.unwrap()
        );

        let mut model = ModelConfig::paper_node_classification(row.spec.feat_dim, 32);
        model.num_layers = 3;
        model.fanouts = vec![10, 10, 5];
        let mut train = TrainConfig::quick(3, 33);
        train.batch_size = 256;
        let trainer: Trainer<NodeClassificationTask> = Trainer::new(model.clone(), train);

        let mem = trainer.train_in_memory(&data).expect("in-memory training");
        let disk = trainer
            .train_disk(&data, &DiskConfig::node_cache(8, 6))
            .expect("disk training");

        // Baseline: layer-wise pipeline per-batch cost, extrapolated to the full
        // epoch and the multi-GPU configuration of Table 3.
        let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(34);
        let encoder = build_encoder(&model, &mut rng);
        let batches = data.node_split.train.len().div_ceil(256);
        let cost =
            measure_baseline_batch(&model, &encoder, &subgraph, data.num_nodes(), 256, 2, 35);
        let dgl_epoch = baseline_epoch_time(&cost, batches, BaselineSystem::Dgl, row.baseline_gpus);
        let pyg_epoch = baseline_epoch_time(&cost, batches, BaselineSystem::Pyg, row.baseline_gpus);

        println!(
            "{:<28} {:>12} {:>10} {:>12}",
            "system", "epoch (min)", "accuracy", "$/epoch"
        );
        println!(
            "{:<28} {:>12} {:>10.4} {:>12.4}",
            "M-GNN_Mem (1 GPU)",
            minutes(mem.avg_epoch_time()),
            mem.final_metric(),
            CostModel::cost_per_epoch(row.mem_instance, mem.avg_epoch_time())
        );
        println!(
            "{:<28} {:>12} {:>10.4} {:>12.4}",
            "M-GNN_Disk (1 GPU)",
            minutes(disk.avg_epoch_time()),
            disk.final_metric(),
            CostModel::cost_per_epoch(AwsInstance::P3_2xLarge, disk.avg_epoch_time())
        );
        println!(
            "{:<28} {:>12} {:>10.4} {:>12.4}",
            format!("DGL ({} GPUs)", row.baseline_gpus),
            minutes(dgl_epoch),
            mem.final_metric(),
            CostModel::cost_per_epoch(row.mem_instance, dgl_epoch)
        );
        println!(
            "{:<28} {:>12} {:>10.4} {:>12.4}",
            format!("PyG ({} GPUs)", row.baseline_gpus),
            minutes(pyg_epoch),
            mem.final_metric(),
            CostModel::cost_per_epoch(row.mem_instance, pyg_epoch)
        );
        println!(
            "speedup vs best baseline: {:.1}x; disk cost reduction vs best baseline: {:.0}x",
            dgl_epoch.min(pyg_epoch).as_secs_f64() / mem.avg_epoch_time().as_secs_f64().max(1e-9),
            CostModel::cost_reduction(
                CostModel::cost_per_epoch(row.mem_instance, dgl_epoch.min(pyg_epoch)),
                CostModel::cost_per_epoch(AwsInstance::P3_2xLarge, disk.avg_epoch_time())
            )
        );
        println!("(baseline accuracy shown as the in-memory result: the paper finds all systems within 1%)");

        println!("\nFigure 7 (left) — time-to-accuracy series (cumulative minutes, accuracy):");
        let mut elapsed = std::time::Duration::ZERO;
        for e in &mem.epochs {
            elapsed += e.epoch_time;
            print!(" M-GNN({}, {:.3})", minutes(elapsed), e.metric);
        }
        println!();
        let mut elapsed = std::time::Duration::ZERO;
        for e in &mem.epochs {
            elapsed += dgl_epoch;
            print!(" DGL({}, {:.3})", minutes(elapsed), e.metric);
        }
        println!();
        json_reports.push((format!("{}/mem", row.label), mem));
        json_reports.push((format!("{}/disk-node-cache", row.label), disk));
    }
    let labeled: Vec<(&str, &marius_core::ExperimentReport)> =
        json_reports.iter().map(|(l, r)| (l.as_str(), r)).collect();
    write_bench_json("table3_node_classification", &labeled);
    println!(
        "\nPaper reference (Table 3): M-GNN_Mem 3-4x faster than multi-GPU DGL, 8-11x\n\
         faster than PyG, all within 1% accuracy; M-GNN_Disk 16-64x cheaper per epoch."
    );
}
