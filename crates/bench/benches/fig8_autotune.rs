//! Figure 8: COMET hyper-parameter auto-tuning versus a grid search.
//!
//! Runs disk-based GraphSage link prediction for a grid of (physical partitions,
//! buffer capacity) configurations and for the configuration chosen by the §6
//! auto-tuning rules (scaled to the experiment's synthetic "CPU budget"), and
//! prints (epoch time, MRR) pairs — the scatter of Figure 8.

use marius_bench::{header, seconds, write_bench_json};
use marius_core::{DiskConfig, LinkPredictionTask, ModelConfig, TrainConfig, Trainer};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_storage::auto_tune;

fn main() {
    header("Figure 8: auto-tuning vs grid search (GraphSage, FB15k-237-scaled)");
    let spec = DatasetSpec::fb15k_237().scaled(0.04);
    let data = ScaledDataset::generate(&spec, 81);
    println!(
        "dataset: {} nodes, {} train edges\n",
        data.num_nodes(),
        data.train_edges.len()
    );

    let dim = 24usize;
    let model = ModelConfig::paper_link_prediction_graphsage(dim).shrunk(10, dim);
    let mut train = TrainConfig::quick(2, 81);
    train.batch_size = 512;
    train.num_negatives = 64;
    train.eval_negatives = 128;
    let trainer: Trainer<LinkPredictionTask> = Trainer::new(model, train);

    // Synthetic capacity budget: pretend the machine can hold ~40% of the
    // embedding table, mirroring the paper's buffer = 1/4..1/2 regimes.
    let node_bytes = data.num_nodes() * dim as u64 * 8;
    let edge_bytes = data.train_edges.len() as u64 * 20;
    let cpu_budget = (node_bytes as f64 * 0.4) as u64 + edge_bytes;
    let tuned = auto_tune(
        data.num_nodes(),
        dim,
        data.train_edges.len() as u64,
        20,
        cpu_budget,
        4 * 1024,
        node_bytes / 20,
        true,
    );
    println!(
        "auto-tuned configuration: p = {}, l = {}, c = {}\n",
        tuned.physical_partitions, tuned.logical_partitions, tuned.buffer_capacity
    );

    println!("{:<24} {:>12} {:>8}", "configuration", "epoch (s)", "MRR");
    let grid = vec![(8u32, 2usize), (8, 4), (16, 4), (16, 8), (32, 8)];
    let mut json_reports: Vec<(String, marius_core::ExperimentReport)> = Vec::new();
    for (p, c) in grid {
        let report = trainer
            .train_disk(&data, &DiskConfig::comet(p, c))
            .expect("disk training");
        println!(
            "{:<24} {:>12} {:>8.4}",
            format!("grid p={p} c={c}"),
            seconds(report.avg_epoch_time()),
            report.final_metric()
        );
        json_reports.push((format!("grid-p{p}-c{c}"), report));
    }
    let p = tuned.physical_partitions.max(4);
    let c = tuned.buffer_capacity.clamp(2, p as usize);
    let report = trainer
        .train_disk(&data, &DiskConfig::comet(p, c))
        .expect("disk training");
    println!(
        "{:<24} {:>12} {:>8.4}",
        format!("AUTO-TUNED p={p} c={c}"),
        seconds(report.avg_epoch_time()),
        report.final_metric()
    );
    json_reports.push((format!("auto-tuned-p{p}-c{c}"), report));
    let labeled: Vec<(&str, &marius_core::ExperimentReport)> =
        json_reports.iter().map(|(l, r)| (l.as_str(), r)).collect();
    write_bench_json("fig8_autotune", &labeled);
    println!(
        "\nPaper reference (Figure 8): the auto-tuned configuration sits on the Pareto\n\
         frontier of the grid search — near-best MRR at near-best epoch time."
    );
}
