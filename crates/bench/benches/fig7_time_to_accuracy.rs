//! Figure 7: time-to-accuracy curves for MariusGNN (in-memory and disk-based)
//! versus DGL/PyG-style baselines, on a node-classification graph (left panel)
//! and a link-prediction graph (right panel).
//!
//! Each series is printed as `(cumulative minutes, metric)` pairs so it can be
//! plotted directly. Baseline epoch times come from the measured layer-wise
//! pipeline extrapolated with the paper's multi-GPU scaling factors; their
//! per-epoch metric trajectory is taken from the equivalent in-memory run (the
//! paper finds the systems converge to the same accuracy).

use marius_baselines::scaling::BaselineSystem;
use marius_bench::{
    baseline_epoch_time, header, measure_baseline_batch, minutes, write_bench_json,
};
use marius_core::models::build_encoder;
use marius_core::report::ExperimentReport;
use marius_core::{
    DiskConfig, LinkPredictionTask, ModelConfig, NodeClassificationTask, TrainConfig, Trainer,
};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_graph::InMemorySubgraph;
use std::time::Duration;

fn print_series(name: &str, report: &ExperimentReport, epoch_override: Option<Duration>) {
    print!("{name:<24}:");
    let mut elapsed = Duration::ZERO;
    for e in &report.epochs {
        elapsed += epoch_override.unwrap_or(e.epoch_time);
        print!(" ({}, {:.3})", minutes(elapsed), e.metric);
    }
    println!();
}

fn main() {
    header("Figure 7: time-to-accuracy");

    // Left panel: node classification on a Papers100M-shaped graph.
    println!("\n[left] node classification (Papers100M-scaled, accuracy)");
    let mut spec = DatasetSpec::papers100m().scaled(0.00002);
    spec.num_classes = Some(16);
    spec.train_fraction = 0.1;
    let data = ScaledDataset::generate(&spec, 71);
    let mut model = ModelConfig::paper_node_classification(spec.feat_dim, 32);
    model.num_layers = 2;
    model.fanouts = vec![10, 10];
    let mut train = TrainConfig::quick(4, 71);
    train.batch_size = 256;
    let trainer: Trainer<NodeClassificationTask> = Trainer::new(model.clone(), train);
    let mem = trainer.train_in_memory(&data).expect("in-memory training");
    let disk = trainer
        .train_disk(&data, &DiskConfig::node_cache(8, 6))
        .expect("disk training");

    let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(72);
    let encoder = build_encoder(&model, &mut rng);
    let batches = data.node_split.train.len().div_ceil(256);
    let cost = measure_baseline_batch(&model, &encoder, &subgraph, data.num_nodes(), 256, 2, 73);
    let dgl = baseline_epoch_time(&cost, batches, BaselineSystem::Dgl, 4);
    let pyg = baseline_epoch_time(&cost, batches, BaselineSystem::Pyg, 4);

    print_series("M-GNN_Mem 1 GPU", &mem, None);
    print_series("M-GNN_Disk 1 GPU", &disk, None);
    print_series("DGL 4 GPUs", &mem, Some(dgl));
    print_series("PyG 4 GPUs", &mem, Some(pyg));
    let nc_mem = mem;
    let nc_disk = disk;

    // Right panel: link prediction on a Freebase86M-shaped graph.
    println!("\n[right] link prediction (Freebase86M-scaled, MRR)");
    let spec = DatasetSpec::freebase86m().scaled(0.00001);
    let data = ScaledDataset::generate(&spec, 74);
    let model = ModelConfig::paper_link_prediction_graphsage(32).shrunk(10, 32);
    let mut train = TrainConfig::quick(4, 74);
    train.batch_size = 512;
    train.num_negatives = 100;
    train.eval_negatives = 200;
    let trainer: Trainer<LinkPredictionTask> = Trainer::new(model.clone(), train);
    let mem = trainer.train_in_memory(&data).expect("in-memory training");
    let disk = trainer
        .train_disk(&data, &DiskConfig::comet(8, 4))
        .expect("disk training");

    let subgraph = InMemorySubgraph::from_edges(&data.train_edges);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(75);
    let encoder = build_encoder(&model, &mut rng);
    let batches = data.train_edges.len().div_ceil(512);
    let cost = measure_baseline_batch(&model, &encoder, &subgraph, data.num_nodes(), 512, 2, 76);
    let dgl = baseline_epoch_time(&cost, batches, BaselineSystem::Dgl, 1);
    let pyg = baseline_epoch_time(&cost, batches, BaselineSystem::Pyg, 1);

    print_series("M-GNN_Mem 1 GPU", &mem, None);
    print_series("M-GNN_Disk 1 GPU", &disk, None);
    print_series("DGL 1 GPU", &mem, Some(dgl));
    print_series("PyG 1 GPU", &mem, Some(pyg));

    write_bench_json(
        "fig7_time_to_accuracy",
        &[
            ("node-classification/mem", &nc_mem),
            ("node-classification/disk", &nc_disk),
            ("link-prediction/mem", &mem),
            ("link-prediction/disk", &disk),
        ],
    );

    println!(
        "\nPaper reference (Figure 7): MariusGNN reaches the baselines' final accuracy\n\
         4x (node classification) and 6x (link prediction) sooner."
    );
}
