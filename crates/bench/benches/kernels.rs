//! Criterion micro-benchmarks of the kernels behind the paper's performance
//! claims: dense segment aggregation (Algorithm 3), gather/scatter, GEMM, and
//! DENSE versus layer-wise multi-hop sampling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use marius_baselines::LayerwiseSampler;
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_graph::InMemorySubgraph;
use marius_sampling::{MultiHopSampler, SamplingDirection};
use marius_tensor::segment::{index_select, segment_sum};
use marius_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dense_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let h = marius_tensor::uniform_init(&mut rng, 4096, 64, 1.0);
    let indices: Vec<usize> = (0..16_384).map(|i| (i * 37) % 4096).collect();
    let offsets: Vec<usize> = (0..2048).map(|i| i * 8).collect();

    c.bench_function("index_select 16k rows", |b| {
        b.iter(|| index_select(&h, &indices).unwrap())
    });
    let gathered = index_select(&h, &indices).unwrap();
    c.bench_function("segment_sum 2k segments", |b| {
        b.iter(|| segment_sum(&gathered, &offsets).unwrap())
    });
    let a = marius_tensor::uniform_init(&mut rng, 256, 64, 1.0);
    let w = marius_tensor::uniform_init(&mut rng, 64, 64, 1.0);
    c.bench_function("gemm 256x64x64", |b| b.iter(|| a.matmul(&w)));
    c.bench_function("softmax rows 256x64", |b| {
        b.iter(|| Tensor::softmax_rows(&a))
    });
}

fn bench_sampling(c: &mut Criterion) {
    let data = ScaledDataset::generate(&DatasetSpec::livejournal().scaled(0.001), 3);
    let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
    let targets: Vec<u64> = (0..256).collect();

    let mut group = c.benchmark_group("multi_hop_sampling");
    for layers in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("dense", layers), &layers, |b, &layers| {
            let sampler = MultiHopSampler::new(vec![10; layers], SamplingDirection::Incoming);
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| sampler.sample(&subgraph, &targets, &mut rng))
        });
        group.bench_with_input(
            BenchmarkId::new("layerwise", layers),
            &layers,
            |b, &layers| {
                let sampler = LayerwiseSampler::new(vec![10; layers], SamplingDirection::Incoming);
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| sampler.sample(&subgraph, &targets, &mut rng))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dense_kernels, bench_sampling
}
criterion_main!(benches);
