//! Table 4 (and the right panel of Figure 7): link prediction on Freebase86M-
//! and WikiKG90Mv2-shaped graphs — epoch time, MRR and $/epoch for MariusGNN
//! in-memory, MariusGNN disk-based (COMET), and DGL/PyG-style baselines.
//!
//! Baselines run single-GPU for this task (as in the paper); the DGL row uses
//! five times fewer negatives, which is what lowers its MRR in the paper. Its
//! epoch time comes from the measured layer-wise pipeline cost.

use marius_baselines::scaling::BaselineSystem;
use marius_baselines::{AwsInstance, CostModel};
use marius_bench::{
    baseline_epoch_time, header, measure_baseline_batch, minutes, write_bench_json,
};
use marius_core::models::build_encoder;
use marius_core::{DiskConfig, LinkPredictionTask, ModelConfig, TrainConfig, Trainer};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_graph::InMemorySubgraph;

fn main() {
    header("Table 4: link prediction (GraphSage + DistMult) — epoch time, MRR, $/epoch");
    let datasets = vec![
        (
            "Freebase86M-scaled",
            DatasetSpec::freebase86m().scaled(0.00001),
        ),
        (
            "WikiKG90Mv2-scaled",
            DatasetSpec::wikikg90mv2().scaled(0.00001),
        ),
    ];

    let mut json_reports: Vec<(String, marius_core::ExperimentReport)> = Vec::new();
    for (label, spec) in datasets {
        let data = ScaledDataset::generate(&spec, 44);
        println!(
            "\n--- {} ({} nodes, {} edges, {} relations) ---",
            label,
            data.num_nodes(),
            data.num_edges(),
            spec.num_relations
        );

        let model = ModelConfig::paper_link_prediction_graphsage(32).shrunk(10, 32);
        let mut train = TrainConfig::quick(3, 44);
        train.batch_size = 512;
        train.num_negatives = 100;
        train.eval_negatives = 200;
        let trainer: Trainer<LinkPredictionTask> = Trainer::new(model.clone(), train.clone());

        let mem = trainer.train_in_memory(&data).expect("in-memory training");
        let disk = trainer
            .train_disk(&data, &DiskConfig::comet(8, 4))
            .expect("disk training");

        // DGL uses 5x fewer negatives (paper §7.1): train a separate in-memory
        // run with that handicap to obtain its MRR.
        let mut dgl_train = train.clone();
        dgl_train.num_negatives = train.num_negatives / 5;
        let dgl_quality = Trainer::<LinkPredictionTask>::new(model.clone(), dgl_train)
            .train_in_memory(&data)
            .expect("in-memory training");

        // Baseline epoch time from the layer-wise pipeline cost (single GPU).
        let subgraph = InMemorySubgraph::from_edges(&data.train_edges);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(45);
        let encoder = build_encoder(&model, &mut rng);
        let batches = data.train_edges.len().div_ceil(512);
        let cost =
            measure_baseline_batch(&model, &encoder, &subgraph, data.num_nodes(), 512, 2, 46);
        let dgl_epoch = baseline_epoch_time(&cost, batches, BaselineSystem::Dgl, 1);
        let pyg_epoch = baseline_epoch_time(&cost, batches, BaselineSystem::Pyg, 1);

        println!(
            "{:<28} {:>12} {:>8} {:>12}",
            "system", "epoch (min)", "MRR", "$/epoch"
        );
        let print_row = |name: &str, epoch: std::time::Duration, mrr: f64, inst: AwsInstance| {
            println!(
                "{:<28} {:>12} {:>8.4} {:>12.4}",
                name,
                minutes(epoch),
                mrr,
                CostModel::cost_per_epoch(inst, epoch)
            );
        };
        print_row(
            "M-GNN_Mem (1 GPU)",
            mem.avg_epoch_time(),
            mem.final_metric(),
            AwsInstance::P3_8xLarge,
        );
        print_row(
            "M-GNN_Disk (COMET, 1 GPU)",
            disk.avg_epoch_time(),
            disk.final_metric(),
            AwsInstance::P3_2xLarge,
        );
        print_row(
            "DGL (1 GPU, 5x fewer negs)",
            dgl_epoch,
            dgl_quality.final_metric(),
            AwsInstance::P3_8xLarge,
        );
        print_row(
            "PyG (1 GPU)",
            pyg_epoch,
            mem.final_metric(),
            AwsInstance::P3_8xLarge,
        );
        println!(
            "speedup vs best baseline: {:.1}x",
            dgl_epoch.min(pyg_epoch).as_secs_f64() / mem.avg_epoch_time().as_secs_f64().max(1e-9)
        );

        println!("\nFigure 7 (right) — time-to-MRR series (cumulative minutes, MRR):");
        let mut elapsed = std::time::Duration::ZERO;
        for e in &mem.epochs {
            elapsed += e.epoch_time;
            print!(" M-GNN({}, {:.3})", minutes(elapsed), e.metric);
        }
        println!();
        let mut elapsed = std::time::Duration::ZERO;
        for e in &dgl_quality.epochs {
            elapsed += dgl_epoch;
            print!(" DGL({}, {:.3})", minutes(elapsed), e.metric);
        }
        println!();

        json_reports.push((format!("{label}/mem"), mem));
        json_reports.push((format!("{label}/disk-comet"), disk));
        json_reports.push((format!("{label}/dgl-quality"), dgl_quality));
    }
    let labeled: Vec<(&str, &marius_core::ExperimentReport)> =
        json_reports.iter().map(|(l, r)| (l.as_str(), r)).collect();
    write_bench_json("table4_link_prediction", &labeled);
    println!(
        "\nPaper reference (Table 4): M-GNN_Mem 6-7x faster than the best baseline with\n\
         comparable MRR (DGL lower due to fewer negatives); disk-based COMET training is\n\
         1.9-4.5x faster than baselines at 7.5-18x lower cost."
    );
}
