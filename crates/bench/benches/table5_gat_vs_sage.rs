//! Table 5: GraphSage versus GAT for link prediction on a Freebase86M-shaped
//! graph. The paper's point: MariusGNN's epoch time grows when switching to the
//! more compute-intensive GAT, while the baselines' does not because they are
//! bottlenecked by CPU-side mini-batch construction, not GPU compute.

use marius_baselines::scaling::BaselineSystem;
use marius_baselines::{AwsInstance, CostModel};
use marius_bench::{
    baseline_epoch_time, header, measure_baseline_batch, minutes, write_bench_json,
};
use marius_core::models::build_encoder;
use marius_core::{DiskConfig, EncoderKind, LinkPredictionTask, ModelConfig, TrainConfig, Trainer};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_graph::InMemorySubgraph;

fn main() {
    header("Table 5: GraphSage vs GAT link prediction (Freebase86M-scaled)");
    let spec = DatasetSpec::freebase86m().scaled(0.00001);
    let data = ScaledDataset::generate(&spec, 55);
    println!(
        "dataset: {} nodes, {} edges, {} relations\n",
        data.num_nodes(),
        data.num_edges(),
        spec.num_relations
    );

    let mut train = TrainConfig::quick(2, 55);
    train.batch_size = 512;
    train.num_negatives = 100;
    train.eval_negatives = 200;

    println!(
        "{:<30} {:>12} {:>8} {:>12}",
        "system / model", "epoch (min)", "MRR", "$/epoch"
    );
    let mut marius_times = Vec::new();
    let mut json_reports: Vec<(String, marius_core::ExperimentReport)> = Vec::new();
    for (name, kind) in [
        ("GraphSage", EncoderKind::GraphSage),
        ("GAT", EncoderKind::Gat),
    ] {
        let model = match kind {
            EncoderKind::Gat => ModelConfig::paper_link_prediction_gat(32).shrunk(10, 32),
            _ => ModelConfig::paper_link_prediction_graphsage(32).shrunk(10, 32),
        };
        let trainer: Trainer<LinkPredictionTask> = Trainer::new(model.clone(), train.clone());
        let mem = trainer.train_in_memory(&data).expect("in-memory training");
        let disk = trainer
            .train_disk(&data, &DiskConfig::comet(8, 4))
            .expect("disk training");
        marius_times.push(mem.avg_epoch_time());
        println!(
            "{:<30} {:>12} {:>8.4} {:>12.4}",
            format!("M-GNN_Mem / {name}"),
            minutes(mem.avg_epoch_time()),
            mem.final_metric(),
            CostModel::cost_per_epoch(AwsInstance::P3_8xLarge, mem.avg_epoch_time())
        );
        println!(
            "{:<30} {:>12} {:>8.4} {:>12.4}",
            format!("M-GNN_Disk / {name}"),
            minutes(disk.avg_epoch_time()),
            disk.final_metric(),
            CostModel::cost_per_epoch(AwsInstance::P3_2xLarge, disk.avg_epoch_time())
        );

        // Baseline epoch time: dominated by sampling, so nearly identical for
        // the two models.
        let subgraph = InMemorySubgraph::from_edges(&data.train_edges);
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(56);
        let encoder = build_encoder(&model, &mut rng);
        let batches = data.train_edges.len().div_ceil(512);
        let cost =
            measure_baseline_batch(&model, &encoder, &subgraph, data.num_nodes(), 512, 2, 57);
        let dgl = baseline_epoch_time(&cost, batches, BaselineSystem::Dgl, 1);
        println!(
            "{:<30} {:>12} {:>8} {:>12.4}",
            format!("DGL-style baseline / {name}"),
            minutes(dgl),
            "~",
            CostModel::cost_per_epoch(AwsInstance::P3_8xLarge, dgl)
        );
        json_reports.push((format!("{name}/mem"), mem));
        json_reports.push((format!("{name}/disk-comet"), disk));
    }
    let labeled: Vec<(&str, &marius_core::ExperimentReport)> =
        json_reports.iter().map(|(l, r)| (l.as_str(), r)).collect();
    write_bench_json("table5_gat_vs_sage", &labeled);
    println!(
        "\nGAT/GraphSage epoch-time ratio in MariusGNN: {:.2}x (paper: ~3x in memory);\n\
         the baseline's ratio stays near 1x because it is sampling-bound (paper Table 5).",
        marius_times[1].as_secs_f64() / marius_times[0].as_secs_f64().max(1e-9)
    );
}
