//! Continuous-training benchmark: the streamed ingest → fine-tune loop of
//! `marius-stream` against a frozen-dataset run of the same epoch budget.
//!
//! Reports per-epoch timing for both runs, the ingest-side counters (batches
//! staged, deltas applied, edges appended, cumulative apply time), and writes
//! `BENCH_stream_continuous.json` with both trajectories — the artifact the
//! CI `stream-smoke` job uploads.
//!
//! Set `MARIUS_BENCH_SMOKE=1` for the tiny CI configuration.

use std::sync::Arc;
use std::time::Duration;

use marius_bench::{header, seconds, write_bench_json, write_telemetry_artifacts};
use marius_core::{DiskConfig, ModelConfig, TemporalLinkPredictionTask, TrainConfig, Trainer};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_storage::PartitionStore;
use marius_stream::{EdgeStream, Ingestor};
use marius_telemetry::Telemetry;

fn smoke() -> bool {
    std::env::var("MARIUS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn main() {
    header("Continuous training: streamed ingest + fine-tune vs frozen run");

    let (scale, cycles, epochs_per_cycle, batches_per_cycle, batch_size) = if smoke() {
        (0.015, 2usize, 2usize, 2usize, 64usize)
    } else {
        (0.05, 4, 2, 4, 256)
    };
    let epochs = cycles * epochs_per_cycle;
    let spec = DatasetSpec::fb15k_237().scaled(scale);
    let data = ScaledDataset::generate(&spec, 3);
    let disk = DiskConfig::comet(8, 4);
    let model = ModelConfig::paper_distmult(16);
    let mut train = TrainConfig::quick(epochs, 9);
    train.batch_size = 256;
    train.num_negatives = 32;
    train.eval_negatives = 64;
    println!(
        "{}: {} nodes, {} base edges; {cycles} cycles x {epochs_per_cycle} epochs, \
         {batches_per_cycle} x {batch_size}-edge batches per boundary",
        spec.name,
        data.num_nodes(),
        data.graph.edges().len()
    );

    // Baseline: the same epoch budget over the frozen base dataset.
    let frozen_trainer: Trainer<TemporalLinkPredictionTask> =
        Trainer::with_task(TemporalLinkPredictionTask, model.clone(), train.clone());
    let frozen = frozen_trainer
        .train_disk(&data, &disk)
        .expect("frozen training");

    // The continuous loop: identical trainer plus the armed ingest hook.
    let telemetry = Telemetry::enabled();
    let mut streamed_trainer: Trainer<TemporalLinkPredictionTask> =
        Trainer::with_task(TemporalLinkPredictionTask, model, train).with_telemetry(&telemetry);
    let stream = EdgeStream::new(11, data.num_nodes(), spec.num_relations, batch_size);
    let staging = PartitionStore::open_temp("bench-stream-staging").expect("staging store");
    staging.clear().expect("clear staging");
    let ingestor = Ingestor::new(stream, staging).with_telemetry(&telemetry);
    streamed_trainer.set_stream_state(ingestor.state_handle());
    let ingestor = Arc::new(ingestor);
    streamed_trainer.set_ingest_hook(move |setup, epoch_idx| {
        if (epoch_idx + 1) % epochs_per_cycle == 0 && epoch_idx + 1 < epochs {
            ingestor.ingest(setup, batches_per_cycle)
        } else {
            Ok(0)
        }
    });
    let streamed = streamed_trainer
        .train_disk(&data, &disk)
        .expect("streamed training");

    println!("\nepoch |  frozen_s | streamed_s | edges_ingested");
    for (f, s) in frozen.epochs.iter().zip(streamed.epochs.iter()) {
        println!(
            "{:>5} | {:>9} | {:>10} | {:>14}",
            f.epoch,
            seconds(f.epoch_time),
            seconds(s.epoch_time),
            s.edges_ingested
        );
    }
    let snap = telemetry.metrics_snapshot();
    let apply_ns = snap.counter("ingest.apply_ns").unwrap_or(0);
    println!(
        "\ningest: {} batches staged, {} deltas applied, {} edges appended, \
         {} cumulative apply time",
        snap.counter("ingest.batches_staged").unwrap_or(0),
        snap.counter("ingest.deltas_applied").unwrap_or(0),
        snap.counter("ingest.edges_appended").unwrap_or(0),
        seconds(Duration::from_nanos(apply_ns)),
    );

    write_bench_json(
        "stream_continuous",
        &[("frozen", &frozen), ("streamed", &streamed)],
    );
    write_telemetry_artifacts("stream_continuous", &telemetry);
}
