//! Figure 6: the Edge Permutation Bias metric.
//!
//! (a) accuracy (MRR) versus bias — obtained by training disk-based GraphSage
//!     under plans with different bias levels;
//! (b) the effect of the number of logical partitions on bias, number of
//!     subgraphs (partition sets) and normalised total IO;
//! (c) the effect of the number of physical partitions on bias.

use marius_bench::{header, write_bench_json};
use marius_core::{DiskConfig, LinkPredictionTask, ModelConfig, TrainConfig, Trainer};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_graph::Partitioner;
use marius_storage::policy::ReplacementPolicy;
use marius_storage::{edge_permutation_bias, BetaPolicy, CometPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    header("Figure 6: Edge Permutation Bias (GraphSage on FB15k-237-scaled)");
    let spec = DatasetSpec::fb15k_237().scaled(0.05);
    let data = ScaledDataset::generate(&spec, 66);

    // --- Figure 6b: vary the number of logical partitions at fixed p. ---
    let p = 32u32;
    let c = 8usize;
    let partitioner = Partitioner::new(p).unwrap();
    let mut rng = StdRng::seed_from_u64(66);
    let assignment = partitioner.random(data.num_nodes(), &mut rng);
    let buckets = partitioner.build_buckets(&data.graph, &assignment).unwrap();

    println!("\nFigure 6b: effect of logical partitions (p = {p}, buffer = {c})");
    println!(
        "{:>4} {:>8} {:>12} {:>14}",
        "l", "bias", "#subgraphs", "normalized IO"
    );
    let mut base_io = None;
    for l in [2u32, 4, 8, 16, 32] {
        // Skip configurations whose logical partitions no longer fit in pairs.
        let per_logical = (p as usize).div_ceil(l as usize);
        if c / per_logical < 2 {
            continue;
        }
        let plan = CometPolicy::new(c, l).plan(p, &mut rng).unwrap();
        let bias = edge_permutation_bias(&plan, &buckets, data.num_nodes());
        let io = plan.partition_loads() as f64;
        let base = *base_io.get_or_insert(io);
        println!(
            "{:>4} {:>8.3} {:>12} {:>14.3}",
            l,
            bias,
            plan.num_sets(),
            io / base
        );
    }

    // --- Figure 6c: vary the number of physical partitions, buffer = p/4. ---
    println!("\nFigure 6c: effect of physical partitions (buffer = p/4, l = 2p/c)");
    println!("{:>4} {:>8}", "p", "bias");
    for p in [8u32, 16, 32, 64] {
        let c = (p as usize / 4).max(2);
        let partitioner = Partitioner::new(p).unwrap();
        let assignment = partitioner.random(data.num_nodes(), &mut rng);
        let buckets = partitioner.build_buckets(&data.graph, &assignment).unwrap();
        let plan = CometPolicy::auto(p, c).plan(p, &mut rng).unwrap();
        let bias = edge_permutation_bias(&plan, &buckets, data.num_nodes());
        println!("{:>4} {:>8.3}", p, bias);
    }

    // --- Figure 6a: accuracy versus bias — train under three plans of
    //     increasing bias (in-memory, COMET, BETA with a tiny buffer). ---
    println!("\nFigure 6a: MRR vs bias (3-epoch disk runs)");
    let model = ModelConfig::paper_link_prediction_graphsage(24).shrunk(10, 24);
    let mut train = TrainConfig::quick(3, 66);
    train.batch_size = 512;
    train.num_negatives = 64;
    train.eval_negatives = 128;
    let trainer: Trainer<LinkPredictionTask> = Trainer::new(model, train);

    let configs: Vec<(&str, DiskConfig)> = vec![
        ("COMET p=16 c=8", DiskConfig::comet(16, 8)),
        ("COMET p=16 c=4", DiskConfig::comet(16, 4)),
        ("BETA  p=16 c=4", DiskConfig::beta(16, 4)),
    ];
    println!("{:<16} {:>8} {:>8}", "config", "bias", "MRR");
    let mut json_reports: Vec<(String, marius_core::ExperimentReport)> = Vec::new();
    for (name, disk) in configs {
        let partitioner = Partitioner::new(disk.num_partitions).unwrap();
        let assignment = partitioner.random(data.num_nodes(), &mut rng);
        let buckets = partitioner.build_buckets(&data.graph, &assignment).unwrap();
        let plan = match disk.policy {
            marius_core::PolicyKind::Beta => BetaPolicy::new(disk.buffer_capacity)
                .plan(disk.num_partitions, &mut rng)
                .unwrap(),
            _ => CometPolicy::auto(disk.num_partitions, disk.buffer_capacity)
                .plan(disk.num_partitions, &mut rng)
                .unwrap(),
        };
        let bias = edge_permutation_bias(&plan, &buckets, data.num_nodes());
        let report = trainer.train_disk(&data, &disk).expect("disk training");
        println!("{:<16} {:>8.3} {:>8.4}", name, bias, report.final_metric());
        json_reports.push((name.to_string(), report));
    }
    let labeled: Vec<(&str, &marius_core::ExperimentReport)> =
        json_reports.iter().map(|(l, r)| (l.as_str(), r)).collect();
    write_bench_json("fig6_bias", &labeled);
    println!(
        "\nPaper reference (Figure 6): MRR decreases as bias increases; bias falls with\n\
         more physical partitions (O(p^-a)) and with fewer logical partitions (O(l^a)),\n\
         while total IO falls and the number of subgraphs grows with l."
    );
}
