//! Serving latency/QPS: a zipfian link-prediction query mix against one
//! shared `marius_serve::Server`, swept over thread counts for both the
//! in-memory backend and the byte-budgeted out-of-core read cache.
//!
//! Every configuration answers the *same* pre-generated query list, and the
//! harness folds each answer's exact f32 bit patterns into an FNV-1a digest
//! in query order — so a single-threaded in-memory oracle pins the expected
//! digest and every concurrent/out-of-core run must reproduce it bit for
//! bit. The table reports per-query p50/p99 latency and aggregate QPS; the
//! read-cache rows show what paging cold partitions through disk costs under
//! a hot-skewed workload.
//!
//! Set `MARIUS_BENCH_SMOKE=1` for the tiny CI configuration (the serve-smoke
//! job uploads `BENCH_serve_qps.json` as a perf-trajectory artifact).

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

use marius_bench::header;
use marius_core::{DiskConfig, LinkPredictionTask, ModelConfig, TrainConfig, Trainer};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_graph::{NodeId, RelId};
use marius_serve::{Prediction, ServeConfig, Server, ZipfWorkload};
use marius_storage::IoFaultPlan;

fn smoke() -> bool {
    std::env::var("MARIUS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[derive(Clone)]
enum Query {
    Pairwise(Vec<(NodeId, RelId, NodeId)>),
    TopK(NodeId, RelId),
    Knn(NodeId),
}

fn make_queries(count: usize, num_nodes: u64, num_relations: u32) -> Vec<Query> {
    let mut workload = ZipfWorkload::new(num_nodes, num_relations, 1.0, 42);
    (0..count)
        .map(|i| match i % 4 {
            0 => Query::Pairwise((0..16).map(|_| workload.next_triple()).collect()),
            3 => Query::Knn(workload.next_node()),
            _ => {
                let (src, rel, _) = workload.next_triple();
                Query::TopK(src, rel)
            }
        })
        .collect()
}

/// FNV-1a over the answer's exact bit patterns.
fn fold(digest: &mut u64, word: u64) {
    *digest ^= word;
    *digest = digest.wrapping_mul(0x0000_0100_0000_01B3);
}

fn answer_digest(server: &Server, query: &Query) -> u64 {
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    let mut preds = |ps: &[Prediction]| {
        for p in ps {
            fold(&mut digest, p.node);
            fold(&mut digest, p.score.to_bits() as u64);
        }
    };
    match query {
        Query::Pairwise(triples) => {
            for s in server.score_pairs(triples).expect("pairwise") {
                fold(&mut digest, s.to_bits() as u64);
            }
        }
        Query::TopK(src, rel) => preds(&server.top_k(*src, *rel, 10).expect("top_k")),
        Query::Knn(node) => preds(&server.knn(*node, 10).expect("knn")),
    }
    digest
}

struct RunStats {
    p50_us: f64,
    p99_us: f64,
    qps: f64,
    digest: u64,
}

/// Answers every query on `threads` workers sharing `server` (query `i` goes
/// to worker `i % threads`), then folds the per-query digests in query order
/// so the run digest is thread-count invariant.
fn run(server: &Server, queries: &[Query], threads: usize) -> RunStats {
    let digests: Mutex<Vec<u64>> = Mutex::new(vec![0; queries.len()]);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(queries.len()));
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let (digests, latencies) = (&digests, &latencies);
            scope.spawn(move || {
                let mut mine_digests = Vec::new();
                let mut mine_lat = Vec::new();
                for (i, query) in queries.iter().enumerate() {
                    if i % threads != t {
                        continue;
                    }
                    let started = Instant::now();
                    let digest = answer_digest(server, query);
                    mine_lat.push(started.elapsed().as_nanos() as u64);
                    mine_digests.push((i, digest));
                }
                let mut all = digests.lock().unwrap();
                for (i, digest) in mine_digests {
                    all[i] = digest;
                }
                latencies.lock().unwrap().extend(mine_lat);
            });
        }
    });
    let elapsed = wall.elapsed().as_secs_f64();
    let mut latencies = latencies.into_inner().unwrap();
    latencies.sort_unstable();
    let pct = |p: usize| latencies[(latencies.len() * p / 100).min(latencies.len() - 1)];
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    for d in digests.into_inner().unwrap() {
        fold(&mut digest, d);
    }
    RunStats {
        p50_us: pct(50) as f64 / 1e3,
        p99_us: pct(99) as f64 / 1e3,
        qps: queries.len() as f64 / elapsed,
        digest,
    }
}

fn main() {
    header("Serving QPS: zipfian query mix, in-memory vs out-of-core read cache");
    let (scale, num_queries, thread_counts): (f64, usize, &[usize]) = if smoke() {
        (0.04, 200, &[1, 4])
    } else {
        (0.2, 2000, &[1, 2, 4, 8])
    };

    // One tiny out-of-core DistMult training run produces the checkpoint
    // every serving configuration reopens.
    let spec = DatasetSpec::fb15k_237().scaled(scale);
    let data = ScaledDataset::generate(&spec, 42);
    let mut train = TrainConfig::quick(if smoke() { 1 } else { 2 }, 42);
    train.batch_size = 512;
    train.num_negatives = 32;
    let ckpt_dir: PathBuf =
        std::env::temp_dir().join(format!("marius-serve-qps-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let disk = DiskConfig::comet(16, 4);
    let trainer: Trainer<LinkPredictionTask> =
        Trainer::new(ModelConfig::paper_distmult(16), train).with_checkpoint(&ckpt_dir, 1);
    trainer.train_disk(&data, &disk).expect("training");
    println!(
        "checkpoint: {} nodes, {} relations, dim 16, 16 partitions on disk\n",
        data.num_nodes(),
        spec.num_relations
    );

    let queries = make_queries(num_queries, data.num_nodes(), spec.num_relations);

    // The oracle pins the expected digest: single thread, whole table in
    // memory, no cache in the path.
    let oracle_server = Server::from_checkpoint(&ckpt_dir).expect("oracle server");
    let oracle = run(&oracle_server, &queries, 1);
    println!(
        "oracle (in-memory, 1 thread): digest {:016x}, p50 {:.1} us\n",
        oracle.digest, oracle.p50_us
    );

    // A budget of ~one third of the table keeps the hot head resident and
    // forces the zipf tail through the read-through path.
    let table_bytes = data.num_nodes() * 16 * 4;
    let budget = table_bytes / 3;
    // The flaky leg prices fault absorption: same read cache, but the store
    // rides a seeded flaky device (transient failures + latency spikes) that
    // the default retry policy must absorb without touching the digest.
    let modes: [(&str, ServeConfig); 3] = [
        ("in_memory", ServeConfig::in_memory()),
        ("read_cache", ServeConfig::read_cache(budget)),
        (
            "flaky_cache",
            ServeConfig::read_cache(budget).with_fault_plan(IoFaultPlan::flaky(42)),
        ),
    ];

    println!(
        "{:<11} {:>7} {:>9} {:>9} {:>9} {:>6}",
        "mode", "threads", "p50_us", "p99_us", "qps", "exact"
    );
    let mut rows = Vec::new();
    for (label, config) in modes {
        let server = Server::from_checkpoint_with(&ckpt_dir, config.clone()).expect("server");
        if let Some(admitted) = server.cache_admitted_partitions() {
            println!(
                "[{label}: cache admits {admitted} partitions, {} of {} bytes]",
                server.cache_admitted_bytes().unwrap_or(0),
                budget
            );
        }
        for &threads in thread_counts {
            let stats = run(&server, &queries, threads);
            let exact = stats.digest == oracle.digest;
            println!(
                "{label:<11} {threads:>7} {:>9.1} {:>9.1} {:>9.0} {exact:>6}",
                stats.p50_us, stats.p99_us, stats.qps
            );
            assert!(
                exact,
                "{label} at {threads} threads diverged from the oracle digest"
            );
            let health = server.health();
            rows.push(format!(
                "{{\"mode\":\"{label}\",\"threads\":{threads},\"queries\":{num_queries},\
                 \"p50_us\":{:.3},\"p99_us\":{:.3},\"qps\":{:.1},\"bit_identical\":{exact},\
                 \"store_retries\":{},\"faults_injected\":{}}}",
                stats.p50_us, stats.p99_us, stats.qps, health.store_retries, health.faults_injected
            ));
        }
        if let Some(injector) = server.fault_injector() {
            assert!(
                injector.faults_injected() > 0,
                "{label}: the flaky plan injected nothing"
            );
            println!(
                "[{label}: absorbed {} injected faults across the sweep]",
                injector.faults_injected()
            );
        }
    }

    let json = format!(
        "{{\"bench\":\"serve_qps\",\"oracle_digest\":\"{:016x}\",\"runs\":[{}]}}",
        oracle.digest,
        rows.join(",")
    );
    match std::fs::write("BENCH_serve_qps.json", json) {
        Ok(()) => println!("\nwrote BENCH_serve_qps.json ({} runs)", rows.len()),
        Err(e) => eprintln!("warning: could not write BENCH_serve_qps.json: {e}"),
    }
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
