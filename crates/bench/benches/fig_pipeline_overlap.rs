//! Pipeline overlap: epoch wall-time of the sequential disk trainer versus the
//! staged `marius-pipeline` runtime on the same medium link-prediction
//! workload. The sequential path pays `IO + sample + compute` per epoch; the
//! pipelined path overlaps the three stages and should land near their max —
//! the target for this harness is pipelined < 0.9× sequential wall time.

use marius_bench::{header, seconds, write_bench_json};
use marius_core::{
    DiskConfig, ExperimentReport, LinkPredictionTask, ModelConfig, PipelineConfig, TrainConfig,
    Trainer,
};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_storage::IoCostModel;
use std::time::Duration;

fn trainer() -> Trainer<LinkPredictionTask> {
    // Two GraphSage layers so CPU-side DENSE sampling carries real weight, as
    // it does for the paper's node-classification configurations.
    let mut model = ModelConfig::paper_link_prediction_graphsage(8).shrunk(8, 8);
    model.num_layers = 2;
    model.fanouts = vec![25, 20];
    let mut train = TrainConfig::quick(3, 91);
    train.batch_size = 256;
    train.num_negatives = 32;
    train.eval_negatives = 64;
    // Measure against the paper's EBS-like volume (emulated), not the local
    // page cache: the pipeline's job is to hide device latency.
    Trainer::new(model, train).with_emulated_device(IoCostModel::ebs_gp3())
}

fn total_train_time(report: &ExperimentReport) -> Duration {
    report.epochs.iter().map(|e| e.epoch_time).sum()
}

fn main() {
    header("Pipeline overlap: sequential vs pipelined disk epochs (COMET, p=16, c=4)");
    let spec = DatasetSpec::fb15k_237().scaled(0.25);
    let data = ScaledDataset::generate(&spec, 91);
    println!(
        "dataset: {} nodes, {} train edges, {} relations\n",
        data.num_nodes(),
        data.train_edges.len(),
        spec.num_relations
    );
    let disk = DiskConfig::comet(16, 4);

    let sequential = trainer().train_disk(&data, &disk).expect("disk training");
    let pipelined = trainer()
        .with_pipeline(PipelineConfig {
            enabled: true,
            num_sampling_workers: 2,
            queue_depth: 4,
            prefetch_depth: 3,
        })
        .train_disk(&data, &disk)
        .expect("disk training");

    println!(
        "{:<12} {:>8} {:>9} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "path", "epoch", "wall_s", "sample_s", "comp_s", "wait_s", "stall_s", "overlap"
    );
    for (label, report) in [("sequential", &sequential), ("pipelined", &pipelined)] {
        for e in &report.epochs {
            println!(
                "{:<12} {:>8} {:>9} {:>10} {:>9} {:>9} {:>9} {:>8.2}",
                label,
                e.epoch,
                seconds(e.epoch_time),
                seconds(e.sample_time),
                seconds(e.compute_time),
                seconds(e.io_wait_time),
                seconds(e.stall_time),
                e.overlap,
            );
        }
    }

    let seq_total = total_train_time(&sequential);
    let pipe_total = total_train_time(&pipelined);
    let ratio = pipe_total.as_secs_f64() / seq_total.as_secs_f64().max(1e-9);
    println!(
        "\nsequential total: {} s | pipelined total: {} s | ratio: {:.3}x (target < 0.9x)",
        seconds(seq_total),
        seconds(pipe_total),
        ratio
    );
    println!(
        "loss trajectories identical: {}",
        sequential
            .epochs
            .iter()
            .zip(&pipelined.epochs)
            .all(|(a, b)| a.loss == b.loss)
    );
    write_bench_json(
        "fig_pipeline_overlap",
        &[("sequential", &sequential), ("pipelined", &pipelined)],
    );
    if ratio < 0.9 {
        println!(
            "RESULT: PASS — pipelining hides {:.0}% of epoch time",
            (1.0 - ratio) * 100.0
        );
    } else {
        println!("RESULT: FAIL — overlap target not met");
    }
}
