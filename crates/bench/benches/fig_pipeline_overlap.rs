//! Pipeline overlap: epoch wall-time of the sequential disk trainer versus the
//! staged `marius-pipeline` runtime on the same medium link-prediction
//! workload. The sequential path pays `IO + sample + compute` per epoch; the
//! pipelined path overlaps prefetch, sampling, compute and (since the
//! asynchronous double-buffered write-back) eviction IO, and should land near
//! their max — the target for this harness is pipelined < 0.9× sequential
//! wall time. The `wb_s` column is the time the stage-4 drain spent writing
//! evicted dirty partitions *off* the compute path; on the sequential rows
//! that work is inline and buried in `wall_s`.
//!
//! Set `MARIUS_BENCH_SMOKE=1` to run a tiny configuration (CI smoke job that
//! uploads `BENCH_fig_pipeline_overlap.json` as a perf-trajectory artifact).

use marius_bench::{header, seconds, write_bench_json, write_telemetry_artifacts};
use marius_core::{
    DiskConfig, ExperimentReport, LinkPredictionTask, ModelConfig, PipelineConfig, TrainConfig,
    Trainer,
};
use marius_graph::datasets::{DatasetSpec, ScaledDataset};
use marius_storage::IoCostModel;
use marius_telemetry::Telemetry;
use std::time::Duration;

fn smoke() -> bool {
    std::env::var("MARIUS_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn trainer(epochs: usize) -> Trainer<LinkPredictionTask> {
    // Two GraphSage layers so CPU-side DENSE sampling carries real weight, as
    // it does for the paper's node-classification configurations.
    let mut model = ModelConfig::paper_link_prediction_graphsage(8).shrunk(8, 8);
    model.num_layers = 2;
    model.fanouts = vec![25, 20];
    let mut train = TrainConfig::quick(epochs, 91);
    train.batch_size = 256;
    train.num_negatives = 32;
    train.eval_negatives = 64;
    // Measure against the paper's EBS-like volume (emulated), not the local
    // page cache: the pipeline's job is to hide device latency.
    Trainer::new(model, train).with_emulated_device(IoCostModel::ebs_gp3())
}

fn total_train_time(report: &ExperimentReport) -> Duration {
    report.epochs.iter().map(|e| e.epoch_time).sum()
}

fn main() {
    header("Pipeline overlap: sequential vs pipelined disk epochs (COMET, p=16, c=4)");
    let (scale, epochs) = if smoke() { (0.04, 2) } else { (0.25, 3) };
    let spec = DatasetSpec::fb15k_237().scaled(scale);
    let data = ScaledDataset::generate(&spec, 91);
    println!(
        "dataset: {} nodes, {} train edges, {} relations{}\n",
        data.num_nodes(),
        data.train_edges.len(),
        spec.num_relations,
        if smoke() { " (smoke config)" } else { "" }
    );
    let disk = DiskConfig::comet(16, 4);

    let pipe_config = PipelineConfig {
        enabled: true,
        num_sampling_workers: 2,
        queue_depth: 4,
        prefetch_depth: 3,
        ..PipelineConfig::default()
    };

    let sequential = trainer(epochs)
        .train_disk(&data, &disk)
        .expect("disk training");
    // The PR 2-equivalent pipeline: prefetch and sampling overlap compute,
    // but eviction write-backs are still paid inline during the swap.
    let pipelined_sync = trainer(epochs)
        .with_pipeline(PipelineConfig {
            synchronous_writeback: true,
            ..pipe_config.clone()
        })
        .train_disk(&data, &disk)
        .expect("disk training");
    // The fully asynchronous pipeline runs instrumented: per-stage spans and
    // queue/buffer/retry metrics export next to the BENCH json. Telemetry
    // reads only monotonic clocks, so the trajectory-identity check below
    // still compares this run against the two uninstrumented ones.
    let telemetry = Telemetry::enabled();
    let pipelined = trainer(epochs)
        .with_telemetry(&telemetry)
        .with_pipeline(pipe_config)
        .train_disk(&data, &disk)
        .expect("disk training");

    println!(
        "{:<12} {:>8} {:>9} {:>10} {:>9} {:>9} {:>9} {:>7} {:>8}",
        "path", "epoch", "wall_s", "sample_s", "comp_s", "wait_s", "stall_s", "wb_s", "overlap"
    );
    for (label, report) in [
        ("sequential", &sequential),
        ("pipe-syncwb", &pipelined_sync),
        ("pipelined", &pipelined),
    ] {
        for e in &report.epochs {
            println!(
                "{:<12} {:>8} {:>9} {:>10} {:>9} {:>9} {:>9} {:>7} {:>8.2}",
                label,
                e.epoch,
                seconds(e.epoch_time),
                seconds(e.sample_time),
                seconds(e.compute_time),
                seconds(e.io_wait_time),
                seconds(e.stall_time),
                seconds(e.writeback_time),
                e.overlap,
            );
        }
    }
    let wb_total: Duration = pipelined.epochs.iter().map(|e| e.writeback_time).sum();
    println!(
        "\nstage-4 drain wrote {} s of evicted partitions off the compute stage \
         (the sync-WB oracle pays the same IO inline during its swaps)",
        seconds(wb_total)
    );

    let seq_total = total_train_time(&sequential);
    let sync_total = total_train_time(&pipelined_sync);
    let pipe_total = total_train_time(&pipelined);
    let ratio = pipe_total.as_secs_f64() / seq_total.as_secs_f64().max(1e-9);
    let wb_ratio = pipe_total.as_secs_f64() / sync_total.as_secs_f64().max(1e-9);
    println!(
        "\nsequential total: {} s | pipelined (sync WB): {} s | pipelined: {} s",
        seconds(seq_total),
        seconds(sync_total),
        seconds(pipe_total),
    );
    println!(
        "pipelined/sequential: {ratio:.3}x (target < 0.9x) | async/sync write-back: {wb_ratio:.3}x (target < 1.0x)"
    );
    println!(
        "loss trajectories identical: {}",
        sequential
            .epochs
            .iter()
            .zip(&pipelined.epochs)
            .zip(&pipelined_sync.epochs)
            .all(|((a, b), c)| a.loss == b.loss && a.loss == c.loss)
    );
    write_bench_json(
        "fig_pipeline_overlap",
        &[
            ("sequential", &sequential),
            ("pipelined_sync_writeback", &pipelined_sync),
            ("pipelined", &pipelined),
        ],
    );
    write_telemetry_artifacts("fig_pipeline_overlap", &telemetry);
    if smoke() {
        // The smoke config exists to record the perf trajectory in CI, where
        // the workload is too small for the ratios to be meaningful targets.
        println!("RESULT: SMOKE — trajectory recorded, targets not asserted");
    } else if ratio < 0.9 && wb_ratio < 1.0 {
        println!(
            "RESULT: PASS — pipelining hides {:.0}% of epoch time; async write-back \
             shaves a further {:.0}% off the sync-WB pipeline",
            (1.0 - ratio) * 100.0,
            (1.0 - wb_ratio) * 100.0
        );
    } else {
        println!("RESULT: FAIL — overlap or write-back target not met");
    }
}
