//! Staged, multi-threaded training runtime that overlaps disk IO, CPU batch
//! construction, and model compute (`marius-pipeline`).
//!
//! The sequential out-of-core trainer pays `IO + sample + compute` per epoch
//! because every partition swap, every DENSE neighbourhood sample, and every
//! forward/backward step runs on one thread. This crate turns the epoch into a
//! four-stage pipeline so the wall time approaches
//! `max(IO, sample, compute)` — the paper's core systems claim:
//!
//! ```text
//!             EpochPlan (replacement policy: COMET / BETA / node-cache)
//!                 │ steps S₁ … Sₙ
//!                 ▼
//!  ┌──────────────────────────┐   StepIn (partitions + bucket edges
//!  │ Stage 1: prefetcher      │   + subgraph + candidates)
//!  │ (1 thread)               ├──────────────┐  bounded, depth =
//!  │ reads PartitionStore     │              │  `prefetch_depth`
//!  │ ahead of the consumer    │              ▼
//!  └──────────────────────────┘   ┌──────────────────────────┐
//!        ▲ waits for              │ Stage 2: batch builders  │
//!        │ `writeback ≥ e`       │ (`num_sampling_workers`  │
//!        │ (e = the partition's   │  threads)                │
//!        │ last eviction) before  │ shuffle + negative       │
//!        │ re-reading its file    │ sampling + DENSE         │
//!        │                        │ multi-hop sampling       │
//!        │                        └────────────┬─────────────┘
//!        │                                     │ StepOut::{Begin,Batch,End}
//!        │                                     │ bounded, depth = `queue_depth`
//!        │                                     ▼
//!  ┌─────┴────────────────────────────────────────────────────┐
//!  │ Stage 3: compute consumer (the calling thread)           │
//!  │ installs prefetched partitions into the PartitionBuffer, │
//!  │ detaching evicted dirty partitions (a second buffer      │
//!  │ generation), publishes `swap = s`, and applies           │
//!  │ train_prepared / optimizer updates — no disk IO at all   │
//!  └───────────┬──────────────────────────────────────────────┘
//!              │ (step, Vec<EvictedPartition>)
//!              │ bounded, depth = `writeback_depth`
//!              ▼
//!  ┌──────────────────────────────────────────────────────────┐
//!  │ Stage 4: write-back drain (1 thread)                     │
//!  │ waits for `swap ≥ s`, writes the step's detached dirty   │
//!  │ partitions to the PartitionStore, marks them drained in  │
//!  │ the WritebackLedger, publishes `writeback = s`           │
//!  └──────────────────────────────────────────────────────────┘
//! ```
//!
//! The transition clock carries **two** step watermarks. `swap` — the
//! highest step whose buffer swap has completed — is published by the
//! consumer the moment the step's partitions are installed (batches may flow
//! and the write-back lane may drain that step's detached generation).
//! `writeback` — the highest step whose detached evictions are durably on
//! disk — is published by the drain and is what the partition prefetcher
//! waits on before re-reading an evicted partition's file. Splitting the two
//! is what removes the last synchronous disk IO from stage 3: under the old
//! single watermark, eviction writes had to finish inside the swap.
//!
//! # Queue semantics
//!
//! Every edge between stages is a bounded blocking queue: producers block when
//! the queue is full (back-pressure keeps memory bounded by
//! `prefetch_depth`/`queue_depth`), consumers block when it is empty, and both
//! directions account their blocked time so [`PipelineReport`] can attribute
//! stalls to the stage that caused them. Steps are distributed round-robin
//! across batch-builder workers (step `s` is owned by worker `s % W`), each
//! worker preserves within-step batch order, and the consumer drains worker
//! queues in step order — so batches reach the model in exactly the
//! deterministic `(step, batch)` order of the sequential trainer.
//!
//! # Determinism
//!
//! All randomness consumed inside the pipeline (shuffling, negative sampling,
//! DENSE multi-hop sampling) is drawn from per-step RNGs seeded with
//! [`step_seed`]`(epoch_seed, step)`. The sequential fallback in `marius-core`
//! uses the same derivation, so for any worker count a pipelined epoch
//! reproduces the sequential loss trajectory bit-for-bit — the sequential path
//! is the determinism oracle for this crate.
//!
//! # Write-back correctness
//!
//! A partition may be evicted at step `e` and re-loaded at a later step `s`.
//! The prefetcher must not read its file until the write-back drain has
//! landed the detached copy, so it waits for `writeback ≥ e` before issuing
//! the read. Epoch end and abort both drain the write-back queue completely
//! before `run_epoch` returns (the drain keeps writing even after an abort),
//! so no detached update is ever lost and `PartitionBuffer::flush` finds the
//! ledger empty. Edge-bucket files are immutable during an epoch and are
//! prefetched without synchronisation.

use marius_graph::{Edge, InMemorySubgraph, NodeId, PartitionId};
use marius_storage::{EvictedPartition, PartitionBuffer, Result, StorageError};
use marius_telemetry::{Histogram, Telemetry, NO_LABEL};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

pub use marius_storage::EpochPlan;

/// Configuration of the staged training runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Whether the pipelined runtime is used at all; `false` selects the
    /// sequential fallback path in the trainers (the determinism oracle).
    pub enabled: bool,
    /// Number of stage-2 batch-construction worker threads.
    pub num_sampling_workers: usize,
    /// Capacity of each worker→consumer batch queue.
    pub queue_depth: usize,
    /// Capacity of each prefetcher→worker step queue: how many partition-set
    /// steps of embedding/bucket data may sit in memory ahead of the consumer,
    /// per worker.
    pub prefetch_depth: usize,
    /// Capacity of the consumer→drain write-back queue: how many steps'
    /// detached dirty partitions (extra buffer generations) may await their
    /// disk write-back before the consumer blocks. Bounds the memory held by
    /// in-flight evictions to `writeback_depth` generations.
    pub writeback_depth: usize,
    /// Debug/measurement oracle: when `true`, evicted dirty partitions are
    /// written back *inline* during the swap (the pre-double-buffering
    /// behaviour) instead of being detached to the stage-4 drain. Training
    /// output is identical either way; benches use this to measure what the
    /// asynchronous write-back buys.
    pub synchronous_writeback: bool,
}

impl PipelineConfig {
    /// A disabled configuration (sequential fallback).
    pub fn disabled() -> Self {
        PipelineConfig {
            enabled: false,
            ..PipelineConfig::default()
        }
    }

    /// An enabled configuration with `workers` sampling workers.
    pub fn with_workers(workers: usize) -> Self {
        PipelineConfig {
            enabled: true,
            num_sampling_workers: workers.max(1),
            ..PipelineConfig::default()
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            enabled: false,
            num_sampling_workers: 2,
            queue_depth: 4,
            prefetch_depth: 2,
            writeback_depth: 2,
            synchronous_writeback: false,
        }
    }
}

/// Blocks until the buffer's write-back ledger is empty — the pipeline's
/// checkpoint safe point.
///
/// The `writeback` watermark (stage 4) trails the `swap` watermark by design:
/// between the two, evicted dirty partitions live only as detached in-memory
/// generations and the corresponding files on disk are stale. A
/// `PartitionStore::snapshot_to` taken inside that window would capture the
/// stale bytes and silently lose training updates. `run_epoch` drains the
/// write-back queue completely before returning (even on abort), so at every
/// epoch boundary this returns immediately; it exists so checkpoint writers
/// can *assert* the safe point instead of assuming it, and so future partial
/// (mid-epoch) checkpoints have a primitive that waits for `writeback` to
/// catch up with `swap`. The streaming ingest path (`marius-stream`) asserts
/// it for the same reason before applying staged edge deltas at an epoch
/// boundary: growing a bucket is only safe once its file and its in-memory
/// contents agree.
///
/// Errors only if a peer thread panicked while the ledger was locked (see
/// `WritebackLedger::wait_drained`) — a typed error rather than a cascading
/// panic.
pub fn writeback_safe_point(buffer: &PartitionBuffer) -> Result<()> {
    buffer.writeback_ledger().wait_drained()
}

/// Structured description of a failed pipeline stage, produced by the
/// supervision layer wrapped around every stage thread.
///
/// Each stage body runs under [`std::panic::catch_unwind`]; a panic — or a
/// storage error that survived the store's retry budget — is converted into
/// a `PipelineError`, the transition clock is aborted, every queue is
/// closed, the write-back ledger is drained to a safe point, and the error
/// surfaces from `Pipeline::run_epoch` as
/// [`StorageError::Pipeline`] (via the [`From`] impl) so trainers and
/// sessions observe one typed error instead of a deadlock or a poisoned
/// lock.
#[derive(Debug, Clone)]
pub struct PipelineError {
    /// The stage that failed: `"context-prefetch"`, `"partition-prefetch"`,
    /// `"batch-worker"`, `"compute"`, or `"writeback-drain"`.
    pub stage: &'static str,
    /// Root-cause description (panic payload or storage error text).
    pub reason: String,
    /// `true` when the stage panicked; `false` when it returned a typed
    /// error.
    pub panicked: bool,
}

impl PipelineError {
    /// Describes a stage that panicked with `payload`.
    fn panicked(stage: &'static str, payload: &(dyn std::any::Any + Send)) -> Self {
        let reason = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        PipelineError {
            stage,
            reason,
            panicked: true,
        }
    }

    /// Attributes a storage error to the stage that raised it. Errors that
    /// already carry a stage (nested pipeline errors) keep their original
    /// attribution.
    fn wrap(stage: &'static str, e: StorageError) -> StorageError {
        match e {
            StorageError::Pipeline { .. } => e,
            e => StorageError::Pipeline {
                stage: stage.to_string(),
                reason: e.to_string(),
            },
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = if self.panicked { "panicked" } else { "failed" };
        write!(f, "pipeline stage '{}' {kind}: {}", self.stage, self.reason)
    }
}

impl From<PipelineError> for StorageError {
    fn from(e: PipelineError) -> Self {
        StorageError::Pipeline {
            stage: e.stage.to_string(),
            reason: if e.panicked {
                format!("panicked: {}", e.reason)
            } else {
                e.reason
            },
        }
    }
}

/// Derives the RNG seed for one plan step of one epoch (SplitMix64 over the
/// epoch seed and step index). Shared by the pipelined runtime and the
/// sequential fallback so both consume randomness identically.
pub fn step_seed(epoch_seed: u64, step: u64) -> u64 {
    let mut z = epoch_seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(step.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Everything a batch-construction worker (and the consumer) needs to know
/// about one plan step, assembled by the prefetcher.
pub struct StepContext {
    /// Step index within the epoch plan.
    pub step: usize,
    /// Physical partitions resident during this step, in plan order.
    pub set: Vec<PartitionId>,
    /// Node ids of the resident partitions in ascending-partition order —
    /// identical to `PartitionBuffer::resident_nodes` after the swap, so
    /// negative sampling draws from the same candidate list as the sequential
    /// path.
    pub candidates: Vec<NodeId>,
    /// The in-memory subgraph over the step's edge buckets (read in the same
    /// `set × set` order the sequential `load_set` uses).
    pub subgraph: Arc<InMemorySubgraph>,
}

/// Payload flowing from the context prefetcher to a worker.
struct StepIn {
    ctx: Arc<StepContext>,
    /// Concatenated bucket edges, handed to the buffer on install.
    edges: Vec<Edge>,
}

/// One newly read partition: `(id, embedding values, optimizer state)`.
type PartitionPayload = (PartitionId, Vec<f32>, Vec<f32>);

/// The partitions to install for one step — the ones not resident when the
/// step begins. Flows from the partition prefetcher straight to the consumer,
/// in step order.
type StepParts = (usize, Vec<PartitionPayload>);

/// Items flowing from a worker to the consumer.
enum StepOut<B> {
    /// Step boundary: the consumer swaps the buffer to `ctx.set` using the
    /// separately prefetched partition payload (no disk reads on the critical
    /// path).
    Begin {
        ctx: Arc<StepContext>,
        edges: Vec<Edge>,
    },
    /// One constructed training batch.
    Batch(B),
    /// The step produced all of its batches.
    End,
    /// A storage error encountered upstream; aborts the epoch.
    Err(StorageError),
}

/// A blocking bounded queue with stall accounting and cooperative shutdown.
///
/// Lock poisoning: stage panics are caught at the stage boundary before any
/// queue call unwinds, and every critical section here is a handful of
/// `VecDeque` operations that cannot be observed half-done — so a poisoned
/// lock (a peer thread killed mid-section by something unforeseen) is
/// recovered rather than cascading the panic into every stage that shares
/// the queue. The supervision layer surfaces the original panic as a typed
/// error.
struct BoundedQueue<T> {
    inner: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Post-push occupancy samples (a disabled no-op handle unless the
    /// pipeline was built with telemetry).
    depth: Histogram,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    #[cfg(test)]
    fn new(capacity: usize) -> Self {
        Self::with_depth(capacity, Histogram::default())
    }

    fn with_depth(capacity: usize, depth: Histogram) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            depth,
        }
    }

    /// Pushes `item`, blocking while full. Returns the time spent blocked, or
    /// `None` if the queue was closed (the item is dropped).
    fn push(&self, item: T) -> Option<Duration> {
        let start = Instant::now();
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        while state.items.len() >= self.capacity && !state.closed {
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        if state.closed {
            return None;
        }
        state.items.push_back(item);
        let occupancy = state.items.len() as u64;
        drop(state);
        self.depth.record(occupancy);
        self.not_empty.notify_one();
        Some(start.elapsed())
    }

    /// Pops an item, blocking while empty. Returns `None` once the queue is
    /// closed *and* drained; otherwise the item and the time spent blocked.
    fn pop(&self) -> Option<(T, Duration)> {
        let start = Instant::now();
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some((item, start.elapsed()));
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: blocked producers drop their items, blocked consumers
    /// drain what is left and then observe the end of the stream.
    fn close(&self) {
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        drop(state);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A monotone step watermark one stage publishes and others wait on.
struct Watermark {
    done: Mutex<i64>,
    advanced: Condvar,
}

impl Watermark {
    fn new() -> Self {
        Watermark {
            done: Mutex::new(-1),
            advanced: Condvar::new(),
        }
    }

    fn publish(&self, step: i64) {
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        *done = (*done).max(step);
        drop(done);
        self.advanced.notify_all();
    }

    /// Blocks until the watermark reaches `step` (or `abort` is raised).
    /// Returns the time spent blocked.
    fn wait_for(&self, step: i64, abort: &AtomicBool) -> Duration {
        let start = Instant::now();
        let mut done = self.done.lock().unwrap_or_else(PoisonError::into_inner);
        while *done < step && !abort.load(Ordering::Relaxed) {
            done = self
                .advanced
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
        start.elapsed()
    }
}

/// The step-transition clock the pipeline's stages synchronise on. The single
/// watermark of the inline-write-back design is split in two:
///
/// * `swap` — highest step whose buffer swap has completed (its partitions
///   are installed, its batches may be consumed, and its detached evictions
///   may be drained);
/// * `writeback` — highest step whose detached dirty evictions are durably
///   on disk (the partition prefetcher may re-read their files).
///
/// `writeback` trails `swap`; the gap between the two is exactly the window
/// in which a second generation of evicted buffers is alive off the compute
/// path.
struct TransitionClock {
    swap: Watermark,
    writeback: Watermark,
    abort: AtomicBool,
}

impl TransitionClock {
    fn new() -> Self {
        TransitionClock {
            swap: Watermark::new(),
            writeback: Watermark::new(),
            abort: AtomicBool::new(false),
        }
    }

    fn abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
        self.swap.advanced.notify_all();
        self.writeback.advanced.notify_all();
    }
}

/// Nanosecond busy/stall accounting shared across threads.
#[derive(Default)]
struct StageClocks {
    prefetch_busy: AtomicU64,
    prefetch_stall: AtomicU64,
    sample_busy: AtomicU64,
    sample_stall: AtomicU64,
    writeback_busy: AtomicU64,
    writeback_stall: AtomicU64,
    writeback_parts: AtomicU64,
}

fn add_nanos(cell: &AtomicU64, d: Duration) {
    cell.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
}

fn nanos(cell: &AtomicU64) -> Duration {
    Duration::from_nanos(cell.load(Ordering::Relaxed))
}

/// Occupancy buckets for the `pipeline.queue_depth.*` histograms: inclusive
/// upper bounds, wide enough for any practical `queue_depth` configuration.
const QUEUE_DEPTH_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64];

/// Per-stage occupancy and stall counters for one pipelined epoch.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Plan steps executed.
    pub steps: usize,
    /// Training batches that flowed through stage 3.
    pub batches: usize,
    /// Partitions read from disk by the prefetcher.
    pub partition_loads: usize,
    /// Stage-1 time spent reading the store and building subgraphs.
    pub prefetch_busy: Duration,
    /// Stage-1 time blocked on back-pressure or write-back dependencies.
    pub prefetch_stall: Duration,
    /// Stage-2 time spent constructing batches (shuffle/negatives/DENSE).
    pub sample_busy: Duration,
    /// Stage-2 time blocked on empty input or full output queues.
    pub sample_stall: Duration,
    /// Stage-3 time spent in buffer swaps and compute. Eviction write-backs
    /// are detached to stage 4, so (unlike earlier revisions) no disk IO is
    /// accounted here.
    pub compute_busy: Duration,
    /// Stage-3 time blocked waiting for upstream stages or for write-back
    /// back-pressure (the drain's bounded queue being full).
    pub compute_stall: Duration,
    /// Stage-4 time spent writing detached dirty partitions to the store.
    pub writeback_busy: Duration,
    /// Stage-4 time blocked waiting for evictions to drain (idle lane).
    pub writeback_stall: Duration,
    /// Dirty partitions drained asynchronously by stage 4.
    pub partitions_written_back: usize,
    /// Wall-clock duration of the epoch.
    pub wall_time: Duration,
}

impl PipelineReport {
    /// Ratio of summed per-stage busy time to wall time. Values near 1.0 mean
    /// the stages effectively ran sequentially; values above 1.0 quantify how
    /// much work the pipeline overlapped.
    pub fn overlap_ratio(&self) -> f64 {
        let busy = self.prefetch_busy + self.sample_busy + self.compute_busy + self.writeback_busy;
        if self.wall_time.is_zero() {
            return 0.0;
        }
        busy.as_secs_f64() / self.wall_time.as_secs_f64()
    }
}

/// Per-step load schedule derived from the plan and the buffer's residency at
/// epoch start.
struct StepIoPlan {
    /// Partitions to read for each step (in set order).
    loads: Vec<Vec<PartitionId>>,
    /// For each step, the latest earlier step whose transition must complete
    /// before the loads may be read (-1 when unconstrained).
    read_after: Vec<i64>,
}

fn plan_step_io(plan: &EpochPlan, initial_resident: &[PartitionId]) -> StepIoPlan {
    let mut resident: Vec<PartitionId> = initial_resident.to_vec();
    let mut last_evicted: HashMap<PartitionId, i64> = HashMap::new();
    let mut loads = Vec::with_capacity(plan.partition_sets.len());
    let mut read_after = Vec::with_capacity(plan.partition_sets.len());
    for (s, set) in plan.partition_sets.iter().enumerate() {
        let step_loads: Vec<PartitionId> = set
            .iter()
            .copied()
            .filter(|p| !resident.contains(p))
            .collect();
        let dep = step_loads
            .iter()
            .filter_map(|p| last_evicted.get(p).copied())
            .max()
            .unwrap_or(-1);
        for p in &resident {
            if !set.contains(p) {
                last_evicted.insert(*p, s as i64);
            }
        }
        resident = set.clone();
        loads.push(step_loads);
        read_after.push(dep);
    }
    StepIoPlan { loads, read_after }
}

/// The staged training runtime. See the crate docs for the stage diagram.
pub struct Pipeline {
    config: PipelineConfig,
    telemetry: Telemetry,
}

impl Pipeline {
    /// Creates a runtime with the given configuration (telemetry disabled).
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline {
            config,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry recorder: every stage thread records spans under
    /// its own track, every bounded queue samples its occupancy into a
    /// `pipeline.queue_depth.*` histogram, and `run_epoch` mirrors the
    /// [`PipelineReport`] aggregates into `pipeline.*` counters. A disabled
    /// handle restores the zero-overhead default.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs one training epoch over `plan`, overlapping partition prefetch,
    /// batch construction, and compute.
    ///
    /// * `buffer` — the partition buffer; its store is read by the prefetcher
    ///   and its resident set is swapped by the consumer as steps complete.
    /// * `epoch_seed` — all in-epoch randomness derives from
    ///   [`step_seed`]`(epoch_seed, step)`, making the epoch reproducible for
    ///   any worker count.
    /// * `make_batches` — stage-2 body: builds one step's training batches,
    ///   handing each to the sink (which blocks under back-pressure). Runs on
    ///   worker threads, once per step.
    /// * `consume` — stage-3 body: applies one batch to the model. Runs on the
    ///   calling thread, after the step's partitions are installed in
    ///   `buffer`.
    pub fn run_epoch<B, MB, CB>(
        &self,
        plan: &EpochPlan,
        buffer: &mut PartitionBuffer,
        epoch_seed: u64,
        make_batches: MB,
        mut consume: CB,
    ) -> Result<PipelineReport>
    where
        B: Send,
        MB: Fn(&StepContext, &mut StdRng, &mut dyn FnMut(B)) + Sync,
        CB: FnMut(&mut PartitionBuffer, &StepContext, B),
    {
        let epoch_start = Instant::now();
        let num_steps = plan.partition_sets.len();
        let mut report = PipelineReport {
            steps: num_steps,
            ..PipelineReport::default()
        };
        if num_steps == 0 {
            report.wall_time = epoch_start.elapsed();
            self.mirror_report(&report);
            return Ok(report);
        }

        let workers = self.config.num_sampling_workers.max(1);
        let io_plan = plan_step_io(plan, &buffer.resident_partitions());
        let store = buffer.store().clone();
        let assignment = buffer.assignment().clone();

        let telemetry = &self.telemetry;
        // Queue-occupancy histograms, sampled after every push. All workers'
        // step (and batch) queues share one histogram by name, so the export
        // shows the stage edge, not the individual worker lane.
        let qd = |name: &str| telemetry.histogram(name, QUEUE_DEPTH_BOUNDS);
        let step_queues: Vec<BoundedQueue<StepIn>> = (0..workers)
            .map(|_| {
                BoundedQueue::with_depth(
                    self.config.prefetch_depth,
                    qd("pipeline.queue_depth.step"),
                )
            })
            .collect();
        let batch_queues: Vec<BoundedQueue<StepOut<B>>> = (0..workers)
            .map(|_| {
                BoundedQueue::with_depth(self.config.queue_depth, qd("pipeline.queue_depth.batch"))
            })
            .collect();
        let parts_queue: BoundedQueue<Result<StepParts>> = BoundedQueue::with_depth(
            self.config.prefetch_depth.max(1),
            qd("pipeline.queue_depth.parts"),
        );
        // Consumer → write-back drain: one item per step, even when the step
        // evicted nothing, so the `writeback` watermark advances in step
        // order and every re-read dependency eventually unblocks.
        let wb_queue: BoundedQueue<(usize, Vec<EvictedPartition>)> = BoundedQueue::with_depth(
            self.config.writeback_depth.max(1),
            qd("pipeline.queue_depth.writeback"),
        );
        let ledger = buffer.writeback_ledger();
        let clock = TransitionClock::new();
        let clocks = StageClocks::default();
        // First stage failure recorded by the supervision layer (a panic or
        // a typed error caught at a stage boundary). The first entry wins:
        // later failures are cascades of the aborted shutdown it triggers.
        let failure: Mutex<Option<PipelineError>> = Mutex::new(None);
        let record_failure = |err: PipelineError| {
            let mut slot = failure.lock().unwrap_or_else(PoisonError::into_inner);
            slot.get_or_insert(err);
            drop(slot);
            clock.abort();
        };

        let consumer_result: Result<()> = std::thread::scope(|scope| {
            let record_failure = &record_failure;
            // ---- Stage 1a: the context prefetcher thread. ----------------
            // Bucket files are immutable during the epoch, so step contexts
            // (edges, subgraph, candidates) can be read arbitrarily far ahead
            // of the consumer — this is what lets stage-2 workers start
            // sampling future steps while earlier steps still compute.
            let ctx_handle = {
                let step_queues = &step_queues;
                let batch_queues = &batch_queues;
                let clock = &clock;
                let clocks = &clocks;
                let store = &store;
                let assignment = &assignment;
                scope.spawn(move || {
                    let mut span = telemetry.scope("context-prefetch");
                    let span = &mut span;
                    let body = || {
                        'steps: for (s, set) in plan.partition_sets.iter().enumerate() {
                            if clock.abort.load(Ordering::Relaxed) {
                                break 'steps;
                            }
                            span.begin("context-prefetch.step", s as i64, NO_LABEL);
                            let busy_start = Instant::now();
                            let step_in = (|| -> Result<StepIn> {
                                // Read the buckets in the same set × set order
                                // `load_set` uses so the subgraph (and therefore
                                // sampling) is identical to the sequential path's.
                                let mut edges: Vec<Edge> = Vec::new();
                                for &i in set {
                                    for &j in set {
                                        edges.extend_from_slice(&store.read_bucket(i, j)?);
                                    }
                                }
                                let subgraph = Arc::new(InMemorySubgraph::from_edges(&edges));
                                let mut sorted_set = set.clone();
                                sorted_set.sort_unstable();
                                let mut candidates = Vec::new();
                                for &p in &sorted_set {
                                    candidates.extend_from_slice(assignment.nodes_in(p));
                                }
                                Ok(StepIn {
                                    ctx: Arc::new(StepContext {
                                        step: s,
                                        set: set.clone(),
                                        candidates,
                                        subgraph,
                                    }),
                                    edges,
                                })
                            })();
                            add_nanos(&clocks.prefetch_busy, busy_start.elapsed());
                            span.end();
                            match step_in {
                                Ok(item) => match step_queues[s % workers].push(item) {
                                    Some(waited) => add_nanos(&clocks.prefetch_stall, waited),
                                    None => break 'steps, // closed: epoch aborted
                                },
                                Err(e) => {
                                    // Surface the error through the worker queue
                                    // that owns this step so the consumer sees it
                                    // in order, then stop prefetching.
                                    batch_queues[s % workers].push(StepOut::Err(
                                        PipelineError::wrap("context-prefetch", e),
                                    ));
                                    break 'steps;
                                }
                            }
                        }
                    };
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                        record_failure(PipelineError::panicked(
                            "context-prefetch",
                            payload.as_ref(),
                        ));
                    }
                    // Close on every exit path (including aborts raised by
                    // another stage, and panics caught above) so the stage-2
                    // workers never block on a producer that has stopped.
                    for q in step_queues.iter() {
                        q.close();
                    }
                })
            };

            // ---- Stage 1b: the partition prefetcher thread. --------------
            // Partition files are rewritten by the write-back drain after an
            // eviction, so each read waits for the *write-back* watermark to
            // pass the partition's last eviction before it is issued: only
            // then are the file's bytes the evicted generation's, not stale.
            let parts_handle = {
                let parts_queue = &parts_queue;
                let clock = &clock;
                let clocks = &clocks;
                let io_plan = &io_plan;
                let store = &store;
                scope.spawn(move || {
                    let mut span = telemetry.scope("partition-prefetch");
                    let span = &mut span;
                    let body = || {
                        'steps: for s in 0..plan.partition_sets.len() {
                            if clock.abort.load(Ordering::Relaxed) {
                                break 'steps;
                            }
                            let dep = io_plan.read_after[s];
                            if dep >= 0 {
                                span.begin("partition-prefetch.wait-writeback", s as i64, NO_LABEL);
                                add_nanos(
                                    &clocks.prefetch_stall,
                                    clock.writeback.wait_for(dep, &clock.abort),
                                );
                                span.end();
                            }
                            if clock.abort.load(Ordering::Relaxed) {
                                break 'steps;
                            }
                            span.begin("partition-prefetch.step", s as i64, NO_LABEL);
                            let busy_start = Instant::now();
                            let parts = (|| -> Result<Vec<PartitionPayload>> {
                                let mut new_parts = Vec::with_capacity(io_plan.loads[s].len());
                                for &p in &io_plan.loads[s] {
                                    span.begin("partition-prefetch.read", s as i64, p as i64);
                                    let read = store.read_partition(p);
                                    span.end();
                                    let (values, state) = read?;
                                    new_parts.push((p, values, state));
                                }
                                Ok(new_parts)
                            })();
                            add_nanos(&clocks.prefetch_busy, busy_start.elapsed());
                            span.end();
                            let failed = parts.is_err();
                            let parts = parts
                                .map(|p| (s, p))
                                .map_err(|e| PipelineError::wrap("partition-prefetch", e));
                            match parts_queue.push(parts) {
                                Some(waited) => add_nanos(&clocks.prefetch_stall, waited),
                                None => break 'steps,
                            }
                            if failed {
                                break 'steps;
                            }
                        }
                    };
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                        record_failure(PipelineError::panicked(
                            "partition-prefetch",
                            payload.as_ref(),
                        ));
                    }
                    // Close on every exit path so the consumer never blocks
                    // on a prefetcher that has stopped.
                    parts_queue.close();
                })
            };

            // ---- Stage 4: the write-back drain thread. -------------------
            // Receives each step's detached dirty evictions from the consumer
            // and writes them to the store off the compute path. The drain
            // keeps writing even after an abort (losing detached updates, or
            // leaving stale bytes unannounced, would corrupt the store), and
            // only stops writing after a disk error of its own — from then on
            // it still marks payloads drained so nothing waits forever.
            let wb_handle = {
                let wb_queue = &wb_queue;
                let clock = &clock;
                let clocks = &clocks;
                let store = &store;
                let ledger = Arc::clone(&ledger);
                scope.spawn(move || -> Result<()> {
                    let mut span = telemetry.scope("writeback-drain");
                    let span = &mut span;
                    let body = || -> Option<StorageError> {
                        let mut first_err: Option<StorageError> = None;
                        while let Some(((step, evicted), waited)) = wb_queue.pop() {
                            add_nanos(&clocks.writeback_stall, waited);
                            // The payload is queued by the consumer after its swap
                            // publish, so this wait documents (and cheaply
                            // enforces) that the drain never runs ahead of the
                            // swap that detached its generation.
                            clock.swap.wait_for(step as i64, &clock.abort);
                            span.begin("writeback.step", step as i64, NO_LABEL);
                            let busy_start = Instant::now();
                            for part in &evicted {
                                if first_err.is_none() {
                                    span.begin("writeback.write", step as i64, part.id as i64);
                                    match store.write_partition(part.id, &part.values, &part.state)
                                    {
                                        Ok(()) => {
                                            clocks.writeback_parts.fetch_add(1, Ordering::Relaxed);
                                        }
                                        Err(e) => {
                                            first_err = Some(e);
                                            clock.abort();
                                        }
                                    }
                                    span.end();
                                }
                                ledger.mark_drained(part.id);
                            }
                            add_nanos(&clocks.writeback_busy, busy_start.elapsed());
                            span.end();
                            clock.writeback.publish(step as i64);
                        }
                        first_err
                    };
                    match catch_unwind(AssertUnwindSafe(body)) {
                        Ok(None) => Ok(()),
                        Ok(Some(e)) => Err(PipelineError::wrap("writeback-drain", e)),
                        Err(payload) => {
                            record_failure(PipelineError::panicked(
                                "writeback-drain",
                                payload.as_ref(),
                            ));
                            // The drain can no longer deliver its detached
                            // payloads. Keep the lane live in degraded mode:
                            // pop what remains, marking it drained and
                            // advancing the watermark so no peer blocks
                            // forever, then abandon anything still pending
                            // (the run has failed; those bytes are recovered
                            // from the last checkpoint, not this epoch).
                            while let Some(((step, evicted), _)) = wb_queue.pop() {
                                for part in &evicted {
                                    ledger.mark_drained(part.id);
                                }
                                clock.writeback.publish(step as i64);
                            }
                            ledger.abandon_pending();
                            Ok(())
                        }
                    }
                })
            };

            // ---- Stage 2: batch-construction workers. --------------------
            let mut worker_handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let in_q = &step_queues[w];
                let out_q = &batch_queues[w];
                let clocks = &clocks;
                let make_batches = &make_batches;
                let worker_label = format!("batch-worker-{w}");
                worker_handles.push(scope.spawn(move || {
                    let mut span = telemetry.scope(&worker_label);
                    let span = &mut span;
                    let body = || {
                        while let Some((step_in, waited)) = in_q.pop() {
                            add_nanos(&clocks.sample_stall, waited);
                            let StepIn { ctx, edges } = step_in;
                            // Publish the step boundary immediately so the consumer
                            // can swap the buffer while this worker still samples.
                            match out_q.push(StepOut::Begin {
                                ctx: Arc::clone(&ctx),
                                edges,
                            }) {
                                Some(waited) => add_nanos(&clocks.sample_stall, waited),
                                None => return,
                            }
                            let mut rng =
                                StdRng::seed_from_u64(step_seed(epoch_seed, ctx.step as u64));
                            span.begin("sample.step", ctx.step as i64, NO_LABEL);
                            let step_start = Instant::now();
                            let mut sink_wait = Duration::ZERO;
                            let mut closed = false;
                            let mut sink = |batch: B| match out_q.push(StepOut::Batch(batch)) {
                                Some(waited) => sink_wait += waited,
                                None => closed = true,
                            };
                            make_batches(&ctx, &mut rng, &mut sink);
                            let sink_wait = sink_wait;
                            add_nanos(
                                &clocks.sample_busy,
                                step_start.elapsed().saturating_sub(sink_wait),
                            );
                            add_nanos(&clocks.sample_stall, sink_wait);
                            span.end();
                            if closed {
                                return;
                            }
                            match out_q.push(StepOut::End) {
                                Some(waited) => add_nanos(&clocks.sample_stall, waited),
                                None => return,
                            }
                        }
                    };
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                        record_failure(PipelineError::panicked("batch-worker", payload.as_ref()));
                    }
                    // Idempotent: lets the consumer drain what was produced
                    // and then observe the end of this worker's stream.
                    out_q.close();
                }));
            }

            // ---- Stage 3: the compute consumer (this thread). ------------
            let mut compute_span = telemetry.scope("compute");
            let compute_span = &mut compute_span;
            let mut run_consumer = || -> Result<()> {
                for s in 0..num_steps {
                    let q = &batch_queues[s % workers];
                    let mut cur_ctx: Option<Arc<StepContext>> = None;
                    loop {
                        let Some((item, waited)) = q.pop() else {
                            return Err(StorageError::InvalidPlan {
                                reason: format!("pipeline stage 2 ended before step {s} completed"),
                            });
                        };
                        report.compute_stall += waited;
                        let busy_start = Instant::now();
                        match item {
                            StepOut::Begin { ctx, edges } => {
                                let Some((parts, parts_wait)) = parts_queue.pop() else {
                                    return Err(StorageError::InvalidPlan {
                                        reason: format!("partition prefetch ended before step {s}"),
                                    });
                                };
                                report.compute_stall += parts_wait;
                                let (parts_step, new_parts) = parts?;
                                debug_assert_eq!(parts_step, s, "partition payload out of order");
                                report.partition_loads += new_parts.len();
                                compute_span.begin("compute.step", s as i64, NO_LABEL);
                                compute_span.begin("compute.install", s as i64, NO_LABEL);
                                let install_start = Instant::now();
                                let evicted = if self.config.synchronous_writeback {
                                    // Oracle mode: pay the eviction IO inline
                                    // on this thread, as before stage 4
                                    // existed. The empty payload still flows
                                    // to the drain so the write-back
                                    // watermark advances step by step.
                                    buffer.install_set(
                                        &ctx.set,
                                        new_parts,
                                        edges,
                                        Arc::clone(&ctx.subgraph),
                                    )?;
                                    Vec::new()
                                } else {
                                    let (_installs, evicted) = buffer.install_set_deferred(
                                        &ctx.set,
                                        new_parts,
                                        edges,
                                        Arc::clone(&ctx.subgraph),
                                    )?;
                                    evicted
                                };
                                clock.swap.publish(s as i64);
                                cur_ctx = Some(ctx);
                                report.compute_busy += install_start.elapsed();
                                compute_span.end();
                                // Hand the detached generation to the drain.
                                // Pushed even when empty so the write-back
                                // watermark advances through every step. A
                                // full queue here is write-back back-pressure
                                // on compute, booked as a stall.
                                if let Some(waited) = wb_queue.push((s, evicted)) {
                                    report.compute_stall += waited;
                                }
                            }
                            StepOut::Batch(batch) => {
                                let ctx =
                                    cur_ctx.as_ref().ok_or_else(|| StorageError::InvalidPlan {
                                        reason: format!("batch before Begin in step {s}"),
                                    })?;
                                report.batches += 1;
                                compute_span.begin("compute.batch", s as i64, NO_LABEL);
                                consume(buffer, ctx, batch);
                                compute_span.end();
                                report.compute_busy += busy_start.elapsed();
                            }
                            StepOut::End => {
                                report.compute_busy += busy_start.elapsed();
                                compute_span.end();
                                break;
                            }
                            StepOut::Err(e) => return Err(e),
                        }
                    }
                }
                Ok(())
            };
            // The consumer runs under the same supervision as the spawned
            // stages: a panic in user compute code (or the buffer) converts
            // to a typed error after an orderly shutdown instead of
            // unwinding through the scope and cascading into every thread.
            let result: Result<()> = match catch_unwind(AssertUnwindSafe(&mut run_consumer)) {
                Ok(r) => r.map_err(|e| PipelineError::wrap("compute", e)),
                Err(payload) => {
                    let err = PipelineError::panicked("compute", payload.as_ref());
                    record_failure(err.clone());
                    Err(err.into())
                }
            };

            // Shut everything down (idempotent) so the scope can join even on
            // the error path. The write-back queue is closed only now — after
            // the consumer's last push — and close lets the drain pop what
            // remains, so the drain writes out every detached eviction
            // (success *and* abort paths) before the scope joins it.
            clock.abort();
            for q in step_queues.iter() {
                q.close();
            }
            for q in batch_queues.iter() {
                q.close();
            }
            parts_queue.close();
            wb_queue.close();
            // Join every stage before arbitrating so late failures are
            // recorded and no thread outlives the verdict. Stage bodies catch
            // their own panics, so these joins cannot themselves panic.
            for handle in worker_handles {
                let _ = handle.join();
            }
            let _ = ctx_handle.join();
            let _ = parts_handle.join();
            let wb_result = match wb_handle.join() {
                Ok(r) => r,
                Err(payload) => {
                    Err(PipelineError::panicked("writeback-drain", payload.as_ref()).into())
                }
            };
            let recorded = failure
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take();
            // Arbitration: a recorded stage failure is the root cause of any
            // cascade it triggered (closed queues, protocol errors), so it
            // wins; a drain disk error likewise outranks the consumer's
            // secondary verdict.
            let outcome = match (result, wb_result, recorded) {
                (_, _, Some(root)) => Err(root.into()),
                (r, Ok(()), None) => r,
                (_, Err(e), None) => Err(e),
            };
            if outcome.is_err() {
                // A failed epoch may leave detached evictions that can no
                // longer land. Nothing may block on them: the run is being
                // abandoned and recovery goes through checkpoints.
                ledger.abandon_pending();
            }
            outcome
        });

        consumer_result?;
        debug_assert_eq!(
            ledger.pending_count(),
            0,
            "every detached eviction must drain before run_epoch returns"
        );
        report.prefetch_busy = nanos(&clocks.prefetch_busy);
        report.prefetch_stall = nanos(&clocks.prefetch_stall);
        report.sample_busy = nanos(&clocks.sample_busy);
        report.sample_stall = nanos(&clocks.sample_stall);
        report.writeback_busy = nanos(&clocks.writeback_busy);
        report.writeback_stall = nanos(&clocks.writeback_stall);
        report.partitions_written_back = clocks.writeback_parts.load(Ordering::Relaxed) as usize;
        report.wall_time = epoch_start.elapsed();
        self.mirror_report(&report);
        Ok(report)
    }

    /// Mirrors one epoch's [`PipelineReport`] into the `pipeline.*` counters,
    /// so `metrics.json` aggregates agree with the report fields exactly
    /// (the counters accumulate across epochs).
    fn mirror_report(&self, report: &PipelineReport) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let t = &self.telemetry;
        t.counter("pipeline.steps").add(report.steps as u64);
        t.counter("pipeline.batches").add(report.batches as u64);
        t.counter("pipeline.partition_loads")
            .add(report.partition_loads as u64);
        t.counter("pipeline.prefetch_busy_ns")
            .add_duration(report.prefetch_busy);
        t.counter("pipeline.prefetch_stall_ns")
            .add_duration(report.prefetch_stall);
        t.counter("pipeline.sample_busy_ns")
            .add_duration(report.sample_busy);
        t.counter("pipeline.sample_stall_ns")
            .add_duration(report.sample_stall);
        t.counter("pipeline.compute_busy_ns")
            .add_duration(report.compute_busy);
        t.counter("pipeline.compute_stall_ns")
            .add_duration(report.compute_stall);
        t.counter("pipeline.writeback_busy_ns")
            .add_duration(report.writeback_busy);
        t.counter("pipeline.writeback_stall_ns")
            .add_duration(report.writeback_stall);
        t.counter("pipeline.partitions_written_back")
            .add(report.partitions_written_back as u64);
        t.counter("pipeline.wall_time_ns")
            .add_duration(report.wall_time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::{EdgeList, Partitioner};
    use marius_storage::PartitionStore;
    use marius_telemetry::Phase;
    use rand::Rng;

    fn build_buffer(label: &str, num_nodes: u64, p: u32, capacity: usize) -> PartitionBuffer {
        let mut rng = StdRng::seed_from_u64(11);
        let mut el = EdgeList::new(num_nodes);
        for i in 0..num_nodes {
            el.push(Edge::new(i, (i + 1) % num_nodes)).unwrap();
            el.push(Edge::new(i, (i + 3) % num_nodes)).unwrap();
        }
        let partitioner = Partitioner::new(p).unwrap();
        let assignment = partitioner.random(num_nodes, &mut rng);
        let buckets = partitioner.build_buckets(&el, &assignment).unwrap();
        let store = PartitionStore::open_temp(label).unwrap();
        store.clear().unwrap();
        let buffer = PartitionBuffer::new(store, assignment, 4, capacity, true);
        buffer.initialize_random(0.1, &mut rng).unwrap();
        buffer.initialize_buckets(&buckets).unwrap();
        buffer
    }

    fn pair_plan(p: u32, capacity: usize, seed: u64) -> EpochPlan {
        use marius_storage::policy::ReplacementPolicy;
        let mut rng = StdRng::seed_from_u64(seed);
        marius_storage::BetaPolicy::new(capacity)
            .plan(p, &mut rng)
            .unwrap()
    }

    #[test]
    fn step_seed_is_stable_and_spread() {
        assert_eq!(step_seed(7, 3), step_seed(7, 3));
        assert_ne!(step_seed(7, 3), step_seed(7, 4));
        assert_ne!(step_seed(7, 3), step_seed(8, 3));
    }

    #[test]
    fn io_plan_tracks_loads_and_dependencies() {
        let plan = EpochPlan {
            partition_sets: vec![vec![0, 1], vec![1, 2], vec![0, 1]],
            bucket_assignment: vec![vec![], vec![], vec![]],
        };
        let io = plan_step_io(&plan, &[]);
        assert_eq!(io.loads, vec![vec![0, 1], vec![2], vec![0]]);
        // Partition 0 is evicted at step 1 and re-read at step 2.
        assert_eq!(io.read_after, vec![-1, -1, 1]);
        // Initial residency suppresses the first loads.
        let io = plan_step_io(&plan, &[0, 1]);
        assert_eq!(io.loads[0], Vec::<PartitionId>::new());
    }

    #[test]
    fn bounded_queue_blocks_and_closes() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2));
        std::thread::sleep(Duration::from_millis(20));
        let (v, _) = q.pop().unwrap();
        assert_eq!(v, 1);
        assert!(producer.join().unwrap().is_some());
        let (v, _) = q.pop().unwrap();
        assert_eq!(v, 2);
        q.close();
        assert!(q.pop().is_none());
        assert!(q.push(3).is_none());
    }

    #[test]
    fn pipelined_epoch_visits_every_bucket_once() {
        for workers in [1usize, 3] {
            let mut buffer = build_buffer(&format!("pipe-visit-{workers}"), 60, 6, 3);
            let plan = pair_plan(6, 3, 5);
            let pipeline = Pipeline::new(PipelineConfig::with_workers(workers));
            let seen = Mutex::new(Vec::<(usize, usize)>::new());
            let report = pipeline
                .run_epoch(
                    &plan,
                    &mut buffer,
                    99,
                    |ctx, rng, sink| {
                        // One "batch" per assigned bucket, tagged with a random
                        // draw so determinism is observable.
                        for (k, _) in plan.bucket_assignment[ctx.step].iter().enumerate() {
                            let _ = rng.gen::<u64>();
                            sink((ctx.step, k));
                        }
                    },
                    |buffer, ctx, (step, k)| {
                        assert_eq!(buffer.resident_partitions(), {
                            let mut s = ctx.set.clone();
                            s.sort_unstable();
                            s
                        });
                        seen.lock().unwrap().push((step, k));
                    },
                )
                .unwrap();
            let seen = seen.into_inner().unwrap();
            let expected: Vec<(usize, usize)> = plan
                .bucket_assignment
                .iter()
                .enumerate()
                .flat_map(|(s, buckets)| (0..buckets.len()).map(move |k| (s, k)))
                .collect();
            assert_eq!(seen, expected, "workers={workers}");
            assert_eq!(report.batches, expected.len());
            assert_eq!(report.steps, plan.partition_sets.len());
            assert_eq!(report.partition_loads, plan.partition_loads());
            assert!(report.wall_time > Duration::ZERO);
        }
    }

    #[test]
    fn pipelined_updates_survive_eviction_and_reload() {
        // Apply an update to a node in every step's first partition; after the
        // epoch plus flush, reading the store back must show every update.
        let mut buffer = build_buffer("pipe-update", 40, 4, 2);
        let plan = pair_plan(4, 2, 9);
        let pipeline = Pipeline::new(PipelineConfig::with_workers(2));
        let assignment = buffer.assignment().clone();
        let mut touched: Vec<NodeId> = Vec::new();
        pipeline
            .run_epoch(
                &plan,
                &mut buffer,
                17,
                |ctx, _rng, sink| sink(ctx.set[0]),
                |buffer, _ctx, partition: PartitionId| {
                    let node = assignment.nodes_in(partition)[0];
                    let grad = marius_tensor::Tensor::ones(1, 4);
                    buffer.apply_update(&[node], &grad).unwrap();
                    touched.push(node);
                },
            )
            .unwrap();
        buffer.flush().unwrap();
        assert!(!touched.is_empty());
        // A second pipelined pass observes the updated values via gather.
        let store = buffer.store().clone();
        for &node in &touched {
            let (p, _) = (assignment.partition_of(node), 0);
            let (values, state) = store.read_partition(p).unwrap();
            assert_eq!(values.len(), state.len());
            // Updated rows have non-zero Adagrad state.
            let offset = assignment
                .nodes_in(p)
                .iter()
                .position(|&n| n == node)
                .unwrap();
            assert!(state[offset * 4..(offset + 1) * 4].iter().all(|&s| s > 0.0));
        }
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let run = |workers: usize| -> Vec<u64> {
            let mut buffer = build_buffer(&format!("pipe-det-{workers}"), 50, 5, 2);
            let plan = pair_plan(5, 2, 21);
            let pipeline = Pipeline::new(PipelineConfig::with_workers(workers));
            let out = Mutex::new(Vec::new());
            pipeline
                .run_epoch(
                    &plan,
                    &mut buffer,
                    4242,
                    |ctx, rng, sink| {
                        for _ in 0..3 {
                            sink(((ctx.step as u64) << 32) | (rng.gen::<u64>() >> 32));
                        }
                    },
                    |_buffer, _ctx, v| out.lock().unwrap().push(v),
                )
                .unwrap();
            out.into_inner().unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one, four);
        assert_eq!(one.len(), 3 * pair_plan(5, 2, 21).partition_sets.len());
    }

    #[test]
    fn epoch_end_is_a_writeback_safe_point() {
        // After run_epoch returns, the ledger is empty and the safe-point
        // hook must return without blocking — a snapshot taken here sees
        // every detached eviction on disk.
        let mut buffer = build_buffer("pipe-safe-point", 40, 4, 2);
        let plan = pair_plan(4, 2, 13);
        let pipeline = Pipeline::new(PipelineConfig::with_workers(2));
        let assignment = buffer.assignment().clone();
        pipeline
            .run_epoch(
                &plan,
                &mut buffer,
                23,
                |ctx, _rng, sink| sink(ctx.set[0]),
                |buffer, _ctx, partition: PartitionId| {
                    let node = assignment.nodes_in(partition)[0];
                    let grad = marius_tensor::Tensor::ones(1, 4);
                    buffer.apply_update(&[node], &grad).unwrap();
                },
            )
            .unwrap();
        writeback_safe_point(&buffer).unwrap();
        assert_eq!(buffer.writeback_ledger().pending_count(), 0);
    }

    #[test]
    fn telemetry_spans_and_counters_mirror_report() {
        let telemetry = Telemetry::enabled();
        let mut buffer = build_buffer("pipe-telemetry", 60, 6, 3);
        let plan = pair_plan(6, 3, 5);
        let pipeline = Pipeline::new(PipelineConfig::with_workers(2)).with_telemetry(&telemetry);
        let report = pipeline
            .run_epoch(
                &plan,
                &mut buffer,
                99,
                |ctx, _rng, sink| {
                    for k in 0..plan.bucket_assignment[ctx.step].len() {
                        sink((ctx.step, k));
                    }
                },
                |_buffer, _ctx, _batch: (usize, usize)| {},
            )
            .unwrap();
        let snap = telemetry.metrics_snapshot();
        // Counters mirror the report exactly.
        assert_eq!(snap.counter("pipeline.steps"), Some(report.steps as u64));
        assert_eq!(
            snap.counter("pipeline.batches"),
            Some(report.batches as u64)
        );
        assert_eq!(
            snap.counter("pipeline.partition_loads"),
            Some(report.partition_loads as u64)
        );
        assert_eq!(
            snap.counter("pipeline.prefetch_busy_ns"),
            Some(report.prefetch_busy.as_nanos() as u64)
        );
        assert_eq!(
            snap.counter("pipeline.compute_stall_ns"),
            Some(report.compute_stall.as_nanos() as u64)
        );
        // Every queue sampled its depth at least once per push.
        let depths = snap.histogram("pipeline.queue_depth.batch").unwrap();
        assert!(depths.total as usize >= report.batches);
        // All five stage tracks recorded spans, and the stream is balanced.
        let events = telemetry.span_events();
        let names: std::collections::BTreeSet<&str> = events
            .iter()
            .map(|e| e.name)
            .filter(|n| !n.is_empty())
            .collect();
        for expected in [
            "context-prefetch.step",
            "partition-prefetch.step",
            "sample.step",
            "compute.step",
            "compute.install",
            "writeback.step",
        ] {
            assert!(names.contains(expected), "missing span {expected}");
        }
        let begins = events.iter().filter(|e| e.phase == Phase::Begin).count();
        let ends = events.iter().filter(|e| e.phase == Phase::End).count();
        assert_eq!(begins, ends);
    }

    #[test]
    fn telemetry_does_not_change_batch_stream() {
        let run = |telemetry: Option<Telemetry>| -> Vec<u64> {
            let mut buffer = build_buffer("pipe-telem-det", 50, 5, 2);
            let plan = pair_plan(5, 2, 21);
            let mut pipeline = Pipeline::new(PipelineConfig::with_workers(3));
            if let Some(t) = &telemetry {
                pipeline = pipeline.with_telemetry(t);
            }
            let out = Mutex::new(Vec::new());
            pipeline
                .run_epoch(
                    &plan,
                    &mut buffer,
                    4242,
                    |ctx, rng, sink| {
                        for _ in 0..3 {
                            sink(((ctx.step as u64) << 32) | (rng.gen::<u64>() >> 32));
                        }
                    },
                    |_buffer, _ctx, v| out.lock().unwrap().push(v),
                )
                .unwrap();
            out.into_inner().unwrap()
        };
        assert_eq!(run(None), run(Some(Telemetry::enabled())));
    }

    #[test]
    fn storage_error_surfaces_and_shuts_down() {
        let mut buffer = build_buffer("pipe-error", 40, 4, 2);
        let plan = pair_plan(4, 2, 3);
        // Delete every partition file: the prefetcher's first read fails.
        buffer.store().clear().unwrap();
        let pipeline = Pipeline::new(PipelineConfig::with_workers(2));
        let result = pipeline.run_epoch(
            &plan,
            &mut buffer,
            1,
            |_ctx, _rng, sink| sink(0u32),
            |_buffer, _ctx, _v| {},
        );
        assert!(result.is_err());
    }
}
