//! Supervision tests: a panicking stage or a permanently failing device must
//! produce a typed [`StorageError::Pipeline`] after an orderly shutdown —
//! every thread joined, every queue closed, the write-back ledger drained or
//! abandoned, and no torn partition files — never a deadlock or a poisoned
//! lock panic on the caller's thread.

use marius_graph::{Edge, EdgeList, Partitioner};
use marius_pipeline::{EpochPlan, Pipeline, PipelineConfig};
use marius_storage::{IoFaultPlan, PartitionBuffer, PartitionStore, StorageError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 4-partition buffer of capacity 2 over a ring graph, optionally with a
/// (quiet) fault injector attached so tests can arm failure windows.
fn buffer_with(label: &str, faults: bool) -> PartitionBuffer {
    let num_nodes = 40u64;
    let mut rng = StdRng::seed_from_u64(3);
    let mut el = EdgeList::new(num_nodes);
    for i in 0..num_nodes {
        el.push(Edge::new(i, (i + 1) % num_nodes)).unwrap();
    }
    let partitioner = Partitioner::new(4).unwrap();
    let assignment = partitioner.random(num_nodes, &mut rng);
    let buckets = partitioner.build_buckets(&el, &assignment).unwrap();
    let store = PartitionStore::open_temp(label).unwrap();
    store.clear().unwrap();
    let store = if faults {
        store.with_fault_plan(IoFaultPlan::quiet(11))
    } else {
        store
    };
    let buffer = PartitionBuffer::new(store, assignment, 4, 2, true);
    buffer.initialize_random(0.1, &mut rng).unwrap();
    buffer.initialize_buckets(&buckets).unwrap();
    buffer
}

fn three_step_plan() -> EpochPlan {
    EpochPlan {
        partition_sets: vec![vec![0, 1], vec![2, 3], vec![0, 1]],
        bucket_assignment: vec![vec![], vec![], vec![]],
    }
}

/// A dead device (every op fails permanently) surfaces as a typed pipeline
/// error naming a stage — not a panic, not a hang — and leaves the ledger
/// empty and the store free of staging litter.
#[test]
fn permanent_fault_surfaces_as_a_typed_pipeline_error() {
    let mut buffer = buffer_with("supervision-permanent", true);
    let injector = buffer
        .store()
        .fault_injector()
        .expect("injector attached")
        .clone();
    injector.arm_permanent(0);
    let pipeline = Pipeline::new(PipelineConfig::with_workers(2));
    let err = pipeline
        .run_epoch(
            &three_step_plan(),
            &mut buffer,
            7,
            |ctx, _rng, sink| sink(ctx.step),
            |_buffer, _ctx, _step: usize| {},
        )
        .expect_err("every disk op fails permanently");
    match &err {
        StorageError::Pipeline { stage, reason } => {
            assert!(
                stage.contains("prefetch") || stage == "compute",
                "unexpected stage attribution: {stage}"
            );
            assert!(reason.contains("permanent"), "{reason}");
        }
        other => panic!("expected a pipeline-stage error, got: {other}"),
    }
    assert!(!err.is_transient(), "a dead device is not retryable");
    // Orderly shutdown: nothing left pending, no torn staging files.
    assert_eq!(buffer.writeback_ledger().pending_count(), 0);
    for entry in std::fs::read_dir(buffer.store().root()).unwrap() {
        let name = entry.unwrap().file_name().to_string_lossy().into_owned();
        assert!(
            !name.ends_with(".tmp"),
            "staging litter after failure: {name}"
        );
    }
}

/// A panic in the compute stage converts to a typed error after shutdown,
/// and the same buffer can run a clean epoch afterwards — no lock stays
/// poisoned, no queue stays blocked.
#[test]
fn compute_panic_converts_to_typed_error_and_buffer_survives() {
    let mut buffer = buffer_with("supervision-compute-panic", false);
    let pipeline = Pipeline::new(PipelineConfig::with_workers(2));
    let err = pipeline
        .run_epoch(
            &three_step_plan(),
            &mut buffer,
            7,
            |ctx, _rng, sink| sink(ctx.step),
            |_buffer, _ctx, step: usize| {
                if step == 1 {
                    panic!("injected compute panic");
                }
            },
        )
        .expect_err("the compute stage panics at step 1");
    match &err {
        StorageError::Pipeline { stage, reason } => {
            assert_eq!(stage, "compute");
            assert!(reason.contains("panicked"), "{reason}");
            assert!(reason.contains("injected compute panic"), "{reason}");
        }
        other => panic!("expected a pipeline-stage error, got: {other}"),
    }
    assert_eq!(buffer.writeback_ledger().pending_count(), 0);

    // The supervision layer contained the panic: the same buffer runs a
    // clean epoch to completion.
    let mut consumed = 0usize;
    pipeline
        .run_epoch(
            &three_step_plan(),
            &mut buffer,
            9,
            |ctx, _rng, sink| sink(ctx.step),
            |_buffer, _ctx, _step: usize| consumed += 1,
        )
        .expect("clean rerun after a contained panic");
    assert_eq!(consumed, 3);
    buffer.flush().unwrap();
}

/// A panic on a batch-construction worker thread is recorded as the root
/// cause and surfaces as that stage's typed error on the calling thread.
#[test]
fn worker_panic_is_attributed_to_the_batch_worker_stage() {
    let mut buffer = buffer_with("supervision-worker-panic", false);
    let pipeline = Pipeline::new(PipelineConfig::with_workers(2));
    let err = pipeline
        .run_epoch(
            &three_step_plan(),
            &mut buffer,
            7,
            |ctx, _rng, sink| {
                if ctx.step == 1 {
                    panic!("injected worker panic");
                }
                sink(ctx.step);
            },
            |_buffer, _ctx, _step: usize| {},
        )
        .expect_err("a stage-2 worker panics");
    match &err {
        StorageError::Pipeline { stage, reason } => {
            assert_eq!(stage, "batch-worker");
            assert!(reason.contains("injected worker panic"), "{reason}");
        }
        other => panic!("expected a pipeline-stage error, got: {other}"),
    }
    assert_eq!(buffer.writeback_ledger().pending_count(), 0);
}
