//! Integration tests for the asynchronous write-back drain (stage 4).
//!
//! Both tests run against an *emulated slow device* so the window between a
//! dirty eviction being detached and its bytes landing on disk is wide —
//! without the split `swap` / `writeback` watermarks, the prefetcher's
//! re-read of an evicted partition would race (and lose to) the drain and
//! observe stale bytes.

use marius_graph::{Edge, EdgeList, NodeId, Partitioner};
use marius_pipeline::{EpochPlan, Pipeline, PipelineConfig};
use marius_storage::{IoCostModel, PartitionBuffer, PartitionStore};
use marius_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A device slow enough that one partition write takes tens of milliseconds:
/// plenty of time for an unsynchronised prefetcher to read stale bytes.
fn slow_model() -> IoCostModel {
    IoCostModel {
        bandwidth_bytes_per_sec: 8.0e3,
        iops: 1.0e9,
        block_size: 1,
    }
}

/// A 4-partition buffer of capacity 2 on a throttled store, with a ring
/// graph's buckets materialised.
fn slow_buffer(label: &str) -> PartitionBuffer {
    let num_nodes = 40u64;
    let mut rng = StdRng::seed_from_u64(3);
    let mut el = EdgeList::new(num_nodes);
    for i in 0..num_nodes {
        el.push(Edge::new(i, (i + 1) % num_nodes)).unwrap();
    }
    let partitioner = Partitioner::new(4).unwrap();
    let assignment = partitioner.random(num_nodes, &mut rng);
    let buckets = partitioner.build_buckets(&el, &assignment).unwrap();
    let store = PartitionStore::open_temp(label).unwrap();
    store.clear().unwrap();
    let store = store.with_emulated_device(slow_model());
    let buffer = PartitionBuffer::new(store, assignment, 4, 2, true);
    buffer.initialize_random(0.1, &mut rng).unwrap();
    buffer.initialize_buckets(&buckets).unwrap();
    buffer
}

/// A partition evicted dirty at step 1 and re-read at step 2 must observe the
/// drained bytes: the prefetcher's re-read has to wait for the write-back
/// watermark, not just the swap.
#[test]
fn reread_after_dirty_eviction_observes_drained_bytes() {
    let mut buffer = slow_buffer("wb-order");
    let node: NodeId = buffer.assignment().nodes_in(0)[0];
    // Step 0 trains {0, 1} and dirties partition 0; step 1 swaps to {2, 3}
    // (evicting 0 dirty); step 2 re-reads {0, 1}.
    let plan = EpochPlan {
        partition_sets: vec![vec![0, 1], vec![2, 3], vec![0, 1]],
        bucket_assignment: vec![vec![], vec![], vec![]],
    };
    let pipeline = Pipeline::new(PipelineConfig::with_workers(2));
    let mut expected: Option<Tensor> = None;
    let mut checked = false;
    let report = pipeline
        .run_epoch(
            &plan,
            &mut buffer,
            7,
            |ctx, _rng, sink| sink(ctx.step),
            |buffer, _ctx, step: usize| match step {
                0 => {
                    buffer.apply_update(&[node], &Tensor::ones(1, 4)).unwrap();
                    expected = Some(buffer.gather(&[node]).unwrap());
                }
                2 => {
                    // The re-installed copy of partition 0 was read from disk
                    // by the prefetcher; stale bytes here would mean the read
                    // beat the write-back drain.
                    assert_eq!(
                        buffer.gather(&[node]).unwrap(),
                        *expected.as_ref().expect("step 0 ran first"),
                        "re-read partition lost the update written back asynchronously"
                    );
                    checked = true;
                }
                _ => {}
            },
        )
        .expect("epoch");
    assert!(checked, "step 2 never consumed a batch");
    // The dirty eviction of partition 0 really was drained asynchronously.
    assert!(report.partitions_written_back >= 1);
    assert!(report.writeback_busy > std::time::Duration::ZERO);
    assert_eq!(buffer.writeback_ledger().pending_count(), 0);
    // Nothing is pending, so flush returns without re-writing partition 0.
    buffer.flush().unwrap();
}

/// An epoch aborted while write-backs are still in flight must drain the
/// queue before returning: every partition file stays whole (readable, not
/// torn) and detached updates reach disk.
#[test]
fn abort_mid_drain_leaves_no_torn_partition_files() {
    let mut buffer = slow_buffer("wb-abort");
    let node: NodeId = buffer.assignment().nodes_in(0)[0];
    let expected_state_offset = buffer
        .assignment()
        .nodes_in(0)
        .iter()
        .position(|&n| n == node)
        .unwrap();
    // Step 2's set exceeds the buffer capacity of 2, so the consumer errors
    // at its Begin — while the slow drain is still writing step 1's detached
    // evictions of partitions 0 and 1.
    let plan = EpochPlan {
        partition_sets: vec![vec![0, 1], vec![2, 3], vec![0, 1, 2]],
        bucket_assignment: vec![vec![], vec![], vec![]],
    };
    let pipeline = Pipeline::new(PipelineConfig::with_workers(2));
    let err = pipeline
        .run_epoch(
            &plan,
            &mut buffer,
            11,
            |ctx, _rng, sink| sink(ctx.step),
            |buffer, ctx, step: usize| {
                if step == 0 {
                    // Dirty both partitions of the first set.
                    for &p in &ctx.set {
                        let n = buffer.assignment().nodes_in(p)[0];
                        buffer.apply_update(&[n], &Tensor::ones(1, 4)).unwrap();
                    }
                }
            },
        )
        .expect_err("step 2 exceeds the buffer capacity");
    assert!(format!("{err}").contains("capacity"));
    // The abort drained the queue: nothing is pending and every partition
    // file is whole and readable through an unthrottled twin store.
    assert_eq!(buffer.writeback_ledger().pending_count(), 0);
    let fast = PartitionStore::open(buffer.store().root()).unwrap();
    for p in 0..4u32 {
        let (values, state) = fast
            .read_partition(p)
            .unwrap_or_else(|e| panic!("partition {p} file torn after abort: {e}"));
        assert_eq!(values.len(), state.len());
        assert_eq!(values.len(), buffer.assignment().nodes_in(p).len() * 4);
    }
    // Partition 0's detached update landed despite the abort: its Adagrad
    // state on disk is non-zero for the updated node.
    let (_, state) = fast.read_partition(0).unwrap();
    assert!(
        state[expected_state_offset * 4..(expected_state_offset + 1) * 4]
            .iter()
            .all(|&s| s > 0.0),
        "dirty eviction was dropped on the abort path"
    );
}
