//! Property-based tests of the graph substrates: CSR construction, the
//! dual-sorted in-memory subgraph, and partition/bucket bookkeeping.

use marius_graph::{Csr, Edge, EdgeList, InMemorySubgraph, Partitioner};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_edge_list() -> impl Strategy<Value = EdgeList> {
    proptest::collection::vec((0u64..30, 0u64..30, 0u32..3), 1..200).prop_map(|triples| {
        let edges: Vec<Edge> = triples
            .into_iter()
            .map(|(s, d, r)| Edge::with_rel(s, r, d))
            .collect();
        EdgeList::from_edges(30, 3, edges).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR preserves every edge exactly once and degrees match the edge list.
    #[test]
    fn csr_is_lossless(el in random_edge_list()) {
        let csr = Csr::outgoing(&el);
        prop_assert_eq!(csr.num_entries(), el.num_edges());
        let degrees = el.out_degrees();
        for v in 0..el.num_nodes() {
            prop_assert_eq!(csr.degree(v), degrees[v as usize] as usize);
        }
        let incoming = Csr::incoming(&el);
        prop_assert_eq!(incoming.num_entries(), el.num_edges());
    }

    /// The dual-sorted subgraph agrees with the CSR on every node's neighbours
    /// (as multisets).
    #[test]
    fn in_memory_subgraph_agrees_with_csr(el in random_edge_list()) {
        let csr = Csr::outgoing(&el);
        let sub = InMemorySubgraph::from_edges(el.edges());
        for v in 0..el.num_nodes() {
            let mut a: Vec<u64> = csr.neighbors(v).to_vec();
            let mut b: Vec<u64> = sub.outgoing(v).iter().map(|e| e.dst).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    /// Partitioning: every node lands in exactly one partition and every edge in
    /// exactly one bucket, whose key matches its endpoints' partitions.
    #[test]
    fn buckets_partition_the_edge_set(
        el in random_edge_list(),
        p in 1u32..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let partitioner = Partitioner::new(p).unwrap();
        let assignment = partitioner.random(el.num_nodes(), &mut rng);
        prop_assert_eq!(
            assignment.partition_sizes().iter().sum::<usize>() as u64,
            el.num_nodes()
        );
        let buckets = partitioner.build_buckets(&el, &assignment).unwrap();
        let total: usize = buckets.iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, el.num_edges());
        for b in &buckets {
            for e in &b.edges {
                prop_assert_eq!(assignment.partition_of(e.src), b.src_partition);
                prop_assert_eq!(assignment.partition_of(e.dst), b.dst_partition);
            }
        }
    }

    /// Edge splits partition the edges without loss or duplication.
    #[test]
    fn splits_are_exhaustive_and_disjoint(
        el in random_edge_list(),
        valid_pct in 0u32..20,
        test_pct in 0u32..20,
    ) {
        let valid = valid_pct as f64 / 100.0;
        let test = test_pct as f64 / 100.0;
        let (train, val, tst) = el.split_edges(valid, test);
        prop_assert_eq!(train.len() + val.len() + tst.len(), el.num_edges());
    }
}
