//! Compressed sparse row (CSR) adjacency.
//!
//! The CSR view is used where a full, static adjacency over the whole graph is
//! needed: dataset generation, full-neighbourhood aggregation on small graphs
//! (FB15k-237 in Table 8 uses *all* neighbours), and ground-truth checks in tests.
//! The out-of-core training path never materialises a full-graph CSR; it uses the
//! dual-sorted [`crate::InMemorySubgraph`] over in-buffer partitions instead.

use crate::{Edge, EdgeList, NodeId};

/// Compressed sparse row adjacency over destination (outgoing) or source
/// (incoming) neighbours.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    num_nodes: u64,
}

impl Csr {
    /// Builds a CSR of *outgoing* neighbours: `neighbors(v)` lists all `u` with an
    /// edge `v -> u`.
    pub fn outgoing(edges: &EdgeList) -> Self {
        Self::build(edges, |e| (e.src, e.dst))
    }

    /// Builds a CSR of *incoming* neighbours: `neighbors(v)` lists all `u` with an
    /// edge `u -> v`.
    pub fn incoming(edges: &EdgeList) -> Self {
        Self::build(edges, |e| (e.dst, e.src))
    }

    fn build(edges: &EdgeList, key: impl Fn(&Edge) -> (NodeId, NodeId)) -> Self {
        let n = edges.num_nodes() as usize;
        let mut counts = vec![0usize; n];
        for e in edges.edges() {
            let (k, _) = key(e);
            counts[k as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut neighbors = vec![0 as NodeId; edges.num_edges()];
        let mut cursor = offsets.clone();
        for e in edges.edges() {
            let (k, v) = key(e);
            neighbors[cursor[k as usize]] = v;
            cursor[k as usize] += 1;
        }
        Csr {
            offsets,
            neighbors,
            num_nodes: edges.num_nodes(),
        }
    }

    /// Returns the number of nodes.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Returns the total number of stored neighbour entries (equals the edge count).
    pub fn num_entries(&self) -> usize {
        self.neighbors.len()
    }

    /// Returns the neighbours of `node` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node as usize;
        assert!(i < self.num_nodes as usize, "node out of range");
        &self.neighbors[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Returns the degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Returns the maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Returns the average degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.neighbors.len() as f64 / self.num_nodes as f64
        }
    }

    /// Iterates over `(node, neighbor)` pairs in CSR order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes).flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v, u)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdgeList;

    fn diamond() -> EdgeList {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        EdgeList::from_edges(
            4,
            1,
            vec![
                Edge::new(0, 1),
                Edge::new(0, 2),
                Edge::new(1, 3),
                Edge::new(2, 3),
            ],
        )
        .unwrap()
    }

    #[test]
    fn outgoing_neighbors() {
        let csr = Csr::outgoing(&diamond());
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.neighbors(1), &[3]);
        assert_eq!(csr.neighbors(3), &[] as &[NodeId]);
        assert_eq!(csr.num_entries(), 4);
    }

    #[test]
    fn incoming_neighbors() {
        let csr = Csr::incoming(&diamond());
        assert_eq!(csr.neighbors(3), &[1, 2]);
        assert_eq!(csr.neighbors(0), &[] as &[NodeId]);
        assert_eq!(csr.neighbors(1), &[0]);
    }

    #[test]
    fn degrees() {
        let csr = Csr::outgoing(&diamond());
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.max_degree(), 2);
        assert!((csr.avg_degree() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let el = EdgeList::new(0);
        let csr = Csr::outgoing(&el);
        assert_eq!(csr.max_degree(), 0);
        assert_eq!(csr.avg_degree(), 0.0);
        assert_eq!(csr.iter_edges().count(), 0);
    }

    #[test]
    fn iter_edges_covers_all_edges() {
        let el = diamond();
        let csr = Csr::outgoing(&el);
        let edges: Vec<_> = csr.iter_edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(2, 3)));
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn neighbors_out_of_range_panics() {
        let csr = Csr::outgoing(&diamond());
        let _ = csr.neighbors(10);
    }

    #[test]
    fn csr_entry_count_matches_edge_count_with_duplicates() {
        let mut el = EdgeList::new(2);
        el.push(Edge::new(0, 1)).unwrap();
        el.push(Edge::new(0, 1)).unwrap();
        let csr = Csr::outgoing(&el);
        assert_eq!(csr.neighbors(0), &[1, 1]);
    }
}
