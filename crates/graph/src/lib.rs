//! Graph representations and synthetic datasets for the MariusGNN reproduction.
//!
//! This crate provides every graph-side substrate the paper's system depends on:
//!
//! * [`EdgeList`] — the on-disk/authoritative representation of a graph as a flat
//!   list of `(source, relation, destination)` triples (relations collapse to a
//!   single id for homogeneous graphs).
//! * [`csr::Csr`] — a compressed sparse row adjacency used by full-graph
//!   (non-sampled) operations and by the dataset generators.
//! * [`InMemorySubgraph`] — the dual-sorted edge-list structure of paper §4.1: the
//!   edges currently resident in CPU memory sorted once by source and once by
//!   destination, plus per-node offset arrays, so that one-hop neighbours of any
//!   node set can be sampled in parallel.
//! * [`partition`] — node partitioning and edge buckets `(i, j)` (paper §3).
//! * [`temporal`] — chronological edge splits over the implicit generation-order
//!   timestamps, the substrate for temporal tasks and streaming ingest.
//! * [`datasets`] — deterministic synthetic generators that stand in for the
//!   paper's datasets (Table 1), preserving degree distribution shape, feature
//!   dimension, labeled-node fraction and relation counts at a reduced scale.
//!
//! # Examples
//!
//! ```
//! use marius_graph::datasets::{DatasetSpec, ScaledDataset};
//!
//! let spec = DatasetSpec::fb15k_237().scaled(0.05);
//! let data = ScaledDataset::generate(&spec, 42);
//! assert!(data.graph.num_edges() > 0);
//! assert_eq!(data.num_nodes(), spec.num_nodes);
//! ```

pub mod csr;
pub mod datasets;
pub mod edge_list;
pub mod in_memory;
pub mod partition;
pub mod temporal;

pub use csr::Csr;
pub use edge_list::{Edge, EdgeList};
pub use in_memory::InMemorySubgraph;
pub use partition::{EdgeBucket, PartitionAssignment, Partitioner};
pub use temporal::{chronological_split, observed_nodes, ChronologicalSplit};

/// Node identifier type used across the reproduction.
pub type NodeId = u64;

/// Relation (edge type) identifier for knowledge graphs; `0` for homogeneous graphs.
pub type RelId = u32;

/// Partition identifier (physical or logical).
pub type PartitionId = u32;

/// Errors produced by graph construction and partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node id referenced by an edge is outside the declared node-count range.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The declared number of nodes.
        num_nodes: u64,
    },
    /// A partitioning parameter was invalid (for example zero partitions).
    InvalidPartitioning {
        /// Human readable description.
        reason: String,
    },
    /// A requested entity (node, partition, bucket) does not exist.
    NotFound {
        /// Human readable description.
        reason: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::InvalidPartitioning { reason } => {
                write!(f, "invalid partitioning: {reason}")
            }
            GraphError::NotFound { reason } => write!(f, "not found: {reason}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenience result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = GraphError::NodeOutOfRange {
            node: 10,
            num_nodes: 5,
        };
        assert!(format!("{e}").contains("10"));
        let e = GraphError::InvalidPartitioning {
            reason: "zero partitions".into(),
        };
        assert!(format!("{e}").contains("zero"));
        let e = GraphError::NotFound {
            reason: "bucket (1,2)".into(),
        };
        assert!(format!("{e}").contains("bucket"));
    }
}
