//! The dual-sorted in-memory edge structure used for one-hop sampling (paper §4.1).
//!
//! MariusGNN keeps two sorted copies of the edges currently resident in CPU memory
//! (all edges between the node partitions in the buffer): one sorted by source node
//! id and one sorted by destination node id. A per-node offset index into each copy
//! lets any thread sample incoming and outgoing one-hop neighbours of an arbitrary
//! node set without synchronisation, which is what makes the DENSE sampler's
//! CPU-parallel one-hop step possible.
//!
//! The structure intentionally supports *subgraphs*: node ids are global ids, and
//! only the nodes incident to the provided edges are indexed. Asking for the
//! neighbours of a node that has no in-memory edges returns an empty slice, which
//! is exactly the behaviour disk-based training relies on (neighbourhoods are
//! truncated to the in-memory portion of the graph, paper §7.2).

use crate::{Edge, NodeId};

/// Dual-sorted in-memory edge lists with per-node offsets.
#[derive(Debug, Clone)]
pub struct InMemorySubgraph {
    /// Edges sorted by (src, dst).
    by_src: Vec<Edge>,
    /// Edges sorted by (dst, src).
    by_dst: Vec<Edge>,
    /// Sorted unique node ids that appear as an endpoint of at least one edge.
    nodes: Vec<NodeId>,
    /// `out_offsets[i]..out_offsets[i+1]` is the range of `by_src` whose source is `nodes[i]`.
    out_offsets: Vec<usize>,
    /// `in_offsets[i]..in_offsets[i+1]` is the range of `by_dst` whose destination is `nodes[i]`.
    in_offsets: Vec<usize>,
}

impl InMemorySubgraph {
    /// Builds the dual-sorted structure from an arbitrary collection of edges.
    pub fn from_edges(edges: &[Edge]) -> Self {
        let mut by_src: Vec<Edge> = edges.to_vec();
        by_src.sort_unstable_by_key(|e| (e.src, e.dst, e.rel));
        let mut by_dst: Vec<Edge> = edges.to_vec();
        by_dst.sort_unstable_by_key(|e| (e.dst, e.src, e.rel));

        // Collect the sorted unique endpoints.
        let mut nodes: Vec<NodeId> = Vec::with_capacity(edges.len());
        for e in edges {
            nodes.push(e.src);
            nodes.push(e.dst);
        }
        nodes.sort_unstable();
        nodes.dedup();

        // Build offsets by walking each sorted list once.
        let mut out_offsets = vec![0usize; nodes.len() + 1];
        let mut in_offsets = vec![0usize; nodes.len() + 1];
        {
            let mut cursor = 0usize;
            for (i, &node) in nodes.iter().enumerate() {
                out_offsets[i] = cursor;
                while cursor < by_src.len() && by_src[cursor].src == node {
                    cursor += 1;
                }
                out_offsets[i + 1] = cursor;
            }
        }
        {
            let mut cursor = 0usize;
            for (i, &node) in nodes.iter().enumerate() {
                in_offsets[i] = cursor;
                while cursor < by_dst.len() && by_dst[cursor].dst == node {
                    cursor += 1;
                }
                in_offsets[i + 1] = cursor;
            }
        }

        InMemorySubgraph {
            by_src,
            by_dst,
            nodes,
            out_offsets,
            in_offsets,
        }
    }

    /// Returns the number of distinct nodes with at least one in-memory edge.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of in-memory edges.
    pub fn num_edges(&self) -> usize {
        self.by_src.len()
    }

    /// Returns `true` if `node` has at least one in-memory edge.
    pub fn contains(&self, node: NodeId) -> bool {
        self.node_index(node).is_some()
    }

    /// Returns the sorted list of in-memory node ids.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn node_index(&self, node: NodeId) -> Option<usize> {
        self.nodes.binary_search(&node).ok()
    }

    /// Returns the outgoing edges of `node` (edges with `node` as source), or an
    /// empty slice if the node has no in-memory outgoing edges.
    pub fn outgoing(&self, node: NodeId) -> &[Edge] {
        match self.node_index(node) {
            Some(i) => &self.by_src[self.out_offsets[i]..self.out_offsets[i + 1]],
            None => &[],
        }
    }

    /// Returns the incoming edges of `node` (edges with `node` as destination), or
    /// an empty slice if the node has no in-memory incoming edges.
    pub fn incoming(&self, node: NodeId) -> &[Edge] {
        match self.node_index(node) {
            Some(i) => &self.by_dst[self.in_offsets[i]..self.in_offsets[i + 1]],
            None => &[],
        }
    }

    /// Out-degree of `node` within the in-memory subgraph.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.outgoing(node).len()
    }

    /// In-degree of `node` within the in-memory subgraph.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.incoming(node).len()
    }

    /// Returns all edges sorted by source (the "first sorted copy" of §4.1).
    pub fn edges_by_src(&self) -> &[Edge] {
        &self.by_src
    }

    /// Returns all edges sorted by destination (the "second sorted copy" of §4.1).
    pub fn edges_by_dst(&self) -> &[Edge] {
        &self.by_dst
    }

    /// Approximate bytes of CPU memory held by this structure (two edge copies plus
    /// the offset index). Matches the `2 * c^2 * EBO` term in the paper's §6
    /// capacity rule.
    pub fn memory_bytes(&self) -> u64 {
        let edge_bytes = (self.by_src.len() + self.by_dst.len()) as u64 * Edge::DISK_BYTES as u64;
        let index_bytes =
            (self.nodes.len() * 8 + self.out_offsets.len() * 8 + self.in_offsets.len() * 8) as u64;
        edge_bytes + index_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_graph() -> Vec<Edge> {
        // The example graph from Figure 1/3 of the paper:
        // nodes {A=0, B=1, C=2, D=3, E=4, F=5}
        // edges (incoming neighbourhood view): B->A? The paper draws incoming
        // neighbours: A's in-neighbours {C, D}, B's {C, E}, C's {E, B}, D's {C}.
        // Encode as directed edges pointing to the aggregating node:
        vec![
            Edge::new(2, 0), // C -> A
            Edge::new(3, 0), // D -> A
            Edge::new(2, 1), // C -> B
            Edge::new(4, 1), // E -> B
            Edge::new(4, 2), // E -> C
            Edge::new(1, 2), // B -> C
            Edge::new(2, 3), // C -> D
            Edge::new(0, 5), // A -> F
        ]
    }

    #[test]
    fn builds_sorted_copies() {
        let g = InMemorySubgraph::from_edges(&figure1_graph());
        assert_eq!(g.num_edges(), 8);
        // by_src must be sorted by src.
        let srcs: Vec<_> = g.edges_by_src().iter().map(|e| e.src).collect();
        let mut sorted = srcs.clone();
        sorted.sort_unstable();
        assert_eq!(srcs, sorted);
        // by_dst must be sorted by dst.
        let dsts: Vec<_> = g.edges_by_dst().iter().map(|e| e.dst).collect();
        let mut sorted = dsts.clone();
        sorted.sort_unstable();
        assert_eq!(dsts, sorted);
    }

    #[test]
    fn incoming_matches_figure1() {
        let g = InMemorySubgraph::from_edges(&figure1_graph());
        let a_in: Vec<_> = g.incoming(0).iter().map(|e| e.src).collect();
        assert_eq!(a_in, vec![2, 3]); // C and D
        let b_in: Vec<_> = g.incoming(1).iter().map(|e| e.src).collect();
        assert_eq!(b_in, vec![2, 4]); // C and E
        let c_in: Vec<_> = g.incoming(2).iter().map(|e| e.src).collect();
        assert_eq!(c_in, vec![1, 4]); // B and E
    }

    #[test]
    fn outgoing_neighbors() {
        let g = InMemorySubgraph::from_edges(&figure1_graph());
        let c_out: Vec<_> = g.outgoing(2).iter().map(|e| e.dst).collect();
        assert_eq!(c_out, vec![0, 1, 3]);
        assert_eq!(g.out_degree(2), 3);
        assert_eq!(g.in_degree(0), 2);
    }

    #[test]
    fn missing_node_returns_empty() {
        let g = InMemorySubgraph::from_edges(&figure1_graph());
        assert!(g.outgoing(99).is_empty());
        assert!(g.incoming(99).is_empty());
        assert!(!g.contains(99));
        assert!(g.contains(4));
    }

    #[test]
    fn node_set_is_unique_and_sorted() {
        let g = InMemorySubgraph::from_edges(&figure1_graph());
        let nodes = g.nodes();
        assert_eq!(nodes, &[0, 1, 2, 3, 4, 5]);
        assert_eq!(g.num_nodes(), 6);
    }

    #[test]
    fn empty_edge_set() {
        let g = InMemorySubgraph::from_edges(&[]);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.outgoing(0).is_empty());
    }

    #[test]
    fn handles_duplicate_and_self_edges() {
        let edges = vec![Edge::new(1, 1), Edge::new(1, 1), Edge::new(1, 2)];
        let g = InMemorySubgraph::from_edges(&edges);
        assert_eq!(g.out_degree(1), 3);
        assert_eq!(g.in_degree(1), 2);
    }

    #[test]
    fn memory_bytes_counts_both_copies() {
        let g = InMemorySubgraph::from_edges(&figure1_graph());
        assert!(g.memory_bytes() >= 2 * 8 * Edge::DISK_BYTES as u64);
    }

    #[test]
    fn works_with_sparse_global_ids() {
        // Global node ids from different partitions are non-contiguous.
        let edges = vec![Edge::new(1_000_000, 5), Edge::new(5, 2_000_000)];
        let g = InMemorySubgraph::from_edges(&edges);
        assert!(g.contains(1_000_000));
        assert_eq!(g.outgoing(1_000_000)[0].dst, 5);
        assert_eq!(g.incoming(2_000_000)[0].src, 5);
    }
}
