//! Chronological (temporal) edge-split utilities.
//!
//! The synthetic datasets carry an implicit timestamp: the position of an edge
//! in the generated edge list *is* its time. The generator emits edges in
//! draw order (time `0..E-1`), and the streaming ingest path appends new edges
//! strictly after the base list (time `E`, `E+1`, …). Temporal tasks therefore
//! never need an explicit time column — index order is time order.
//!
//! # Split rules
//!
//! [`chronological_split`] freezes the evaluation windows over the **base**
//! prefix of the edge list (the first `base_len` edges, i.e. the dataset as
//! originally generated):
//!
//! * **test** — the newest `h` base edges,
//! * **valid** — the `h` base edges immediately before the test window,
//! * **train** — every older base edge, **plus every streamed edge** (index
//!   `>= base_len`) in time order,
//!
//! where `h = `[`holdout_size`]`(base_len)` (the same 1%-bounded holdout rule
//! the strided link-prediction split uses). Two properties follow directly
//! and are what the streaming trainer relies on:
//!
//! * **Leak-free** — every train edge from the base prefix is strictly older
//!   than every valid edge, which is strictly older than every test edge.
//!   Streamed train edges are newer than the eval windows by construction,
//!   which is the fine-tuning regime: the model trains on the present while
//!   being evaluated on a frozen held-out past window.
//! * **Append-stable** — the split of a grown list equals the split of the
//!   base list with the streamed suffix appended to `train`. Growing the
//!   dataset never moves an edge between splits, so evaluation stays
//!   bit-comparable across ingest cycles, and the split is independent of how
//!   the streamed suffix was chunked into ingest batches.

use crate::{Edge, NodeId};

/// Number of held-out edges per evaluation window (valid and test each) for a
/// base edge list of `base_len` edges: 1% of the base, at least 1, at most
/// 2000 — bounded so MRR evaluation stays cheap at every scale.
pub fn holdout_size(base_len: usize) -> usize {
    ((base_len as f64 * 0.01) as usize).clamp(1, 2000)
}

/// A chronological train/valid/test split of a timestamped edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChronologicalSplit {
    /// Training edges: the oldest base edges plus every streamed edge, in
    /// time order.
    pub train: Vec<Edge>,
    /// Validation edges: the second-newest holdout window of the base prefix.
    pub valid: Vec<Edge>,
    /// Test edges: the newest holdout window of the base prefix.
    pub test: Vec<Edge>,
    /// The base-prefix length the evaluation windows were frozen over.
    pub base_len: usize,
}

/// Splits `edges` chronologically, freezing the eval windows over the first
/// `base_len` edges. See the module docs for the exact rules.
///
/// # Panics
///
/// Panics if `base_len` is zero, exceeds `edges.len()`, or is too small to
/// leave a non-empty training window (`base_len <= 2 * holdout_size`).
pub fn chronological_split(edges: &[Edge], base_len: usize) -> ChronologicalSplit {
    assert!(
        base_len > 0 && base_len <= edges.len(),
        "base_len {base_len} out of range for {} edges",
        edges.len()
    );
    let h = holdout_size(base_len);
    assert!(
        base_len > 2 * h,
        "base_len {base_len} too small for two holdout windows of {h}"
    );
    let train_end = base_len - 2 * h;
    let mut train = Vec::with_capacity(train_end + (edges.len() - base_len));
    train.extend_from_slice(&edges[..train_end]);
    train.extend_from_slice(&edges[base_len..]);
    ChronologicalSplit {
        train,
        valid: edges[train_end..train_end + h].to_vec(),
        test: edges[train_end + h..base_len].to_vec(),
        base_len,
    }
}

/// The nodes observed as endpoints of `edges`, ascending and deduplicated.
///
/// Temporal evaluation draws its ranking candidates from this set computed
/// over the *base training window* only — no node is ranked against the test
/// window unless it was already observed strictly before it ("time-split"
/// negative sampling). The set is frozen over the base window, so streamed
/// edges never change it and evaluation stays bit-comparable across ingest.
pub fn observed_nodes(edges: &[Edge]) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = edges.iter().flat_map(|e| [e.src, e.dst]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Encodes an edge whose source doubles as its timestamp, so split
    /// membership is checkable by inspection.
    fn timed_edges(n: usize) -> Vec<Edge> {
        (0..n as u64).map(|t| Edge::new(t, t + 1)).collect()
    }

    #[test]
    fn holdout_follows_the_bounded_one_percent_rule() {
        assert_eq!(holdout_size(10), 1);
        assert_eq!(holdout_size(1000), 10);
        assert_eq!(holdout_size(1_000_000), 2000);
    }

    #[test]
    fn split_windows_are_chronological_and_exhaustive() {
        let edges = timed_edges(1000);
        let s = chronological_split(&edges, 1000);
        assert_eq!(s.train.len() + s.valid.len() + s.test.len(), 1000);
        assert_eq!(s.valid.len(), 10);
        assert_eq!(s.test.len(), 10);
        // Strict time ordering between the windows.
        let max_train = s.train.iter().map(|e| e.src).max().unwrap();
        let min_valid = s.valid.iter().map(|e| e.src).min().unwrap();
        let max_valid = s.valid.iter().map(|e| e.src).max().unwrap();
        let min_test = s.test.iter().map(|e| e.src).min().unwrap();
        assert!(max_train < min_valid);
        assert!(max_valid < min_test);
    }

    #[test]
    fn streamed_suffix_appends_to_train_only() {
        let edges = timed_edges(600);
        let base = chronological_split(&edges[..500], 500);
        let grown = chronological_split(&edges, 500);
        assert_eq!(grown.valid, base.valid);
        assert_eq!(grown.test, base.test);
        assert_eq!(grown.train[..base.train.len()], base.train[..]);
        assert_eq!(&grown.train[base.train.len()..], &edges[500..]);
    }

    #[test]
    fn observed_nodes_sorted_and_deduplicated() {
        let edges = vec![Edge::new(5, 2), Edge::new(2, 9), Edge::new(5, 9)];
        assert_eq!(observed_nodes(&edges), vec![2, 5, 9]);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_base_panics() {
        let edges = timed_edges(2);
        let _ = chronological_split(&edges, 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The split is a pure function of the edge list: re-splitting yields
        /// identical windows (seed stability of everything derived from it).
        #[test]
        fn split_is_deterministic(base in 10usize..400, extra in 0usize..100) {
            let edges = timed_edges(base + extra);
            let a = chronological_split(&edges, base);
            let b = chronological_split(&edges, base);
            prop_assert!(a == b);
        }

        /// No eval edge shares a timestamp with (or predates) a base train
        /// edge: the eval windows sit strictly after the base train window.
        #[test]
        fn split_is_leak_free(base in 10usize..400, extra in 0usize..100) {
            let edges = timed_edges(base + extra);
            let s = chronological_split(&edges, base);
            let h = holdout_size(base);
            let train_end = (base - 2 * h) as u64;
            for e in s.valid.iter().chain(&s.test) {
                prop_assert!(e.src >= train_end);
            }
            // Base train edges all predate the eval windows; streamed train
            // edges all postdate them.
            for e in &s.train {
                prop_assert!(e.src < train_end || e.src >= base as u64);
            }
        }

        /// The split only depends on the concatenated edge list, not on how
        /// the streamed suffix was chunked into ingest batches.
        #[test]
        fn split_ignores_ingest_batch_boundaries(
            base in 10usize..200,
            chunks in proptest::collection::vec(0usize..40, 0..6),
        ) {
            let streamed: usize = chunks.iter().sum();
            let edges = timed_edges(base + streamed);
            // Re-assemble the grown list chunk by chunk, as ingest would.
            let mut grown = edges[..base].to_vec();
            let mut offset = base;
            for c in &chunks {
                grown.extend_from_slice(&edges[offset..offset + c]);
                offset += c;
            }
            prop_assert!(
                chronological_split(&grown, base) == chronological_split(&edges, base)
            );
        }
    }
}
