//! Dataset specifications and synthetic generators.
//!
//! The paper evaluates on large public graphs (Table 1). This reproduction cannot
//! ship those datasets, so each one is represented by a [`DatasetSpec`] capturing
//! the statistics that the paper's results depend on — node/edge counts, feature
//! dimension, labeled-node fraction, number of relations — and a deterministic
//! generator ([`ScaledDataset::generate`]) that synthesises a graph with the same
//! *shape* at a configurable scale.
//!
//! Full-scale specs reproduce the Table 1 memory-overhead numbers exactly; scaled
//! specs (via [`DatasetSpec::scaled`]) are used by the tests, examples and
//! benchmarks so that every experiment runs on a laptop.

mod generator;
mod specs;

pub use generator::{FeatureMatrix, ScaledDataset};
pub use specs::DatasetSpec;

use crate::NodeId;

/// The learning task a dataset is used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Predict a class label for each node (paper §7.2, Table 3).
    NodeClassification,
    /// Predict whether a pair of nodes is connected (paper §7.2, Tables 4, 5, 8).
    LinkPrediction,
}

/// Train/validation/test node splits for node classification.
#[derive(Debug, Clone, Default)]
pub struct NodeSplit {
    /// Nodes whose labels are used for training.
    pub train: Vec<NodeId>,
    /// Nodes held out for validation.
    pub valid: Vec<NodeId>,
    /// Nodes held out for final evaluation.
    pub test: Vec<NodeId>,
}

impl NodeSplit {
    /// Total number of labeled nodes across all splits.
    pub fn total(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_split_total() {
        let s = NodeSplit {
            train: vec![1, 2, 3],
            valid: vec![4],
            test: vec![5, 6],
        };
        assert_eq!(s.total(), 6);
        assert_eq!(NodeSplit::default().total(), 0);
    }

    #[test]
    fn task_equality() {
        assert_ne!(Task::NodeClassification, Task::LinkPrediction);
    }
}
