//! Specifications of the paper's datasets (Table 1) plus the smaller graphs used
//! in the micro-benchmarks (FB15k-237, LiveJournal, OGBN-Arxiv).

use super::Task;

/// Statistics of a dataset sufficient to generate a synthetic stand-in and to
/// compute the storage-overhead numbers reported in Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Human-readable dataset name.
    pub name: String,
    /// Number of nodes.
    pub num_nodes: u64,
    /// Number of directed edges.
    pub num_edges: u64,
    /// Base-representation (feature/embedding) dimension.
    pub feat_dim: usize,
    /// Number of relations (edge types); 1 for homogeneous graphs.
    pub num_relations: u32,
    /// Number of classes for node classification, if applicable.
    pub num_classes: Option<usize>,
    /// Fraction of nodes with training labels (node classification) — the paper
    /// notes this is typically 1–10% for large graphs (§5.2).
    pub train_fraction: f64,
    /// Primary learning task the dataset is used for.
    pub task: Task,
    /// Power-law exponent controlling how skewed the degree distribution is.
    pub degree_exponent: f64,
    /// Whether node features are fixed inputs (`true`) or learned embeddings
    /// stored in the lookup table (`false`).
    pub fixed_features: bool,
}

impl DatasetSpec {
    /// OGBN-Papers100M: 111M nodes, 1.62B edges, 128-dim features (Table 1).
    pub fn papers100m() -> Self {
        DatasetSpec {
            name: "papers100m".into(),
            num_nodes: 111_000_000,
            num_edges: 1_620_000_000,
            feat_dim: 128,
            num_relations: 1,
            num_classes: Some(172),
            train_fraction: 0.011,
            task: Task::NodeClassification,
            degree_exponent: 0.8,
            fixed_features: true,
        }
    }

    /// OGB Mag240M citation subgraph (paper-cites-paper): 122M nodes, 1.30B edges,
    /// 768-dim features (Table 1).
    pub fn mag240m_cites() -> Self {
        DatasetSpec {
            name: "mag240m-cites".into(),
            num_nodes: 122_000_000,
            num_edges: 1_300_000_000,
            feat_dim: 768,
            num_relations: 1,
            num_classes: Some(153),
            train_fraction: 0.009,
            task: Task::NodeClassification,
            degree_exponent: 0.8,
            fixed_features: true,
        }
    }

    /// Freebase86M knowledge graph: 86M nodes, 338M edges, 100-dim learned
    /// embeddings (Table 1).
    pub fn freebase86m() -> Self {
        DatasetSpec {
            name: "freebase86m".into(),
            num_nodes: 86_000_000,
            num_edges: 338_000_000,
            feat_dim: 100,
            num_relations: 14_824,
            num_classes: None,
            train_fraction: 0.0,
            task: Task::LinkPrediction,
            degree_exponent: 0.9,
            fixed_features: false,
        }
    }

    /// OGB WikiKG90Mv2: 91M nodes, 601M edges, 100-dim learned embeddings (Table 1).
    pub fn wikikg90mv2() -> Self {
        DatasetSpec {
            name: "wikikg90mv2".into(),
            num_nodes: 91_000_000,
            num_edges: 601_000_000,
            feat_dim: 100,
            num_relations: 1_387,
            num_classes: None,
            train_fraction: 0.0,
            task: Task::LinkPrediction,
            degree_exponent: 0.9,
            fixed_features: false,
        }
    }

    /// Common Crawl 2012 hyperlink graph: 3.5B nodes, 128B edges, 50-dim learned
    /// embeddings (Table 1, §7.3 extreme-scale experiment).
    pub fn hyperlink2012() -> Self {
        DatasetSpec {
            name: "hyperlink2012".into(),
            num_nodes: 3_500_000_000,
            num_edges: 128_000_000_000,
            feat_dim: 50,
            num_relations: 1,
            num_classes: None,
            train_fraction: 0.0,
            task: Task::LinkPrediction,
            degree_exponent: 1.0,
            fixed_features: false,
        }
    }

    /// Facebook15: 1.4B nodes, 1T edges, 100-dim (Table 1; not trained on in the
    /// paper, listed for the storage argument). Features are treated as fixed
    /// inputs, matching how Table 1 accounts for its storage.
    pub fn facebook15() -> Self {
        DatasetSpec {
            name: "facebook15".into(),
            num_nodes: 1_400_000_000,
            num_edges: 1_000_000_000_000,
            feat_dim: 100,
            num_relations: 1,
            num_classes: None,
            train_fraction: 0.0,
            task: Task::LinkPrediction,
            degree_exponent: 1.0,
            fixed_features: true,
        }
    }

    /// FB15k-237 knowledge graph (14 541 nodes, 272 115 edges) used at full scale
    /// in the COMET/BETA and auto-tuning experiments (Tables 8, Figures 6 and 8).
    pub fn fb15k_237() -> Self {
        DatasetSpec {
            name: "fb15k-237".into(),
            num_nodes: 14_541,
            num_edges: 272_115,
            feat_dim: 50,
            num_relations: 237,
            num_classes: None,
            train_fraction: 0.0,
            task: Task::LinkPrediction,
            degree_exponent: 0.9,
            fixed_features: false,
        }
    }

    /// LiveJournal social network (4.8M nodes, 69M edges) used in the GPU-sampling
    /// comparison against NextDoor (Table 7).
    pub fn livejournal() -> Self {
        DatasetSpec {
            name: "livejournal".into(),
            num_nodes: 4_800_000,
            num_edges: 69_000_000,
            feat_dim: 64,
            num_relations: 1,
            num_classes: None,
            train_fraction: 0.0,
            task: Task::LinkPrediction,
            degree_exponent: 0.9,
            fixed_features: false,
        }
    }

    /// OGBN-Arxiv (169k nodes, 1.17M edges), the small node-classification graph
    /// used by the paper's artifact "minimal working example".
    pub fn ogbn_arxiv() -> Self {
        DatasetSpec {
            name: "ogbn-arxiv".into(),
            num_nodes: 169_343,
            num_edges: 1_166_243,
            feat_dim: 128,
            num_relations: 1,
            num_classes: Some(40),
            train_fraction: 0.54,
            task: Task::NodeClassification,
            degree_exponent: 0.8,
            fixed_features: true,
        }
    }

    /// All full-scale specs appearing in Table 1, in the paper's row order.
    pub fn table1() -> Vec<DatasetSpec> {
        vec![
            DatasetSpec::papers100m(),
            DatasetSpec::mag240m_cites(),
            DatasetSpec::freebase86m(),
            DatasetSpec::wikikg90mv2(),
            DatasetSpec::hyperlink2012(),
            DatasetSpec::facebook15(),
        ]
    }

    /// Returns a copy scaled down by `factor` (nodes and edges multiplied by
    /// `factor`); feature dimension, relations and fractions are preserved.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "scale factor must be in (0, 1]"
        );
        let mut s = self.clone();
        s.name = format!("{}-scaled-{factor}", self.name);
        s.num_nodes = ((self.num_nodes as f64 * factor).round() as u64).max(16);
        s.num_edges = ((self.num_edges as f64 * factor).round() as u64).max(32);
        // Keep relation count manageable at small scales.
        s.num_relations = self
            .num_relations
            .min((s.num_nodes / 8).max(1) as u32)
            .max(1);
        s
    }

    /// Bytes needed to store all edges using the compact format Table 1 assumes:
    /// 4-byte node ids when they fit in a signed 32-bit integer (8-byte otherwise)
    /// plus a 4-byte relation id for multi-relational graphs.
    pub fn edge_storage_bytes(&self) -> u64 {
        let id_bytes: u64 = if self.num_nodes <= i32::MAX as u64 {
            4
        } else {
            8
        };
        let rel_bytes: u64 = if self.num_relations > 1 { 4 } else { 0 };
        self.num_edges * (2 * id_bytes + rel_bytes)
    }

    /// Bytes needed to store the base representations (`|V| * d * 4`, paper §6).
    ///
    /// For *learned* embeddings (link prediction lookup tables) the total is
    /// doubled because Marius-style training keeps per-embedding optimizer state
    /// (Adagrad accumulators) alongside the parameters — this is what makes the
    /// Table 1 numbers for Freebase86M / WikiKG90Mv2 / Hyperlink twice the raw
    /// parameter size.
    pub fn feature_storage_bytes(&self) -> u64 {
        let raw = self.num_nodes * self.feat_dim as u64 * 4;
        if self.fixed_features {
            raw
        } else {
            2 * raw
        }
    }

    /// Total storage in bytes (edges + features).
    pub fn total_storage_bytes(&self) -> u64 {
        self.edge_storage_bytes() + self.feature_storage_bytes()
    }

    /// Edge storage in GB, as reported in Table 1.
    pub fn edge_storage_gb(&self) -> f64 {
        self.edge_storage_bytes() as f64 / 1e9
    }

    /// Feature storage in GB, as reported in Table 1.
    pub fn feature_storage_gb(&self) -> f64 {
        self.feature_storage_bytes() as f64 / 1e9
    }

    /// Total storage in GB, as reported in Table 1.
    pub fn total_storage_gb(&self) -> f64 {
        self.total_storage_bytes() as f64 / 1e9
    }

    /// Whether the dataset fits in the CPU memory of a machine with
    /// `cpu_mem_bytes` of RAM — the question Table 1 and §1 pose.
    pub fn fits_in_memory(&self, cpu_mem_bytes: u64) -> bool {
        self.total_storage_bytes() <= cpu_mem_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows() {
        let rows = DatasetSpec::table1();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].name, "papers100m");
        assert_eq!(rows[5].name, "facebook15");
    }

    /// Table 1 reports feature storage of 57 GB for Papers100M (111M × 128 × 4 B),
    /// 375 GB for Mag240M-Cites, and doubled (embedding + optimizer state) sizes
    /// for the learned-embedding graphs (69 GB Freebase86M, 73 GB WikiKG90Mv2);
    /// check we reproduce those numbers to within rounding.
    #[test]
    fn table1_feature_overheads_match_paper() {
        let papers = DatasetSpec::papers100m();
        assert!((papers.feature_storage_gb() - 57.0).abs() < 2.0);
        let mag = DatasetSpec::mag240m_cites();
        assert!((mag.feature_storage_gb() - 375.0).abs() < 5.0);
        let fb = DatasetSpec::freebase86m();
        assert!((fb.feature_storage_gb() - 69.0).abs() < 3.0);
        let wiki = DatasetSpec::wikikg90mv2();
        assert!((wiki.feature_storage_gb() - 73.0).abs() < 3.0);
        let hyperlink = DatasetSpec::hyperlink2012();
        assert!((hyperlink.feature_storage_gb() - 1400.0).abs() < 10.0);
    }

    /// Table 1's edge-storage column: 13 GB for Papers100M, 10 GB for
    /// Mag240M-Cites, 4 GB for Freebase86M, 7 GB for WikiKG90Mv2, ~2 TB for the
    /// hyperlink graph.
    #[test]
    fn table1_edge_overheads_match_paper() {
        assert!((DatasetSpec::papers100m().edge_storage_gb() - 13.0).abs() < 1.0);
        assert!((DatasetSpec::mag240m_cites().edge_storage_gb() - 10.0).abs() < 1.0);
        assert!((DatasetSpec::freebase86m().edge_storage_gb() - 4.0).abs() < 0.5);
        assert!((DatasetSpec::wikikg90mv2().edge_storage_gb() - 7.0).abs() < 0.5);
        assert!((DatasetSpec::hyperlink2012().edge_storage_gb() - 2000.0).abs() < 100.0);
    }

    /// Table 1's point: the first four graphs fit on a single machine's memory or
    /// SSD (61–488 GB RAM; up to 16 TB disk), the hyperlink graph fits on SSD only.
    #[test]
    fn table1_fit_in_memory_claims() {
        let p3_16xlarge_ram = 488u64 * 1_000_000_000;
        let p3_2xlarge_ram = 61u64 * 1_000_000_000;
        let ssd_16tb = 16_000u64 * 1_000_000_000;
        assert!(DatasetSpec::papers100m().fits_in_memory(p3_16xlarge_ram));
        assert!(DatasetSpec::mag240m_cites().fits_in_memory(p3_16xlarge_ram));
        assert!(DatasetSpec::freebase86m().fits_in_memory(p3_16xlarge_ram));
        assert!(!DatasetSpec::papers100m().fits_in_memory(p3_2xlarge_ram));
        assert!(DatasetSpec::hyperlink2012().fits_in_memory(ssd_16tb));
        assert!(!DatasetSpec::hyperlink2012().fits_in_memory(p3_16xlarge_ram));
    }

    #[test]
    fn scaled_preserves_shape_parameters() {
        let s = DatasetSpec::papers100m().scaled(0.001);
        assert_eq!(s.feat_dim, 128);
        assert_eq!(s.num_classes, Some(172));
        assert_eq!(s.num_nodes, 111_000);
        assert_eq!(s.num_edges, 1_620_000);
        assert_eq!(s.task, Task::NodeClassification);
    }

    #[test]
    fn scaled_limits_relations_for_tiny_graphs() {
        let s = DatasetSpec::freebase86m().scaled(0.000001);
        assert!(s.num_relations >= 1);
        assert!(u64::from(s.num_relations) <= s.num_nodes);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_bad_factor() {
        let _ = DatasetSpec::papers100m().scaled(0.0);
    }

    #[test]
    fn fb15k_237_matches_published_statistics() {
        let s = DatasetSpec::fb15k_237();
        assert_eq!(s.num_nodes, 14_541);
        assert_eq!(s.num_edges, 272_115);
        assert_eq!(s.num_relations, 237);
    }

    #[test]
    fn minimum_sizes_are_enforced() {
        let s = DatasetSpec::fb15k_237().scaled(0.000001);
        assert!(s.num_nodes >= 16);
        assert!(s.num_edges >= 32);
    }
}
