//! Deterministic synthetic graph generation.
//!
//! The generator synthesises graphs with the statistics described by a
//! [`DatasetSpec`]: a skewed (power-law-like) degree distribution, community
//! structure that node-classification labels and knowledge-graph relations follow,
//! and fixed input features (for node classification) drawn around per-class
//! centroids. The planted structure means that the GNN models in this
//! reproduction can actually *learn* on these graphs — accuracy and MRR improve
//! over epochs — which is what the end-to-end experiments require.

use super::{DatasetSpec, NodeSplit, Task};
use crate::{Edge, EdgeList, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense, row-major node feature matrix (one row per node).
///
/// Kept as a plain buffer (rather than a `marius_tensor::Tensor`) so that the
/// graph crate stays independent of the tensor crate; the GNN crate converts rows
/// into tensors when it assembles mini batches.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f32>,
    dim: usize,
}

impl FeatureMatrix {
    /// Creates a zero-initialised feature matrix for `num_nodes` nodes.
    pub fn zeros(num_nodes: usize, dim: usize) -> Self {
        FeatureMatrix {
            data: vec![0.0; num_nodes * dim],
            dim,
        }
    }

    /// Number of rows (nodes).
    pub fn num_rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns the feature row for `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn row(&self, node: NodeId) -> &[f32] {
        let i = node as usize;
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Returns the feature row for `node` mutably.
    pub fn row_mut(&mut self, node: NodeId) -> &mut [f32] {
        let i = node as usize;
        &mut self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Returns the raw buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Total storage in bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.data.len() as u64 * 4
    }
}

/// A generated synthetic dataset: graph, features, labels and splits.
#[derive(Debug, Clone)]
pub struct ScaledDataset {
    /// The (possibly scaled) specification the dataset was generated from.
    pub spec: DatasetSpec,
    /// The RNG seed [`ScaledDataset::generate`] was called with. Generation is
    /// deterministic in `(spec, seed)`, so recording the seed makes the dataset
    /// reconstructible from metadata alone — checkpoint manifests persist this
    /// pair instead of the graph itself.
    pub seed: u64,
    /// The graph as an edge list.
    pub graph: EdgeList,
    /// Fixed input features (present when `spec.fixed_features`).
    pub features: Option<FeatureMatrix>,
    /// Class label per node (present for node classification).
    pub labels: Option<Vec<u32>>,
    /// Community id per node (the planted structure; useful for diagnostics).
    pub communities: Vec<u32>,
    /// Node splits for node classification.
    pub node_split: NodeSplit,
    /// Training edges for link prediction (all edges minus held-out).
    pub train_edges: Vec<Edge>,
    /// Validation edges for link prediction.
    pub valid_edges: Vec<Edge>,
    /// Test edges for link prediction.
    pub test_edges: Vec<Edge>,
}

impl ScaledDataset {
    /// Generates a dataset matching `spec`, deterministically from `seed`.
    pub fn generate(spec: &DatasetSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = spec.num_nodes as usize;
        let num_communities = match spec.task {
            Task::NodeClassification => spec.num_classes.unwrap_or(16).max(2),
            Task::LinkPrediction => 32.min(n / 4).max(2),
        };

        // Planted community per node.
        let communities: Vec<u32> = (0..n)
            .map(|_| rng.gen_range(0..num_communities as u32))
            .collect();

        // Degree-skew sampler: node weight proportional to (rank + 1)^(-alpha)
        // over a random permutation so hubs are spread across the id space.
        let sampler = ZipfNodeSampler::new(n, spec.degree_exponent, &mut rng);

        // Group nodes by community for intra-community destination sampling.
        let mut community_members: Vec<Vec<NodeId>> = vec![Vec::new(); num_communities];
        for (node, &c) in communities.iter().enumerate() {
            community_members[c as usize].push(node as NodeId);
        }
        // Guarantee every community has at least one member.
        for (c, members) in community_members.iter_mut().enumerate() {
            if members.is_empty() {
                members.push((c % n) as NodeId);
            }
        }

        let mut graph = EdgeList::new(spec.num_nodes);
        let intra_prob = 0.8;
        for _ in 0..spec.num_edges {
            let src = sampler.sample(&mut rng);
            let rel = if spec.num_relations > 1 {
                rng.gen_range(0..spec.num_relations)
            } else {
                0
            };
            let src_comm = communities[src as usize] as usize;
            // The destination community is a deterministic function of the source
            // community and the relation, so relational structure is learnable.
            let dst_comm = (src_comm + rel as usize) % num_communities;
            let dst = if rng.gen_bool(intra_prob) {
                let members = &community_members[dst_comm];
                members[rng.gen_range(0..members.len())]
            } else {
                sampler.sample(&mut rng)
            };
            graph
                .push(Edge::with_rel(src, rel, dst))
                .expect("generated edge in range");
        }

        // Labels and features for node classification.
        let (labels, features) = if spec.task == Task::NodeClassification {
            let num_classes = spec.num_classes.unwrap_or(num_communities);
            let labels: Vec<u32> = communities
                .iter()
                .map(|&c| c % num_classes as u32)
                .collect();
            let features = if spec.fixed_features {
                Some(Self::class_centroid_features(
                    &labels,
                    num_classes,
                    spec.feat_dim,
                    &mut rng,
                ))
            } else {
                None
            };
            (Some(labels), features)
        } else {
            (None, None)
        };

        // Node split for node classification: `train_fraction` of nodes train,
        // and up to the same amount again split evenly between valid and test.
        let node_split = if spec.task == Task::NodeClassification {
            let mut nodes: Vec<NodeId> = (0..spec.num_nodes).collect();
            // Deterministic shuffle driven by the seeded RNG.
            for i in (1..nodes.len()).rev() {
                let j = rng.gen_range(0..=i);
                nodes.swap(i, j);
            }
            let n_train =
                ((spec.num_nodes as f64 * spec.train_fraction).round() as usize).clamp(1, n);
            let n_eval = (n_train / 2).clamp(1, n.saturating_sub(n_train).max(1));
            let train = nodes[..n_train].to_vec();
            let valid_end = (n_train + n_eval).min(n);
            let valid = nodes[n_train..valid_end].to_vec();
            let test_end = (valid_end + n_eval).min(n);
            let test = nodes[valid_end..test_end].to_vec();
            NodeSplit { train, valid, test }
        } else {
            NodeSplit::default()
        };

        // Edge split for link prediction: hold out a small, bounded number of
        // edges so MRR evaluation stays cheap at every scale.
        let (train_edges, valid_edges, test_edges) = if spec.task == Task::LinkPrediction {
            let holdout = ((graph.num_edges() as f64 * 0.01) as usize).clamp(1, 2000);
            let frac = holdout as f64 / graph.num_edges() as f64;
            graph.split_edges(frac, frac)
        } else {
            (graph.edges().to_vec(), Vec::new(), Vec::new())
        };

        ScaledDataset {
            spec: spec.clone(),
            seed,
            graph,
            features,
            labels,
            communities,
            node_split,
            train_edges,
            valid_edges,
            test_edges,
        }
    }

    fn class_centroid_features(
        labels: &[u32],
        num_classes: usize,
        dim: usize,
        rng: &mut StdRng,
    ) -> FeatureMatrix {
        // One random centroid per class; features are the centroid plus Gaussian
        // noise (Box–Muller) so a linear classifier over aggregated neighbourhoods
        // can separate the classes.
        let mut centroids = vec![0.0f32; num_classes * dim];
        for x in centroids.iter_mut() {
            *x = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        }
        let mut features = FeatureMatrix::zeros(labels.len(), dim);
        for (node, &label) in labels.iter().enumerate() {
            let centroid = &centroids[label as usize * dim..(label as usize + 1) * dim];
            let row = features.row_mut(node as NodeId);
            for (i, c) in centroid.iter().enumerate() {
                row[i] = c + gaussian(rng) * 0.5;
            }
        }
        features
    }

    /// Number of nodes in the dataset.
    pub fn num_nodes(&self) -> u64 {
        self.graph.num_nodes()
    }

    /// Number of edges in the dataset.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

/// Samples node ids with probability proportional to `(rank + 1)^(-alpha)` over a
/// random permutation of the id space.
#[derive(Debug, Clone)]
struct ZipfNodeSampler {
    /// Cumulative weights over ranks.
    cumulative: Vec<f64>,
    /// rank -> node id permutation.
    permutation: Vec<NodeId>,
}

impl ZipfNodeSampler {
    fn new<R: Rng + ?Sized>(n: usize, alpha: f64, rng: &mut R) -> Self {
        let mut permutation: Vec<NodeId> = (0..n as u64).collect();
        for i in (1..permutation.len()).rev() {
            let j = rng.gen_range(0..=i);
            permutation.swap(i, j);
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(alpha);
            cumulative.push(total);
        }
        ZipfNodeSampler {
            cumulative,
            permutation,
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        let total = *self.cumulative.last().expect("non-empty sampler");
        let u = rng.gen_range(0.0..total);
        let rank = self.cumulative.partition_point(|&c| c < u);
        self.permutation[rank.min(self.permutation.len() - 1)]
    }
}

/// Standard normal sample via the Box–Muller transform.
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_nc_spec() -> DatasetSpec {
        DatasetSpec::ogbn_arxiv().scaled(0.01)
    }

    fn tiny_lp_spec() -> DatasetSpec {
        DatasetSpec::fb15k_237().scaled(0.05)
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = tiny_lp_spec();
        let a = ScaledDataset::generate(&spec, 7);
        let b = ScaledDataset::generate(&spec, 7);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.communities, b.communities);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = tiny_lp_spec();
        let a = ScaledDataset::generate(&spec, 1);
        let b = ScaledDataset::generate(&spec, 2);
        assert_ne!(a.graph, b.graph);
    }

    #[test]
    fn node_classification_dataset_has_features_and_labels() {
        let spec = tiny_nc_spec();
        let d = ScaledDataset::generate(&spec, 3);
        let features = d.features.as_ref().expect("features present");
        assert_eq!(features.num_rows() as u64, spec.num_nodes);
        assert_eq!(features.dim(), spec.feat_dim);
        let labels = d.labels.as_ref().expect("labels present");
        assert_eq!(labels.len() as u64, spec.num_nodes);
        let num_classes = spec.num_classes.unwrap() as u32;
        assert!(labels.iter().all(|&l| l < num_classes));
    }

    #[test]
    fn node_split_sizes_respect_train_fraction() {
        let spec = tiny_nc_spec();
        let d = ScaledDataset::generate(&spec, 3);
        let expected = (spec.num_nodes as f64 * spec.train_fraction).round() as usize;
        assert_eq!(d.node_split.train.len(), expected.max(1));
        assert!(!d.node_split.valid.is_empty());
        assert!(!d.node_split.test.is_empty());
        // Splits are disjoint.
        let mut all: Vec<_> = d
            .node_split
            .train
            .iter()
            .chain(&d.node_split.valid)
            .chain(&d.node_split.test)
            .copied()
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    fn link_prediction_dataset_has_edge_splits() {
        let spec = tiny_lp_spec();
        let d = ScaledDataset::generate(&spec, 4);
        assert!(d.features.is_none());
        assert!(d.labels.is_none());
        assert!(!d.valid_edges.is_empty());
        assert!(!d.test_edges.is_empty());
        assert_eq!(
            d.train_edges.len() + d.valid_edges.len() + d.test_edges.len(),
            d.graph.num_edges()
        );
        assert!(d.valid_edges.len() <= 2000);
    }

    #[test]
    fn edges_are_in_range_and_relations_bounded() {
        let spec = tiny_lp_spec();
        let d = ScaledDataset::generate(&spec, 5);
        for e in d.graph.edges() {
            assert!(e.src < spec.num_nodes);
            assert!(e.dst < spec.num_nodes);
            assert!(e.rel < spec.num_relations);
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let spec = DatasetSpec::livejournal().scaled(0.0005);
        let d = ScaledDataset::generate(&spec, 6);
        let degrees = d.graph.out_degrees();
        let max = *degrees.iter().max().unwrap() as f64;
        let avg = degrees.iter().map(|&x| x as f64).sum::<f64>() / degrees.len() as f64;
        // A power-law-ish graph has hubs well above the mean degree.
        assert!(max > 4.0 * avg, "max {max} not >> avg {avg}");
    }

    #[test]
    fn communities_correlate_with_edges() {
        // With 80% intra-community edges (after relation shifting), a relation-0
        // edge should connect same-community endpoints much more often than chance.
        let mut spec = DatasetSpec::ogbn_arxiv().scaled(0.01);
        spec.num_relations = 1;
        let d = ScaledDataset::generate(&spec, 7);
        let total = d.graph.num_edges() as f64;
        let intra = d
            .graph
            .edges()
            .iter()
            .filter(|e| d.communities[e.src as usize] == d.communities[e.dst as usize])
            .count() as f64;
        let num_comms = d.communities.iter().max().unwrap() + 1;
        let chance = 1.0 / num_comms as f64;
        assert!(intra / total > 3.0 * chance);
    }

    #[test]
    fn feature_matrix_accessors() {
        let mut f = FeatureMatrix::zeros(3, 4);
        assert_eq!(f.num_rows(), 3);
        assert_eq!(f.dim(), 4);
        f.row_mut(1)[2] = 5.0;
        assert_eq!(f.row(1)[2], 5.0);
        assert_eq!(f.storage_bytes(), 48);
        let empty = FeatureMatrix::zeros(0, 0);
        assert_eq!(empty.num_rows(), 0);
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let mut rng = StdRng::seed_from_u64(8);
        let sampler = ZipfNodeSampler::new(1000, 1.0, &mut rng);
        let mut counts = vec![0usize; 1000];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        // The most popular node should be sampled far more than the median node.
        let max = *counts.iter().max().unwrap();
        let mut sorted = counts.clone();
        sorted.sort_unstable();
        let median = sorted[500];
        assert!(max > 10 * median.max(1));
    }

    #[test]
    fn gaussian_has_roughly_zero_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<f32> = (0..10_000).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.05);
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / samples.len() as f32;
        assert!((var - 1.0).abs() < 0.1);
    }
}
