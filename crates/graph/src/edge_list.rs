//! Flat edge-list representation of a graph.
//!
//! MariusGNN stores a graph as an edge list (paper §3); all other structures (CSR,
//! edge buckets, in-memory subgraphs) are derived views. Edges carry a relation id
//! so that the same type covers homogeneous graphs (relation `0` everywhere) and
//! knowledge graphs (one relation per edge type).

use crate::{GraphError, NodeId, RelId, Result};

/// A single directed edge `(src) --rel--> (dst)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Source node id.
    pub src: NodeId,
    /// Relation (edge type) id; `0` for homogeneous graphs.
    pub rel: RelId,
    /// Destination node id.
    pub dst: NodeId,
}

impl Edge {
    /// Creates a homogeneous (relation `0`) edge.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        Edge { src, rel: 0, dst }
    }

    /// Creates a knowledge-graph edge with an explicit relation.
    pub fn with_rel(src: NodeId, rel: RelId, dst: NodeId) -> Self {
        Edge { src, rel, dst }
    }

    /// Returns the edge with source and destination swapped (same relation).
    pub fn reversed(&self) -> Edge {
        Edge {
            src: self.dst,
            rel: self.rel,
            dst: self.src,
        }
    }

    /// Number of bytes an edge occupies in the on-disk format used by the storage
    /// layer (two `u64` endpoints plus one `u32` relation).
    pub const DISK_BYTES: usize = 8 + 8 + 4;
}

/// A graph represented as a flat list of directed edges plus a node count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    num_nodes: u64,
    num_relations: u32,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_nodes` nodes.
    pub fn new(num_nodes: u64) -> Self {
        EdgeList {
            num_nodes,
            num_relations: 1,
            edges: Vec::new(),
        }
    }

    /// Creates an edge list from parts, validating that every endpoint is in range.
    pub fn from_edges(num_nodes: u64, num_relations: u32, edges: Vec<Edge>) -> Result<Self> {
        for e in &edges {
            if e.src >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: e.src,
                    num_nodes,
                });
            }
            if e.dst >= num_nodes {
                return Err(GraphError::NodeOutOfRange {
                    node: e.dst,
                    num_nodes,
                });
            }
        }
        Ok(EdgeList {
            num_nodes,
            num_relations: num_relations.max(1),
            edges,
        })
    }

    /// Adds a single edge.
    ///
    /// Returns an error if either endpoint is outside the node range.
    pub fn push(&mut self, edge: Edge) -> Result<()> {
        if edge.src >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: edge.src,
                num_nodes: self.num_nodes,
            });
        }
        if edge.dst >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: edge.dst,
                num_nodes: self.num_nodes,
            });
        }
        if edge.rel >= self.num_relations {
            self.num_relations = edge.rel + 1;
        }
        self.edges.push(edge);
        Ok(())
    }

    /// Returns the number of nodes.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Returns the number of distinct relations (edge types).
    pub fn num_relations(&self) -> u32 {
        self.num_relations
    }

    /// Returns the number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Returns the edges as a slice.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Returns a mutable reference to the edges (used by shuffling utilities).
    pub fn edges_mut(&mut self) -> &mut Vec<Edge> {
        &mut self.edges
    }

    /// Consumes the list and returns the underlying edge vector.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Estimated bytes needed to store all edges on disk.
    pub fn edge_storage_bytes(&self) -> u64 {
        self.edges.len() as u64 * Edge::DISK_BYTES as u64
    }

    /// Returns the out-degree of every node.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes as usize];
        for e in &self.edges {
            deg[e.src as usize] += 1;
        }
        deg
    }

    /// Returns the in-degree of every node.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes as usize];
        for e in &self.edges {
            deg[e.dst as usize] += 1;
        }
        deg
    }

    /// Splits the edges into train/validation/test sets with the given fractions,
    /// deterministically based on the edge index (every k-th edge is held out).
    ///
    /// Fractions must satisfy `valid_frac + test_frac < 1.0`; the remainder is the
    /// training set.
    pub fn split_edges(
        &self,
        valid_frac: f64,
        test_frac: f64,
    ) -> (Vec<Edge>, Vec<Edge>, Vec<Edge>) {
        assert!(
            valid_frac >= 0.0 && test_frac >= 0.0 && valid_frac + test_frac < 1.0,
            "invalid split fractions"
        );
        let n = self.edges.len();
        let n_valid = (n as f64 * valid_frac) as usize;
        let n_test = (n as f64 * test_frac) as usize;
        let mut train = Vec::with_capacity(n - n_valid - n_test);
        let mut valid = Vec::with_capacity(n_valid);
        let mut test = Vec::with_capacity(n_test);
        // Deterministic striding keeps the split reproducible without shuffling.
        let stride_valid = n.checked_div(n_valid).unwrap_or(usize::MAX);
        let stride_test = n.checked_div(n_test).unwrap_or(usize::MAX);
        for (i, e) in self.edges.iter().enumerate() {
            if stride_valid != usize::MAX && i % stride_valid == 0 && valid.len() < n_valid {
                valid.push(*e);
            } else if stride_test != usize::MAX && i % stride_test == 1 && test.len() < n_test {
                test.push(*e);
            } else {
                train.push(*e);
            }
        }
        (train, valid, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_list() -> EdgeList {
        let edges = vec![
            Edge::new(0, 1),
            Edge::new(1, 2),
            Edge::new(2, 0),
            Edge::with_rel(0, 3, 2),
        ];
        EdgeList::from_edges(3, 4, edges).unwrap()
    }

    #[test]
    fn edge_constructors() {
        let e = Edge::new(1, 2);
        assert_eq!(e.rel, 0);
        let e = Edge::with_rel(1, 5, 2);
        assert_eq!(e.rel, 5);
        assert_eq!(e.reversed(), Edge::with_rel(2, 5, 1));
    }

    #[test]
    fn from_edges_validates_ranges() {
        let bad = vec![Edge::new(0, 5)];
        assert!(EdgeList::from_edges(3, 1, bad).is_err());
        let bad = vec![Edge::new(5, 0)];
        assert!(EdgeList::from_edges(3, 1, bad).is_err());
    }

    #[test]
    fn push_validates_and_tracks_relations() {
        let mut el = EdgeList::new(4);
        el.push(Edge::with_rel(0, 7, 1)).unwrap();
        assert_eq!(el.num_relations(), 8);
        assert!(el.push(Edge::new(0, 10)).is_err());
        assert!(el.push(Edge::new(10, 0)).is_err());
        assert_eq!(el.num_edges(), 1);
    }

    #[test]
    fn counts_and_storage() {
        let el = sample_list();
        assert_eq!(el.num_nodes(), 3);
        assert_eq!(el.num_edges(), 4);
        assert!(!el.is_empty());
        assert_eq!(el.edge_storage_bytes(), 4 * Edge::DISK_BYTES as u64);
    }

    #[test]
    fn degree_computation() {
        let el = sample_list();
        assert_eq!(el.out_degrees(), vec![2, 1, 1]);
        assert_eq!(el.in_degrees(), vec![1, 1, 2]);
    }

    #[test]
    fn split_edges_partitions_all_edges() {
        let mut el = EdgeList::new(100);
        for i in 0..100u64 {
            el.push(Edge::new(i % 100, (i + 1) % 100)).unwrap();
        }
        let (train, valid, test) = el.split_edges(0.1, 0.1);
        assert_eq!(train.len() + valid.len() + test.len(), 100);
        assert_eq!(valid.len(), 10);
        assert_eq!(test.len(), 10);
    }

    #[test]
    fn split_edges_zero_fractions() {
        let el = sample_list();
        let (train, valid, test) = el.split_edges(0.0, 0.0);
        assert_eq!(train.len(), 4);
        assert!(valid.is_empty());
        assert!(test.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid split fractions")]
    fn split_edges_invalid_fractions_panics() {
        let el = sample_list();
        let _ = el.split_edges(0.6, 0.6);
    }

    #[test]
    fn into_edges_roundtrip() {
        let el = sample_list();
        let edges = el.clone().into_edges();
        let el2 = EdgeList::from_edges(3, 4, edges).unwrap();
        assert_eq!(el, el2);
    }
}
