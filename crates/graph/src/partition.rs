//! Node partitioning and edge buckets (paper §3).
//!
//! For disk-based training the graph's nodes are split into `p` *physical
//! partitions*; the base representations of each partition are stored contiguously
//! on disk. The edge list is organised into *edge buckets*: bucket `(i, j)` holds
//! every edge whose source lies in partition `i` and destination in partition `j`.
//! Training brings subsets of partitions (and the corresponding `c²` buckets) into
//! a fixed-capacity CPU buffer.
//!
//! Two assignment strategies are provided, matching §5 of the paper:
//!
//! * [`Partitioner::random`] — uniform random assignment (link prediction, COMET).
//! * [`Partitioner::training_nodes_first`] — all labeled training nodes are packed
//!   sequentially into the first `k` partitions so they can be cached in memory
//!   for the whole epoch (node classification policy, §5.2).

use crate::{Edge, EdgeList, GraphError, NodeId, PartitionId, Result};
use rand::seq::SliceRandom;
use rand::Rng;

/// A mapping from nodes to physical partitions.
#[derive(Debug, Clone)]
pub struct PartitionAssignment {
    node_to_partition: Vec<PartitionId>,
    partition_nodes: Vec<Vec<NodeId>>,
    num_partitions: u32,
}

impl PartitionAssignment {
    /// Builds an assignment from an explicit node→partition vector.
    pub fn from_vec(node_to_partition: Vec<PartitionId>, num_partitions: u32) -> Result<Self> {
        if num_partitions == 0 {
            return Err(GraphError::InvalidPartitioning {
                reason: "number of partitions must be positive".into(),
            });
        }
        let mut partition_nodes = vec![Vec::new(); num_partitions as usize];
        for (node, &p) in node_to_partition.iter().enumerate() {
            if p >= num_partitions {
                return Err(GraphError::InvalidPartitioning {
                    reason: format!("node {node} assigned to partition {p} >= {num_partitions}"),
                });
            }
            partition_nodes[p as usize].push(node as NodeId);
        }
        Ok(PartitionAssignment {
            node_to_partition,
            partition_nodes,
            num_partitions,
        })
    }

    /// Returns the number of partitions.
    pub fn num_partitions(&self) -> u32 {
        self.num_partitions
    }

    /// Returns the number of nodes covered by the assignment.
    pub fn num_nodes(&self) -> u64 {
        self.node_to_partition.len() as u64
    }

    /// Returns the partition that `node` belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn partition_of(&self, node: NodeId) -> PartitionId {
        self.node_to_partition[node as usize]
    }

    /// Returns the nodes assigned to `partition`.
    pub fn nodes_in(&self, partition: PartitionId) -> &[NodeId] {
        &self.partition_nodes[partition as usize]
    }

    /// Returns the size (node count) of each partition.
    pub fn partition_sizes(&self) -> Vec<usize> {
        self.partition_nodes.iter().map(|v| v.len()).collect()
    }

    /// Returns the bucket index `(i, j)` an edge belongs to.
    pub fn bucket_of(&self, edge: &Edge) -> (PartitionId, PartitionId) {
        (self.partition_of(edge.src), self.partition_of(edge.dst))
    }
}

/// An edge bucket `(src_partition, dst_partition)` with the edges it contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeBucket {
    /// Source partition id.
    pub src_partition: PartitionId,
    /// Destination partition id.
    pub dst_partition: PartitionId,
    /// Edges whose source is in `src_partition` and destination in `dst_partition`.
    pub edges: Vec<Edge>,
}

impl EdgeBucket {
    /// Returns the bucket key `(i, j)`.
    pub fn key(&self) -> (PartitionId, PartitionId) {
        (self.src_partition, self.dst_partition)
    }

    /// Returns the number of edges in the bucket.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if the bucket holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Bytes this bucket occupies on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.edges.len() as u64 * Edge::DISK_BYTES as u64
    }
}

/// Builds partition assignments and edge buckets.
#[derive(Debug, Clone)]
pub struct Partitioner {
    num_partitions: u32,
}

impl Partitioner {
    /// Creates a partitioner producing `num_partitions` physical partitions.
    pub fn new(num_partitions: u32) -> Result<Self> {
        if num_partitions == 0 {
            return Err(GraphError::InvalidPartitioning {
                reason: "number of partitions must be positive".into(),
            });
        }
        Ok(Partitioner { num_partitions })
    }

    /// Assigns every node to a uniformly random partition.
    pub fn random<R: Rng + ?Sized>(&self, num_nodes: u64, rng: &mut R) -> PartitionAssignment {
        // Balanced random assignment: shuffle node ids and deal them round-robin,
        // so partition sizes differ by at most one.
        let mut nodes: Vec<NodeId> = (0..num_nodes).collect();
        nodes.shuffle(rng);
        let mut node_to_partition = vec![0 as PartitionId; num_nodes as usize];
        for (i, node) in nodes.into_iter().enumerate() {
            node_to_partition[node as usize] = (i as u64 % self.num_partitions as u64) as u32;
        }
        PartitionAssignment::from_vec(node_to_partition, self.num_partitions)
            .expect("round-robin assignment is always valid")
    }

    /// Packs `training_nodes` sequentially into the lowest-numbered partitions and
    /// assigns the remaining nodes randomly (paper §5.2).
    ///
    /// Returns the assignment together with the number of partitions `k` that
    /// contain training nodes.
    pub fn training_nodes_first<R: Rng + ?Sized>(
        &self,
        num_nodes: u64,
        training_nodes: &[NodeId],
        rng: &mut R,
    ) -> (PartitionAssignment, u32) {
        let partition_capacity = (num_nodes as usize)
            .div_ceil(self.num_partitions as usize)
            .max(1);
        let mut node_to_partition = vec![u32::MAX; num_nodes as usize];

        // Fill the first partitions with training nodes, `partition_capacity` each.
        let mut cursor = 0usize;
        for &t in training_nodes {
            let p = (cursor / partition_capacity) as u32;
            node_to_partition[t as usize] = p.min(self.num_partitions - 1);
            cursor += 1;
        }
        let k = if training_nodes.is_empty() {
            0
        } else {
            ((cursor - 1) / partition_capacity) as u32 + 1
        };

        // Assign the remaining nodes to the remaining slots round-robin after a shuffle.
        let mut rest: Vec<NodeId> = (0..num_nodes)
            .filter(|n| node_to_partition[*n as usize] == u32::MAX)
            .collect();
        rest.shuffle(rng);
        // Compute remaining capacity of each partition.
        let mut counts = vec![0usize; self.num_partitions as usize];
        for &p in node_to_partition.iter().filter(|&&p| p != u32::MAX) {
            counts[p as usize] += 1;
        }
        let mut p = 0u32;
        for node in rest {
            // Skip partitions that are already at capacity.
            let mut attempts = 0;
            while counts[p as usize] >= partition_capacity && attempts < self.num_partitions {
                p = (p + 1) % self.num_partitions;
                attempts += 1;
            }
            node_to_partition[node as usize] = p;
            counts[p as usize] += 1;
            p = (p + 1) % self.num_partitions;
        }

        let assignment = PartitionAssignment::from_vec(node_to_partition, self.num_partitions)
            .expect("all nodes assigned");
        (assignment, k.min(self.num_partitions))
    }

    /// Splits an edge list into the `p × p` edge buckets induced by `assignment`.
    ///
    /// Buckets are returned in row-major order `(0,0), (0,1), ..., (p-1,p-1)`;
    /// empty buckets are included so that indexing by `i * p + j` is always valid.
    pub fn build_buckets(
        &self,
        edges: &EdgeList,
        assignment: &PartitionAssignment,
    ) -> Result<Vec<EdgeBucket>> {
        if assignment.num_nodes() < edges.num_nodes() {
            return Err(GraphError::InvalidPartitioning {
                reason: format!(
                    "assignment covers {} nodes but graph has {}",
                    assignment.num_nodes(),
                    edges.num_nodes()
                ),
            });
        }
        let p = self.num_partitions as usize;
        let mut buckets: Vec<EdgeBucket> = (0..p * p)
            .map(|idx| EdgeBucket {
                src_partition: (idx / p) as u32,
                dst_partition: (idx % p) as u32,
                edges: Vec::new(),
            })
            .collect();
        for e in edges.edges() {
            let (i, j) = assignment.bucket_of(e);
            buckets[i as usize * p + j as usize].edges.push(*e);
        }
        Ok(buckets)
    }
}

/// Convenience: total number of edges across a set of buckets.
pub fn total_bucket_edges(buckets: &[EdgeBucket]) -> usize {
    buckets.iter().map(|b| b.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_graph(n: u64) -> EdgeList {
        let mut el = EdgeList::new(n);
        for i in 0..n - 1 {
            el.push(Edge::new(i, i + 1)).unwrap();
        }
        el
    }

    #[test]
    fn partitioner_rejects_zero_partitions() {
        assert!(Partitioner::new(0).is_err());
    }

    #[test]
    fn random_partitioning_is_balanced() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Partitioner::new(4).unwrap();
        let a = p.random(100, &mut rng);
        let sizes = a.partition_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 100);
        for s in sizes {
            assert_eq!(s, 25);
        }
    }

    #[test]
    fn random_partitioning_uneven_sizes_differ_by_at_most_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = Partitioner::new(3).unwrap();
        let a = p.random(10, &mut rng);
        let sizes = a.partition_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn partition_of_and_nodes_in_agree() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Partitioner::new(5).unwrap();
        let a = p.random(50, &mut rng);
        for node in 0..50u64 {
            let part = a.partition_of(node);
            assert!(a.nodes_in(part).contains(&node));
        }
    }

    #[test]
    fn from_vec_validates_partition_ids() {
        assert!(PartitionAssignment::from_vec(vec![0, 1, 5], 3).is_err());
        assert!(PartitionAssignment::from_vec(vec![0, 1, 2], 0).is_err());
        assert!(PartitionAssignment::from_vec(vec![0, 1, 2], 3).is_ok());
    }

    #[test]
    fn buckets_cover_all_edges() {
        let mut rng = StdRng::seed_from_u64(4);
        let el = line_graph(40);
        let p = Partitioner::new(4).unwrap();
        let a = p.random(40, &mut rng);
        let buckets = p.build_buckets(&el, &a).unwrap();
        assert_eq!(buckets.len(), 16);
        assert_eq!(total_bucket_edges(&buckets), el.num_edges());
        // Every edge is in exactly the bucket keyed by its endpoints' partitions.
        for b in &buckets {
            for e in &b.edges {
                assert_eq!(a.partition_of(e.src), b.src_partition);
                assert_eq!(a.partition_of(e.dst), b.dst_partition);
            }
        }
    }

    #[test]
    fn buckets_row_major_indexing() {
        let mut rng = StdRng::seed_from_u64(5);
        let el = line_graph(20);
        let p = Partitioner::new(3).unwrap();
        let a = p.random(20, &mut rng);
        let buckets = p.build_buckets(&el, &a).unwrap();
        for i in 0..3u32 {
            for j in 0..3u32 {
                let b = &buckets[(i * 3 + j) as usize];
                assert_eq!(b.key(), (i, j));
            }
        }
    }

    #[test]
    fn build_buckets_rejects_short_assignment() {
        let mut rng = StdRng::seed_from_u64(6);
        let el = line_graph(20);
        let p = Partitioner::new(2).unwrap();
        let a = p.random(10, &mut rng);
        assert!(p.build_buckets(&el, &a).is_err());
    }

    #[test]
    fn training_nodes_first_packs_training_nodes_into_prefix() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Partitioner::new(10).unwrap();
        let training: Vec<NodeId> = (0..15).map(|i| i * 6 % 100).collect();
        let (a, k) = p.training_nodes_first(100, &training, &mut rng);
        // 100 nodes / 10 partitions = 10 per partition; 15 training nodes need 2 partitions.
        assert_eq!(k, 2);
        for &t in &training {
            assert!(a.partition_of(t) < k);
        }
        assert_eq!(a.partition_sizes().iter().sum::<usize>(), 100);
    }

    #[test]
    fn training_nodes_first_with_no_training_nodes() {
        let mut rng = StdRng::seed_from_u64(8);
        let p = Partitioner::new(4).unwrap();
        let (a, k) = p.training_nodes_first(20, &[], &mut rng);
        assert_eq!(k, 0);
        assert_eq!(a.partition_sizes().iter().sum::<usize>(), 20);
    }

    #[test]
    fn training_nodes_first_respects_capacity() {
        let mut rng = StdRng::seed_from_u64(9);
        let p = Partitioner::new(4).unwrap();
        let training: Vec<NodeId> = (0..5).collect();
        let (a, _k) = p.training_nodes_first(16, &training, &mut rng);
        let sizes = a.partition_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 16);
        // Capacity per partition is ceil(16/4) = 4, so no partition exceeds it by
        // more than the training-node overflow of one partition.
        for s in sizes {
            assert!(s <= 5);
        }
    }

    #[test]
    fn empty_bucket_properties() {
        let b = EdgeBucket {
            src_partition: 1,
            dst_partition: 2,
            edges: vec![],
        };
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.disk_bytes(), 0);
        assert_eq!(b.key(), (1, 2));
    }
}
