//! Property tests for the checkpoint state encoding.
//!
//! The durable-state contract hinges on `StateDict::encode`/`decode` being an
//! exact inverse pair for arbitrary blob shapes and contents, and on decode
//! *rejecting* anything that was corrupted in flight. These properties back
//! the corrupted-checksum and truncated-manifest rejection tests with
//! randomized coverage.

use marius_core::checkpoint::{fnv1a64, StateDict};
use proptest::prelude::*;

/// Builds a dict with one f32 blob of shape `(rows, cols)` and one u64 blob,
/// both content-randomized.
fn build_dict(rows: usize, cols: usize, f32_seed: u32, u64s: &[u64]) -> StateDict {
    let mut dict = StateDict::new();
    // Deterministic but varied f32 payload, including negatives, zeros and
    // subnormal-ish magnitudes.
    let values: Vec<f32> = (0..rows * cols)
        .map(|i| {
            let x = (i as u32)
                .wrapping_mul(2_654_435_761)
                .wrapping_add(f32_seed);
            f32::from_bits(x & 0x7f7f_ffff) * if x & 1 == 0 { 1.0 } else { -1.0 }
        })
        .collect();
    dict.push_f32("model.blob", rows, cols, &values);
    dict.push_u64("trainer.blob", u64s);
    dict
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode ∘ decode is the identity for arbitrary dims and payloads —
    /// including the exact f32 bit patterns.
    #[test]
    fn encode_decode_is_identity(
        rows in 0usize..40,
        cols in 1usize..17,
        f32_seed in 0u32..u32::MAX,
        u64s in proptest::collection::vec(0u64..u64::MAX, 0..32),
    ) {
        let dict = build_dict(rows, cols, f32_seed, &u64s);
        let (bytes, entries) = dict.encode();
        let back = StateDict::decode(&entries, &bytes).unwrap();
        prop_assert_eq!(&dict, &back);
        prop_assert_eq!(back.require_u64("trainer.blob").unwrap(), u64s);
        let original = dict.require_f32("model.blob", rows, cols).unwrap();
        let decoded = back.require_f32("model.blob", rows, cols).unwrap();
        prop_assert_eq!(original.len(), decoded.len());
        for (a, b) in original.iter().zip(&decoded) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Any single flipped payload byte is caught by the per-blob checksum.
    #[test]
    fn single_byte_corruption_is_always_detected(
        rows in 1usize..16,
        cols in 1usize..9,
        f32_seed in 0u32..u32::MAX,
        victim in 0usize..4096,
        flip in 1u8..=255,
    ) {
        let dict = build_dict(rows, cols, f32_seed, &[7, 8, 9]);
        let (mut bytes, entries) = dict.encode();
        let victim = victim % bytes.len();
        bytes[victim] ^= flip;
        let err = StateDict::decode(&entries, &bytes).unwrap_err();
        prop_assert!(format!("{err}").contains("checksum"));
    }

    /// Truncating the blob buffer anywhere is rejected (out-of-range blob or
    /// checksum mismatch), never silently accepted.
    #[test]
    fn truncation_is_always_rejected(
        rows in 1usize..16,
        cols in 1usize..9,
        f32_seed in 0u32..u32::MAX,
        keep in 0usize..4096,
    ) {
        let dict = build_dict(rows, cols, f32_seed, &[1, 2, 3]);
        let (bytes, entries) = dict.encode();
        let keep = keep % bytes.len(); // strictly shorter than the original
        prop_assert!(StateDict::decode(&entries, &bytes[..keep]).is_err());
    }

    /// The checksum itself behaves: equal input, equal hash; flipping a byte
    /// changes it (FNV-1a mixes every byte into the state).
    #[test]
    fn fnv_is_deterministic_and_byte_sensitive(
        payload in proptest::collection::vec(0u8..=255, 1..128),
        victim in 0usize..4096,
        flip in 1u8..=255,
    ) {
        prop_assert_eq!(fnv1a64(&payload), fnv1a64(&payload));
        let mut mutated = payload.clone();
        let victim = victim % mutated.len();
        mutated[victim] ^= flip;
        prop_assert!(fnv1a64(&payload) != fnv1a64(&mutated));
    }
}
