//! Property tests for the shared seeded shuffle.
//!
//! The trainers and the pipelined runtime used to carry a hand-rolled
//! `shuffle_in_place`; both now use the single Fisher–Yates implementation in
//! `rand::seq::SliceRandom`. These properties pin the behaviours the training
//! engine's determinism rests on: the shuffle is a permutation, it is a pure
//! function of the RNG seed, and it consumes exactly `len - 1` draws (so the
//! sequential and pipelined executors stay in lockstep on shared step RNGs).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shuffling rearranges, never adds/drops/duplicates.
    #[test]
    fn shuffle_is_a_permutation(mut v in proptest::collection::vec(0u32..1000, 0..200), seed in 0u64..1 << 48) {
        let mut sorted_before = v.clone();
        sorted_before.sort_unstable();
        let mut rng = StdRng::seed_from_u64(seed);
        v.shuffle(&mut rng);
        let mut sorted_after = v.clone();
        sorted_after.sort_unstable();
        prop_assert_eq!(sorted_before, sorted_after);
    }

    /// The permutation is fully determined by the seed.
    #[test]
    fn shuffle_is_deterministic_in_the_seed(v in proptest::collection::vec(0u32..1000, 0..200), seed in 0u64..1 << 48) {
        let mut a = v.clone();
        let mut b = v;
        a.shuffle(&mut StdRng::seed_from_u64(seed));
        b.shuffle(&mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    /// Shuffling a slice of length n consumes exactly max(n - 1, 0) uniform
    /// draws: two RNGs stay synchronised after shuffling equal-length slices,
    /// which is what keeps worker-thread batch construction bit-identical to
    /// the sequential oracle.
    #[test]
    fn shuffle_rng_consumption_depends_only_on_length(len in 0usize..64, seed in 0u64..1 << 48) {
        let mut a_rng = StdRng::seed_from_u64(seed);
        let mut b_rng = StdRng::seed_from_u64(seed);
        let mut a: Vec<usize> = (0..len).collect();
        let mut b: Vec<usize> = (0..len).rev().collect();
        a.shuffle(&mut a_rng);
        b.shuffle(&mut b_rng);
        // Same number of draws consumed -> identical next draw.
        prop_assert_eq!(a_rng.gen::<u64>(), b_rng.gen::<u64>());
    }
}
