//! Temporal link prediction as a [`Task`]: chronological train/valid/test
//! windows over the implicit generation-order timestamps, and time-split
//! negative sampling for evaluation.
//!
//! The workload reuses the link-prediction model stack (DistMult scoring,
//! shared-negative batches, COMET/BETA disk policies) but replaces the
//! strided random split with [`marius_graph::temporal::chronological_split`]:
//! the evaluation windows are the newest edges of the **base** dataset (the
//! first `spec.num_edges` edges of `data.graph`), and everything older —
//! plus every edge streamed in after generation — trains. Evaluation is
//! *time-split*: ranking candidates are
//! [`marius_graph::temporal::observed_nodes`] over the base training window
//! only, so no node participates in evaluation unless it was observed
//! strictly before the held-out windows, and the evaluation subgraph is the
//! frozen base training window rather than the growing train set. Both are
//! precomputed once per run, which keeps evaluation bit-comparable across
//! ingest cycles and across resumed runs (see `marius_stream` for the ingest
//! half of the contract).

use super::{graph_err, DiskSetup, Task};
use crate::config::{DiskConfig, ModelConfig, PolicyKind, TrainConfig};
use crate::models::{BatchStats, LinkBatchBuilder, LinkPredictionModel, PreparedLinkBatch};
use crate::source::{RepresentationSource, TableSource};
use crate::trainer::read_all_embeddings;
use marius_gnn::EmbeddingTable;
use marius_graph::datasets::ScaledDataset;
use marius_graph::temporal::{chronological_split, observed_nodes, ChronologicalSplit};
use marius_graph::{Edge, EdgeBucket, InMemorySubgraph, NodeId, Partitioner};
use marius_storage::policy::ReplacementPolicy;
use marius_storage::{
    BetaPolicy, CometPolicy, EpochPlan, PartitionBuffer, PartitionStore, Result, StorageError,
};
use rand::rngs::StdRng;
use std::sync::Arc;

/// The temporal link-prediction workload: chronological splits with frozen
/// evaluation windows and time-split negative sampling. This is the task the
/// streaming ingest path fine-tunes — its training set may grow at epoch
/// boundaries while its evaluation stays pinned to the base dataset's newest
/// edges.
#[derive(Debug, Clone, Copy, Default)]
pub struct TemporalLinkPredictionTask;

/// Precomputed evaluation inputs for temporal link prediction: the frozen
/// base-train subgraph, the time-split candidate set, and the held-out test
/// window. All three depend only on the base prefix of the edge list, never
/// on streamed edges.
pub struct TemporalEvalContext {
    subgraph: Arc<InMemorySubgraph>,
    candidates: Vec<NodeId>,
    test: Vec<Edge>,
}

impl TemporalLinkPredictionTask {
    /// The chronological split of `data`'s edge list, with evaluation
    /// windows frozen over the base prefix (`data.spec.num_edges` edges —
    /// the dataset as generated; any suffix beyond that was streamed in).
    pub fn split(data: &ScaledDataset) -> ChronologicalSplit {
        chronological_split(data.graph.edges(), data.spec.num_edges as usize)
    }

    /// The frozen base training window: the chronologically oldest base
    /// edges, independent of any streamed suffix.
    fn base_train(data: &ScaledDataset) -> Vec<Edge> {
        let base_len = data.spec.num_edges as usize;
        chronological_split(&data.graph.edges()[..base_len], base_len).train
    }
}

impl Task for TemporalLinkPredictionTask {
    type Example = Edge;
    type Model = LinkPredictionModel;
    type BatchBuilder = LinkBatchBuilder;
    type PreparedBatch = PreparedLinkBatch;
    type EvalContext = TemporalEvalContext;

    fn slug(&self) -> &'static str {
        "tlp"
    }

    fn metric_name(&self) -> &'static str {
        "MRR"
    }

    fn build_model(
        &self,
        model: &ModelConfig,
        train: &TrainConfig,
        data: &ScaledDataset,
        rng: &mut StdRng,
    ) -> Result<Self::Model> {
        Ok(
            LinkPredictionModel::new(model, data.spec.num_relations, rng)
                .with_negatives(train.num_negatives),
        )
    }

    fn batch_builder(&self, model: &Self::Model) -> Self::BatchBuilder {
        model.batch_builder()
    }

    fn in_memory_source(
        &self,
        model: &ModelConfig,
        data: &ScaledDataset,
        rng: &mut StdRng,
    ) -> Result<Box<dyn RepresentationSource>> {
        let table = EmbeddingTable::new(data.num_nodes() as usize, model.input_dim, 0.1, rng)
            .with_learning_rate(model.embedding_learning_rate);
        Ok(Box::new(TableSource::new(table)))
    }

    fn in_memory_subgraph(&self, data: &ScaledDataset) -> InMemorySubgraph {
        InMemorySubgraph::from_edges(&Self::split(data).train)
    }

    fn in_memory_examples(&self, data: &ScaledDataset) -> Vec<Edge> {
        Self::split(data).train
    }

    fn in_memory_candidates(&self, data: &ScaledDataset) -> Vec<NodeId> {
        (0..data.num_nodes()).collect()
    }

    fn prepare(
        &self,
        builder: &Self::BatchBuilder,
        _data: &ScaledDataset,
        subgraph: &InMemorySubgraph,
        batch: &[Edge],
        candidates: &[NodeId],
        rng: &mut StdRng,
    ) -> Self::PreparedBatch {
        builder.prepare(subgraph, batch, candidates, rng)
    }

    fn train_prepared(
        &self,
        model: &mut Self::Model,
        source: &mut dyn RepresentationSource,
        prepared: Self::PreparedBatch,
    ) -> BatchStats {
        model.train_prepared(source, prepared)
    }

    fn disk_label(&self, disk: &DiskConfig) -> Result<String> {
        match disk.policy {
            PolicyKind::Comet => Ok("M-GNN_Stream (COMET)".into()),
            PolicyKind::Beta => Ok("M-GNN_Stream (BETA)".into()),
            PolicyKind::NodeCache => Err(StorageError::InvalidPlan {
                reason: "node-cache policy applies to node classification only".into(),
            }),
        }
    }

    fn disk_setup(
        &self,
        model: &ModelConfig,
        data: &ScaledDataset,
        disk: &DiskConfig,
        store: PartitionStore,
        rng: &mut StdRng,
    ) -> Result<DiskSetup> {
        let partitioner = Partitioner::new(disk.num_partitions).map_err(graph_err)?;
        let assignment = partitioner.random(data.num_nodes(), rng);
        // Resuming a streamed run passes the *grown* edge list here; its
        // chronological train set equals the base train set with the streamed
        // suffix appended, so build_buckets reproduces the bucket contents an
        // uninterrupted run reached by incremental delta application (both
        // append in time order).
        let train_graph = marius_graph::EdgeList::from_edges(
            data.num_nodes(),
            data.spec.num_relations,
            Self::split(data).train,
        )
        .map_err(graph_err)?;
        let buckets = partitioner
            .build_buckets(&train_graph, &assignment)
            .map_err(graph_err)?;
        let buffer = PartitionBuffer::new(
            store.clone(),
            assignment.clone(),
            model.input_dim,
            disk.buffer_capacity,
            true,
        )
        .with_learning_rate(model.embedding_learning_rate);
        buffer.initialize_random(0.1, rng)?;
        buffer.initialize_buckets(&buckets)?;
        Ok(DiskSetup {
            assignment,
            buckets,
            buffer,
            store,
            cached_partitions: 0,
            writeback: true,
        })
    }

    fn epoch_plan(
        &self,
        disk: &DiskConfig,
        _setup: &DiskSetup,
        rng: &mut StdRng,
    ) -> Result<EpochPlan> {
        let p = disk.num_partitions;
        match disk.policy {
            PolicyKind::Comet => {
                let policy = if disk.num_logical == 0 {
                    CometPolicy::auto(p, disk.buffer_capacity)
                } else {
                    CometPolicy::new(disk.buffer_capacity, disk.num_logical)
                };
                policy.plan(p, rng)
            }
            PolicyKind::Beta => BetaPolicy::new(disk.buffer_capacity).plan(p, rng),
            PolicyKind::NodeCache => Err(StorageError::InvalidPlan {
                reason: "node-cache policy applies to node classification only".into(),
            }),
        }
    }

    fn step_examples(
        &self,
        _data: &ScaledDataset,
        buckets: &[EdgeBucket],
        num_partitions: u32,
        plan: &EpochPlan,
        step: usize,
    ) -> Vec<Edge> {
        let mut edges = Vec::new();
        for &(i, j) in &plan.bucket_assignment[step] {
            edges.extend_from_slice(&buckets[(i * num_partitions + j) as usize].edges);
        }
        edges
    }

    fn step_example_count(
        &self,
        _data: &ScaledDataset,
        buckets: &[EdgeBucket],
        num_partitions: u32,
        plan: &EpochPlan,
        step: usize,
    ) -> usize {
        plan.bucket_assignment[step]
            .iter()
            .map(|&(i, j)| buckets[(i * num_partitions + j) as usize].edges.len())
            .sum()
    }

    fn disk_eval_source(
        &self,
        model: &ModelConfig,
        _data: &ScaledDataset,
        setup: &DiskSetup,
    ) -> Result<Box<dyn RepresentationSource>> {
        let flat = read_all_embeddings(&setup.store, &setup.assignment, model.input_dim)?;
        Ok(Box::new(TableSource::new(EmbeddingTable::from_rows(
            flat,
            model.input_dim,
        ))))
    }

    fn eval_context(&self, data: &ScaledDataset) -> Self::EvalContext {
        let base_train = Self::base_train(data);
        TemporalEvalContext {
            candidates: observed_nodes(&base_train),
            subgraph: Arc::new(InMemorySubgraph::from_edges(&base_train)),
            test: Self::split(data).test,
        }
    }

    fn in_memory_eval_context(
        &self,
        data: &ScaledDataset,
        _train_subgraph: &Arc<InMemorySubgraph>,
    ) -> Self::EvalContext {
        // Unlike plain link prediction, temporal evaluation cannot share the
        // training subgraph: the train set may include streamed edges newer
        // than the held-out windows, while evaluation must see only the
        // frozen base training window.
        self.eval_context(data)
    }

    fn evaluate(
        &self,
        model: &Self::Model,
        source: &dyn RepresentationSource,
        ctx: &Self::EvalContext,
        _data: &ScaledDataset,
        train: &TrainConfig,
        rng: &mut StdRng,
    ) -> f64 {
        model.evaluate_mrr(
            source,
            &ctx.subgraph,
            &ctx.test,
            &ctx.candidates,
            train.eval_negatives,
            rng,
        )
    }

    fn save_state(&self, model: &Self::Model, dict: &mut crate::checkpoint::StateDict) {
        use crate::checkpoint::Persist;
        model.save_state(dict);
    }

    fn load_state(
        &self,
        model: &mut Self::Model,
        dict: &crate::checkpoint::StateDict,
    ) -> Result<()> {
        use crate::checkpoint::Persist;
        model.load_state(dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::datasets::DatasetSpec;

    fn dataset() -> ScaledDataset {
        ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.015), 3)
    }

    #[test]
    fn eval_context_is_frozen_over_the_base_window() {
        let mut data = dataset();
        let task = TemporalLinkPredictionTask;
        let before = task.eval_context(&data);
        // Stream in edges between existing nodes; the eval inputs must not
        // move.
        for k in 0..50u64 {
            data.graph.push(Edge::new(k % 10, (k + 1) % 10)).unwrap();
        }
        let after = task.eval_context(&data);
        assert_eq!(before.test, after.test);
        assert_eq!(before.candidates, after.candidates);
        // The grown train set is the base train set plus the streamed suffix.
        let base_len = data.spec.num_edges as usize;
        let split = TemporalLinkPredictionTask::split(&data);
        assert_eq!(split.train.len(), base_len - 2 * split.valid.len() + 50);
    }

    #[test]
    fn candidates_are_restricted_to_observed_nodes() {
        let data = dataset();
        let ctx = TemporalLinkPredictionTask.eval_context(&data);
        assert!(!ctx.candidates.is_empty());
        assert!(ctx.candidates.len() <= data.num_nodes() as usize);
        assert!(ctx.candidates.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn trains_in_memory_and_improves() {
        use crate::config::{ModelConfig, TrainConfig};
        use crate::trainer::Trainer;
        let data = dataset();
        let mut train = TrainConfig::quick(2, 9);
        train.batch_size = 128;
        train.num_negatives = 32;
        train.eval_negatives = 64;
        let trainer: Trainer<TemporalLinkPredictionTask> =
            Trainer::new(ModelConfig::paper_distmult(12), train);
        let report = trainer.train_in_memory(&data).unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert!(report.final_metric() > 0.1, "MRR {}", report.final_metric());
    }
}
