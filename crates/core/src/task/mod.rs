//! The [`Task`] abstraction: everything that differs between training
//! workloads, captured behind one trait.
//!
//! The paper's Figure 2 describes a single processing pipeline that serves
//! both of its workloads (link prediction and node classification). This
//! module is that boundary in code: the generic
//! [`Trainer`](crate::trainer::Trainer) owns the in-memory, sequential-disk
//! and pipelined-disk epoch executors exactly once, and delegates every
//! task-specific decision — what a training example is, how a mini batch is
//! constructed and applied, how storage is laid out on disk, and how the
//! model is evaluated — to a [`Task`] implementation.
//!
//! Three implementations are provided:
//!
//! * [`LinkPredictionTask`] — examples are edges, batches carry shared
//!   negatives, storage uses random partitioning with the COMET/BETA
//!   replacement policies, and evaluation ranks held-out edges by MRR.
//! * [`NodeClassificationTask`] — examples are labeled nodes, storage packs
//!   the training nodes into leading partitions cached for the whole epoch
//!   (§5.2), and evaluation measures test-set accuracy.
//! * [`TemporalLinkPredictionTask`] — link prediction over chronological
//!   splits (generation order is time order) with time-split negative
//!   sampling; the workload the streaming ingest path fine-tunes.
//!
//! Implementations must preserve the trainer's RNG discipline: any method
//! that receives an RNG draws from it in a deterministic order (or not at
//! all), so that the sequential and pipelined executors remain bit-identical
//! under a fixed seed.

mod link_prediction;
mod node_classification;
mod temporal_link_prediction;

pub use link_prediction::{LinkEvalContext, LinkPredictionTask};
pub use node_classification::{NodeClassificationTask, NodeEvalContext};
pub use temporal_link_prediction::{TemporalEvalContext, TemporalLinkPredictionTask};

use crate::config::{DiskConfig, ModelConfig, TrainConfig};
use crate::models::BatchStats;
use crate::source::RepresentationSource;
use marius_graph::datasets::ScaledDataset;
use marius_graph::{EdgeBucket, InMemorySubgraph, NodeId, PartitionAssignment};
use marius_storage::{EpochPlan, PartitionBuffer, PartitionStore, Result, StorageError};
use rand::rngs::StdRng;

/// Converts a graph-layer failure into the storage error the trainers
/// propagate.
pub(crate) fn graph_err(e: marius_graph::GraphError) -> StorageError {
    StorageError::InvalidPlan {
        reason: format!("graph construction failed: {e}"),
    }
}

/// Everything a disk-based training run needs, assembled once by
/// [`Task::disk_setup`] and threaded through the epoch executors.
pub struct DiskSetup {
    /// The node → physical-partition mapping.
    pub assignment: PartitionAssignment,
    /// The `p × p` edge buckets in row-major order.
    pub buckets: Vec<EdgeBucket>,
    /// The bounded in-memory partition buffer (initialised and ready).
    pub buffer: PartitionBuffer,
    /// Handle to the on-disk partition store backing `buffer`.
    pub store: PartitionStore,
    /// Number of leading partitions that hold training nodes (the `k` of the
    /// §5.2 caching policy; 0 for tasks that do not cache).
    pub cached_partitions: u32,
    /// Whether the buffer holds learnable state that must be flushed back to
    /// disk at the end of every epoch (true for trained embeddings, false for
    /// fixed features).
    pub writeback: bool,
}

/// A training workload: the task-specific half of the Figure 2 pipeline.
///
/// The generic [`Trainer`](crate::trainer::Trainer) drives implementations of
/// this trait through three phases — model/source construction, epoch
/// execution (batch preparation on worker threads plus compute on the
/// consumer thread), and evaluation. See the module docs for the contract on
/// RNG usage.
pub trait Task: Sync {
    /// One training example: an edge for link prediction, a labeled node for
    /// node classification.
    type Example: Clone + Send;
    /// The trainable model (encoder plus task head/decoder).
    type Model;
    /// The CPU-side batch constructor; shared by reference across the
    /// pipelined runtime's sampling workers.
    type BatchBuilder: Send + Sync;
    /// A fully constructed batch, ready for the compute stage. Crosses the
    /// worker → consumer queue in the pipelined runtime.
    type PreparedBatch: Send;
    /// Precomputed evaluation inputs (graph structure, labels, candidates).
    type EvalContext;

    /// Short machine-friendly tag used in store labels ("lp", "nc").
    fn slug(&self) -> &'static str;

    /// Human-readable name of the task metric ("MRR", "accuracy").
    fn metric_name(&self) -> &'static str;

    /// Builds the trainable model. Validates that `data` carries what the
    /// task needs (e.g. labels and a class count for classification).
    fn build_model(
        &self,
        model: &ModelConfig,
        train: &TrainConfig,
        data: &ScaledDataset,
        rng: &mut StdRng,
    ) -> Result<Self::Model>;

    /// A clone of the model's batch builder for use on sampling worker
    /// threads.
    fn batch_builder(&self, model: &Self::Model) -> Self::BatchBuilder;

    /// The base-representation source for in-memory training (a learnable
    /// embedding table or a fixed feature matrix).
    fn in_memory_source(
        &self,
        model: &ModelConfig,
        data: &ScaledDataset,
        rng: &mut StdRng,
    ) -> Result<Box<dyn RepresentationSource>>;

    /// The full in-memory training graph.
    fn in_memory_subgraph(&self, data: &ScaledDataset) -> InMemorySubgraph;

    /// All training examples for one in-memory epoch (shuffled per epoch by
    /// the trainer).
    fn in_memory_examples(&self, data: &ScaledDataset) -> Vec<Self::Example>;

    /// Negative-sampling candidates for in-memory training (empty for tasks
    /// without negative sampling).
    fn in_memory_candidates(&self, data: &ScaledDataset) -> Vec<NodeId>;

    /// Builds one prepared batch: the CPU-side half of a training step
    /// (negative sampling, label alignment, DENSE multi-hop sampling). Runs
    /// on the calling thread in sequential paths and on sampling workers in
    /// the pipelined path.
    fn prepare(
        &self,
        builder: &Self::BatchBuilder,
        data: &ScaledDataset,
        subgraph: &InMemorySubgraph,
        batch: &[Self::Example],
        candidates: &[NodeId],
        rng: &mut StdRng,
    ) -> Self::PreparedBatch;

    /// Applies one prepared batch to the model: forward/backward compute,
    /// parameter updates and the sparse write-back of representation
    /// gradients.
    fn train_prepared(
        &self,
        model: &mut Self::Model,
        source: &mut dyn RepresentationSource,
        prepared: Self::PreparedBatch,
    ) -> BatchStats;

    /// The report label for a disk-based run, or an error if the disk
    /// configuration's policy does not apply to this task.
    fn disk_label(&self, disk: &DiskConfig) -> Result<String>;

    /// Partitions the graph, materialises the on-disk layout in `store`, and
    /// returns the initialised [`DiskSetup`].
    fn disk_setup(
        &self,
        model: &ModelConfig,
        data: &ScaledDataset,
        disk: &DiskConfig,
        store: PartitionStore,
        rng: &mut StdRng,
    ) -> Result<DiskSetup>;

    /// Produces this epoch's partition-set walk from the task's replacement
    /// policy.
    fn epoch_plan(
        &self,
        disk: &DiskConfig,
        setup: &DiskSetup,
        rng: &mut StdRng,
    ) -> Result<EpochPlan>;

    /// The training examples assigned to plan step `step` (unshuffled; the
    /// executors shuffle with the step RNG). May be empty for steps that only
    /// stage partitions into the buffer.
    fn step_examples(
        &self,
        data: &ScaledDataset,
        buckets: &[EdgeBucket],
        num_partitions: u32,
        plan: &EpochPlan,
        step: usize,
    ) -> Vec<Self::Example>;

    /// The number of examples [`Task::step_examples`] would return, without
    /// materialising them (used to pre-compute per-step batch budgets).
    fn step_example_count(
        &self,
        data: &ScaledDataset,
        buckets: &[EdgeBucket],
        num_partitions: u32,
        plan: &EpochPlan,
        step: usize,
    ) -> usize;

    /// The representation source used to evaluate a disk-based run (for
    /// learnable embeddings this reassembles the full table from disk). The
    /// trainer calls this once per evaluated epoch for writeback setups and
    /// caches the result otherwise (fixed representations never change).
    fn disk_eval_source(
        &self,
        model: &ModelConfig,
        data: &ScaledDataset,
        setup: &DiskSetup,
    ) -> Result<Box<dyn RepresentationSource>>;

    /// Precomputes the evaluation inputs (full-graph structure, test labels,
    /// ranking candidates). Must not draw from any RNG.
    fn eval_context(&self, data: &ScaledDataset) -> Self::EvalContext;

    /// [`Task::eval_context`] for in-memory training, where evaluation runs
    /// over the training graph itself: implementations should share
    /// `train_subgraph` instead of rebuilding it. Must not draw from any RNG.
    fn in_memory_eval_context(
        &self,
        data: &ScaledDataset,
        train_subgraph: &std::sync::Arc<InMemorySubgraph>,
    ) -> Self::EvalContext;

    /// Computes the task metric over the held-out split.
    fn evaluate(
        &self,
        model: &Self::Model,
        source: &dyn RepresentationSource,
        ctx: &Self::EvalContext,
        data: &ScaledDataset,
        train: &TrainConfig,
        rng: &mut StdRng,
    ) -> f64;

    /// Appends the model's durable state (parameters *and* optimizer
    /// accumulators) to a checkpoint dictionary. Together with
    /// [`Task::load_state`] this is the task half of the durable-state
    /// contract: `Trainer<T>` checkpoints every task through this one generic
    /// code path (see [`crate::checkpoint`] for the on-disk format).
    fn save_state(&self, model: &Self::Model, dict: &mut crate::checkpoint::StateDict);

    /// Restores the model's durable state from a checkpoint dictionary,
    /// rejecting missing blobs or shape mismatches (a checkpoint from a
    /// different architecture must fail loudly, not load partially).
    fn load_state(
        &self,
        model: &mut Self::Model,
        dict: &crate::checkpoint::StateDict,
    ) -> Result<()>;
}
