//! Node classification as a [`Task`]: labeled-node examples, fixed input
//! features, the §5.2 training-node caching policy, accuracy evaluation.

use super::{graph_err, DiskSetup, Task};
use crate::config::{DiskConfig, ModelConfig, PolicyKind, TrainConfig};
use crate::models::{BatchStats, NodeBatchBuilder, NodeClassificationModel, PreparedNodeBatch};
use crate::source::{FixedFeatureSource, RepresentationSource};
use marius_graph::datasets::ScaledDataset;
use marius_graph::{EdgeBucket, InMemorySubgraph, NodeId, Partitioner};
use marius_storage::policy::ReplacementPolicy;
use marius_storage::{
    EpochPlan, NodeCachePolicy, PartitionBuffer, PartitionStore, Result, StorageError,
};
use rand::rngs::StdRng;
use std::sync::Arc;

/// The node-classification workload: training examples are labeled nodes,
/// input representations are fixed features, and disk-based training caches
/// the partitions holding the labeled training nodes in the buffer for the
/// whole epoch (the §5.2 policy).
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeClassificationTask;

/// Precomputed evaluation inputs for node classification.
pub struct NodeEvalContext {
    subgraph: Arc<InMemorySubgraph>,
    test_labels: Vec<u32>,
}

fn labels_for(data: &ScaledDataset, nodes: &[NodeId]) -> Vec<u32> {
    let labels = data.labels.as_ref().expect("node classification labels");
    nodes.iter().map(|&n| labels[n as usize]).collect()
}

fn require_labels(data: &ScaledDataset) -> Result<()> {
    if data.labels.is_none() {
        return Err(StorageError::InvalidPlan {
            reason: "dataset has no node labels for node classification".into(),
        });
    }
    Ok(())
}

impl Task for NodeClassificationTask {
    type Example = NodeId;
    type Model = NodeClassificationModel;
    type BatchBuilder = NodeBatchBuilder;
    type PreparedBatch = PreparedNodeBatch;
    type EvalContext = NodeEvalContext;

    fn slug(&self) -> &'static str {
        "nc"
    }

    fn metric_name(&self) -> &'static str {
        "accuracy"
    }

    fn build_model(
        &self,
        model: &ModelConfig,
        _train: &TrainConfig,
        data: &ScaledDataset,
        rng: &mut StdRng,
    ) -> Result<Self::Model> {
        let num_classes = data
            .spec
            .num_classes
            .ok_or_else(|| StorageError::InvalidPlan {
                reason: "dataset has no class count; node classification needs a labeled dataset"
                    .into(),
            })?;
        require_labels(data)?;
        Ok(NodeClassificationModel::new(model, num_classes, rng))
    }

    fn batch_builder(&self, model: &Self::Model) -> Self::BatchBuilder {
        model.batch_builder()
    }

    fn in_memory_source(
        &self,
        _model: &ModelConfig,
        data: &ScaledDataset,
        _rng: &mut StdRng,
    ) -> Result<Box<dyn RepresentationSource>> {
        let features = data
            .features
            .clone()
            .ok_or_else(|| StorageError::InvalidPlan {
                reason: "dataset has no fixed feature matrix for node classification".into(),
            })?;
        Ok(Box::new(FixedFeatureSource::new(features)))
    }

    fn in_memory_subgraph(&self, data: &ScaledDataset) -> InMemorySubgraph {
        InMemorySubgraph::from_edges(data.graph.edges())
    }

    fn in_memory_examples(&self, data: &ScaledDataset) -> Vec<NodeId> {
        data.node_split.train.clone()
    }

    fn in_memory_candidates(&self, _data: &ScaledDataset) -> Vec<NodeId> {
        Vec::new()
    }

    fn prepare(
        &self,
        builder: &Self::BatchBuilder,
        data: &ScaledDataset,
        subgraph: &InMemorySubgraph,
        batch: &[NodeId],
        _candidates: &[NodeId],
        rng: &mut StdRng,
    ) -> Self::PreparedBatch {
        let batch_labels = labels_for(data, batch);
        builder.prepare(subgraph, batch, &batch_labels, rng)
    }

    fn train_prepared(
        &self,
        model: &mut Self::Model,
        source: &mut dyn RepresentationSource,
        prepared: Self::PreparedBatch,
    ) -> BatchStats {
        model.train_prepared(source, prepared)
    }

    fn disk_label(&self, disk: &DiskConfig) -> Result<String> {
        if disk.policy != PolicyKind::NodeCache {
            return Err(StorageError::InvalidPlan {
                reason: "node classification uses the training-node caching policy".into(),
            });
        }
        Ok("M-GNN_Disk".into())
    }

    fn disk_setup(
        &self,
        model: &ModelConfig,
        data: &ScaledDataset,
        disk: &DiskConfig,
        store: PartitionStore,
        rng: &mut StdRng,
    ) -> Result<DiskSetup> {
        let features = data
            .features
            .as_ref()
            .ok_or_else(|| StorageError::InvalidPlan {
                reason: "dataset has no fixed feature matrix for node classification".into(),
            })?;
        require_labels(data)?;

        // Partition with training nodes packed into the leading partitions.
        let partitioner = Partitioner::new(disk.num_partitions).map_err(graph_err)?;
        let (assignment, k) =
            partitioner.training_nodes_first(data.num_nodes(), &data.node_split.train, rng);
        let buckets = partitioner
            .build_buckets(&data.graph, &assignment)
            .map_err(graph_err)?;
        let buffer = PartitionBuffer::new(
            store.clone(),
            assignment.clone(),
            model.input_dim,
            disk.buffer_capacity,
            false,
        );
        buffer.initialize_from_features(features.data())?;
        buffer.initialize_buckets(&buckets)?;
        Ok(DiskSetup {
            assignment,
            buckets,
            buffer,
            store,
            cached_partitions: k,
            writeback: false,
        })
    }

    fn epoch_plan(
        &self,
        disk: &DiskConfig,
        setup: &DiskSetup,
        rng: &mut StdRng,
    ) -> Result<EpochPlan> {
        NodeCachePolicy::new(disk.buffer_capacity, setup.cached_partitions)
            .plan(disk.num_partitions, rng)
    }

    fn step_examples(
        &self,
        data: &ScaledDataset,
        _buckets: &[EdgeBucket],
        _num_partitions: u32,
        plan: &EpochPlan,
        step: usize,
    ) -> Vec<NodeId> {
        // Earlier steps only stage the cached working set into the buffer;
        // every training batch belongs to the plan's final step.
        if step + 1 == plan.partition_sets.len() {
            data.node_split.train.clone()
        } else {
            Vec::new()
        }
    }

    fn step_example_count(
        &self,
        data: &ScaledDataset,
        _buckets: &[EdgeBucket],
        _num_partitions: u32,
        plan: &EpochPlan,
        step: usize,
    ) -> usize {
        if step + 1 == plan.partition_sets.len() {
            data.node_split.train.len()
        } else {
            0
        }
    }

    fn disk_eval_source(
        &self,
        _model: &ModelConfig,
        data: &ScaledDataset,
        _setup: &DiskSetup,
    ) -> Result<Box<dyn RepresentationSource>> {
        let features = data
            .features
            .clone()
            .ok_or_else(|| StorageError::InvalidPlan {
                reason: "dataset has no fixed feature matrix for node classification".into(),
            })?;
        Ok(Box::new(FixedFeatureSource::new(features)))
    }

    fn eval_context(&self, data: &ScaledDataset) -> Self::EvalContext {
        NodeEvalContext {
            subgraph: Arc::new(InMemorySubgraph::from_edges(data.graph.edges())),
            test_labels: labels_for(data, &data.node_split.test),
        }
    }

    fn in_memory_eval_context(
        &self,
        data: &ScaledDataset,
        train_subgraph: &Arc<InMemorySubgraph>,
    ) -> Self::EvalContext {
        // In-memory training already holds the full-graph subgraph accuracy
        // is measured over; share it.
        NodeEvalContext {
            subgraph: Arc::clone(train_subgraph),
            test_labels: labels_for(data, &data.node_split.test),
        }
    }

    fn evaluate(
        &self,
        model: &Self::Model,
        source: &dyn RepresentationSource,
        ctx: &Self::EvalContext,
        data: &ScaledDataset,
        _train: &TrainConfig,
        rng: &mut StdRng,
    ) -> f64 {
        model.evaluate_accuracy(
            source,
            &ctx.subgraph,
            &data.node_split.test,
            &ctx.test_labels,
            rng,
        )
    }

    fn save_state(&self, model: &Self::Model, dict: &mut crate::checkpoint::StateDict) {
        use crate::checkpoint::Persist;
        model.save_state(dict);
    }

    fn load_state(
        &self,
        model: &mut Self::Model,
        dict: &crate::checkpoint::StateDict,
    ) -> Result<()> {
        use crate::checkpoint::Persist;
        model.load_state(dict)
    }
}
