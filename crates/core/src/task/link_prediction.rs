//! Link prediction as a [`Task`]: edge examples, shared negatives, DistMult
//! scoring, COMET/BETA disk policies, MRR evaluation.

use super::{graph_err, DiskSetup, Task};
use crate::config::{DiskConfig, ModelConfig, PolicyKind, TrainConfig};
use crate::models::{BatchStats, LinkBatchBuilder, LinkPredictionModel, PreparedLinkBatch};
use crate::source::{RepresentationSource, TableSource};
use crate::trainer::read_all_embeddings;
use marius_gnn::EmbeddingTable;
use marius_graph::datasets::ScaledDataset;
use marius_graph::{Edge, EdgeBucket, InMemorySubgraph, NodeId, Partitioner};
use marius_storage::policy::ReplacementPolicy;
use marius_storage::{
    BetaPolicy, CometPolicy, EpochPlan, PartitionBuffer, PartitionStore, Result, StorageError,
};
use rand::rngs::StdRng;
use std::sync::Arc;

/// The link-prediction workload (M-GNN's knowledge-graph configuration):
/// training examples are positive edges, every mini batch shares a pool of
/// sampled negatives, and disk-based training walks a COMET or BETA epoch
/// plan over randomly partitioned embeddings.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkPredictionTask;

/// Precomputed evaluation inputs for link prediction.
pub struct LinkEvalContext {
    subgraph: Arc<InMemorySubgraph>,
    candidates: Vec<NodeId>,
}

impl Task for LinkPredictionTask {
    type Example = Edge;
    type Model = LinkPredictionModel;
    type BatchBuilder = LinkBatchBuilder;
    type PreparedBatch = PreparedLinkBatch;
    type EvalContext = LinkEvalContext;

    fn slug(&self) -> &'static str {
        "lp"
    }

    fn metric_name(&self) -> &'static str {
        "MRR"
    }

    fn build_model(
        &self,
        model: &ModelConfig,
        train: &TrainConfig,
        data: &ScaledDataset,
        rng: &mut StdRng,
    ) -> Result<Self::Model> {
        Ok(
            LinkPredictionModel::new(model, data.spec.num_relations, rng)
                .with_negatives(train.num_negatives),
        )
    }

    fn batch_builder(&self, model: &Self::Model) -> Self::BatchBuilder {
        model.batch_builder()
    }

    fn in_memory_source(
        &self,
        model: &ModelConfig,
        data: &ScaledDataset,
        rng: &mut StdRng,
    ) -> Result<Box<dyn RepresentationSource>> {
        let table = EmbeddingTable::new(data.num_nodes() as usize, model.input_dim, 0.1, rng)
            .with_learning_rate(model.embedding_learning_rate);
        Ok(Box::new(TableSource::new(table)))
    }

    fn in_memory_subgraph(&self, data: &ScaledDataset) -> InMemorySubgraph {
        InMemorySubgraph::from_edges(&data.train_edges)
    }

    fn in_memory_examples(&self, data: &ScaledDataset) -> Vec<Edge> {
        data.train_edges.clone()
    }

    fn in_memory_candidates(&self, data: &ScaledDataset) -> Vec<NodeId> {
        (0..data.num_nodes()).collect()
    }

    fn prepare(
        &self,
        builder: &Self::BatchBuilder,
        _data: &ScaledDataset,
        subgraph: &InMemorySubgraph,
        batch: &[Edge],
        candidates: &[NodeId],
        rng: &mut StdRng,
    ) -> Self::PreparedBatch {
        builder.prepare(subgraph, batch, candidates, rng)
    }

    fn train_prepared(
        &self,
        model: &mut Self::Model,
        source: &mut dyn RepresentationSource,
        prepared: Self::PreparedBatch,
    ) -> BatchStats {
        model.train_prepared(source, prepared)
    }

    fn disk_label(&self, disk: &DiskConfig) -> Result<String> {
        match disk.policy {
            PolicyKind::Comet => Ok("M-GNN_Disk (COMET)".into()),
            PolicyKind::Beta => Ok("M-GNN_Disk (BETA)".into()),
            PolicyKind::NodeCache => Err(StorageError::InvalidPlan {
                reason: "node-cache policy applies to node classification only".into(),
            }),
        }
    }

    fn disk_setup(
        &self,
        model: &ModelConfig,
        data: &ScaledDataset,
        disk: &DiskConfig,
        store: PartitionStore,
        rng: &mut StdRng,
    ) -> Result<DiskSetup> {
        let partitioner = Partitioner::new(disk.num_partitions).map_err(graph_err)?;
        let assignment = partitioner.random(data.num_nodes(), rng);
        let train_graph = marius_graph::EdgeList::from_edges(
            data.num_nodes(),
            data.spec.num_relations,
            data.train_edges.clone(),
        )
        .map_err(graph_err)?;
        let buckets = partitioner
            .build_buckets(&train_graph, &assignment)
            .map_err(graph_err)?;
        let buffer = PartitionBuffer::new(
            store.clone(),
            assignment.clone(),
            model.input_dim,
            disk.buffer_capacity,
            true,
        )
        .with_learning_rate(model.embedding_learning_rate);
        buffer.initialize_random(0.1, rng)?;
        buffer.initialize_buckets(&buckets)?;
        Ok(DiskSetup {
            assignment,
            buckets,
            buffer,
            store,
            cached_partitions: 0,
            writeback: true,
        })
    }

    fn epoch_plan(
        &self,
        disk: &DiskConfig,
        _setup: &DiskSetup,
        rng: &mut StdRng,
    ) -> Result<EpochPlan> {
        let p = disk.num_partitions;
        match disk.policy {
            PolicyKind::Comet => {
                let policy = if disk.num_logical == 0 {
                    CometPolicy::auto(p, disk.buffer_capacity)
                } else {
                    CometPolicy::new(disk.buffer_capacity, disk.num_logical)
                };
                policy.plan(p, rng)
            }
            PolicyKind::Beta => BetaPolicy::new(disk.buffer_capacity).plan(p, rng),
            PolicyKind::NodeCache => Err(StorageError::InvalidPlan {
                reason: "node-cache policy applies to node classification only".into(),
            }),
        }
    }

    fn step_examples(
        &self,
        _data: &ScaledDataset,
        buckets: &[EdgeBucket],
        num_partitions: u32,
        plan: &EpochPlan,
        step: usize,
    ) -> Vec<Edge> {
        let mut edges = Vec::new();
        for &(i, j) in &plan.bucket_assignment[step] {
            edges.extend_from_slice(&buckets[(i * num_partitions + j) as usize].edges);
        }
        edges
    }

    fn step_example_count(
        &self,
        _data: &ScaledDataset,
        buckets: &[EdgeBucket],
        num_partitions: u32,
        plan: &EpochPlan,
        step: usize,
    ) -> usize {
        plan.bucket_assignment[step]
            .iter()
            .map(|&(i, j)| buckets[(i * num_partitions + j) as usize].edges.len())
            .sum()
    }

    fn disk_eval_source(
        &self,
        model: &ModelConfig,
        _data: &ScaledDataset,
        setup: &DiskSetup,
    ) -> Result<Box<dyn RepresentationSource>> {
        let flat = read_all_embeddings(&setup.store, &setup.assignment, model.input_dim)?;
        Ok(Box::new(TableSource::new(EmbeddingTable::from_rows(
            flat,
            model.input_dim,
        ))))
    }

    fn eval_context(&self, data: &ScaledDataset) -> Self::EvalContext {
        LinkEvalContext {
            subgraph: Arc::new(InMemorySubgraph::from_edges(&data.train_edges)),
            candidates: (0..data.num_nodes()).collect(),
        }
    }

    fn in_memory_eval_context(
        &self,
        data: &ScaledDataset,
        train_subgraph: &Arc<InMemorySubgraph>,
    ) -> Self::EvalContext {
        // In-memory training already holds the train-edge subgraph MRR
        // evaluation ranks over; share it.
        LinkEvalContext {
            subgraph: Arc::clone(train_subgraph),
            candidates: (0..data.num_nodes()).collect(),
        }
    }

    fn evaluate(
        &self,
        model: &Self::Model,
        source: &dyn RepresentationSource,
        ctx: &Self::EvalContext,
        data: &ScaledDataset,
        train: &TrainConfig,
        rng: &mut StdRng,
    ) -> f64 {
        model.evaluate_mrr(
            source,
            &ctx.subgraph,
            &data.test_edges,
            &ctx.candidates,
            train.eval_negatives,
            rng,
        )
    }

    fn save_state(&self, model: &Self::Model, dict: &mut crate::checkpoint::StateDict) {
        use crate::checkpoint::Persist;
        model.save_state(dict);
    }

    fn load_state(
        &self,
        model: &mut Self::Model,
        dict: &crate::checkpoint::StateDict,
    ) -> Result<()> {
        use crate::checkpoint::Persist;
        model.load_state(dict)
    }
}
