//! Link-prediction training: in-memory and out-of-core epoch loops.

use super::{read_all_embeddings, shuffle_in_place};
use crate::config::{DiskConfig, ModelConfig, PipelineConfig, PolicyKind, TrainConfig};
use crate::models::{BatchStats, LinkPredictionModel};
use crate::report::{EpochReport, ExperimentReport};
use crate::source::TableSource;
use marius_gnn::EmbeddingTable;
use marius_graph::datasets::ScaledDataset;
use marius_graph::{Edge, EdgeBucket, InMemorySubgraph, NodeId, Partitioner};
use marius_pipeline::{step_seed, Pipeline};
use marius_storage::policy::ReplacementPolicy;
use marius_storage::{
    BetaPolicy, CometPolicy, EpochPlan, IoCostModel, PartitionBuffer, PartitionStore, Result,
    StorageError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Converts a graph-layer failure into the storage error the disk trainers
/// propagate.
pub(crate) fn graph_err(e: marius_graph::GraphError) -> StorageError {
    StorageError::InvalidPlan {
        reason: format!("graph construction failed: {e}"),
    }
}

/// Orchestrates link-prediction training for one model configuration.
pub struct LinkPredictionTrainer {
    /// Model architecture.
    pub model: ModelConfig,
    /// Batch/epoch configuration.
    pub train: TrainConfig,
    /// IO cost model used to estimate disk time for reports.
    pub io_model: IoCostModel,
    /// Staged-runtime configuration for disk-based training; disabled selects
    /// the sequential fallback.
    pub pipeline: PipelineConfig,
    /// When `true`, the partition store emulates the `io_model` device
    /// (reads/writes sleep to the modeled transfer time) instead of running at
    /// page-cache speed. Used by benchmarks that measure IO/compute overlap.
    pub emulate_device: bool,
}

impl LinkPredictionTrainer {
    /// Creates a trainer (sequential disk path by default).
    pub fn new(model: ModelConfig, train: TrainConfig) -> Self {
        LinkPredictionTrainer {
            model,
            train,
            io_model: IoCostModel::default(),
            pipeline: PipelineConfig::disabled(),
            emulate_device: false,
        }
    }

    /// Selects the pipelined disk-training runtime.
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Runs disk training against an emulated `model` device instead of the
    /// raw local filesystem (see `PartitionStore::with_emulated_device`).
    pub fn with_emulated_device(mut self, model: IoCostModel) -> Self {
        self.io_model = model;
        self.emulate_device = true;
        self
    }

    fn accumulate(epoch: &mut EpochReport, stats: &BatchStats) {
        epoch.loss += stats.loss * stats.examples as f64;
        epoch.examples += stats.examples;
        epoch.sample_time += stats.sample_time;
        epoch.compute_time += stats.compute_time;
        epoch.nodes_sampled += stats.nodes_sampled;
        epoch.edges_sampled += stats.edges_sampled;
    }

    fn finalize(epoch: &mut EpochReport) {
        if epoch.examples > 0 {
            epoch.loss /= epoch.examples as f64;
        }
    }

    /// Trains with the full graph in memory (the M-GNN_Mem configuration).
    pub fn train_in_memory(&self, data: &ScaledDataset) -> ExperimentReport {
        let mut rng = StdRng::seed_from_u64(self.train.seed);
        let mut report = ExperimentReport::new("M-GNN_Mem", data.spec.name.clone());

        let subgraph = InMemorySubgraph::from_edges(&data.train_edges);
        let candidates: Vec<NodeId> = (0..data.num_nodes()).collect();
        let mut model = LinkPredictionModel::new(&self.model, data.spec.num_relations, &mut rng)
            .with_negatives(self.train.num_negatives);
        let table = EmbeddingTable::new(
            data.num_nodes() as usize,
            self.model.input_dim,
            0.1,
            &mut rng,
        )
        .with_learning_rate(self.model.embedding_learning_rate);
        let mut source = TableSource::new(table);

        let mut train_edges: Vec<Edge> = data.train_edges.clone();
        for epoch_idx in 0..self.train.epochs {
            let mut epoch = EpochReport {
                epoch: epoch_idx,
                ..Default::default()
            };
            let start = Instant::now();
            shuffle_in_place(&mut train_edges, &mut rng);
            for (i, batch) in train_edges.chunks(self.train.batch_size).enumerate() {
                if self.train.max_batches_per_epoch > 0 && i >= self.train.max_batches_per_epoch {
                    break;
                }
                let stats = model.train_batch(&mut source, &subgraph, batch, &candidates, &mut rng);
                Self::accumulate(&mut epoch, &stats);
            }
            epoch.epoch_time = start.elapsed();
            epoch.metric = model.evaluate_mrr(
                &source,
                &subgraph,
                &data.test_edges,
                &candidates,
                self.train.eval_negatives,
                &mut rng,
            );
            Self::finalize(&mut epoch);
            report.epochs.push(epoch);
        }
        report
    }

    /// One sequential disk epoch: swaps, sampling and compute interleaved on
    /// the calling thread. Serves as the determinism oracle for the pipelined
    /// executor: both derive per-step RNGs from `step_seed(epoch_seed, step)`
    /// and therefore produce bit-identical loss trajectories.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch_sequential(
        &self,
        plan: &EpochPlan,
        buffer: &mut PartitionBuffer,
        buckets: &[EdgeBucket],
        p: u32,
        epoch_seed: u64,
        model: &mut LinkPredictionModel,
        epoch: &mut EpochReport,
    ) -> Result<()> {
        let mut batch_counter = 0usize;
        for (s, (set, assigned)) in plan
            .partition_sets
            .iter()
            .zip(&plan.bucket_assignment)
            .enumerate()
        {
            let mut step_rng = StdRng::seed_from_u64(step_seed(epoch_seed, s as u64));
            epoch.partition_loads += buffer.load_set(set)?;
            // Collect this step's training examples (edges of the assigned
            // buckets) and shuffle them for mini-batch generation.
            let mut step_edges: Vec<Edge> = Vec::new();
            for &(i, j) in assigned {
                step_edges.extend_from_slice(&buckets[(i * p + j) as usize].edges);
            }
            shuffle_in_place(&mut step_edges, &mut step_rng);
            let candidates = buffer.resident_nodes();
            // One shared snapshot per step (the subgraph only changes on
            // load_set); the Arc handle lets each batch borrow the buffer
            // mutably without deep-copying the CSR structures.
            let subgraph_snapshot = buffer.subgraph_arc();
            for batch in step_edges.chunks(self.train.batch_size) {
                if self.train.max_batches_per_epoch > 0
                    && batch_counter >= self.train.max_batches_per_epoch
                {
                    break;
                }
                let stats = model.train_batch(
                    buffer,
                    &subgraph_snapshot,
                    batch,
                    &candidates,
                    &mut step_rng,
                );
                Self::accumulate(epoch, &stats);
                batch_counter += 1;
            }
        }
        Ok(())
    }

    /// One pipelined disk epoch on the staged runtime: stage 2 workers shuffle
    /// the step's bucket edges and build prepared batches (negatives + DENSE
    /// sampling) while stage 1 prefetches upcoming partition sets and this
    /// thread consumes `train_prepared` updates.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch_pipelined(
        &self,
        pipe: &Pipeline,
        plan: &EpochPlan,
        buffer: &mut PartitionBuffer,
        buckets: &[EdgeBucket],
        p: u32,
        epoch_seed: u64,
        model: &mut LinkPredictionModel,
        epoch: &mut EpochReport,
    ) -> Result<()> {
        // Per-step start offsets into the global batch budget so the cap is
        // applied identically to the sequential counter even though workers
        // build steps concurrently.
        let batch_size = self.train.batch_size;
        let max_batches = self.train.max_batches_per_epoch;
        let mut batch_offsets = Vec::with_capacity(plan.bucket_assignment.len());
        let mut acc = 0usize;
        for assigned in &plan.bucket_assignment {
            batch_offsets.push(acc);
            let step_edges: usize = assigned
                .iter()
                .map(|&(i, j)| buckets[(i * p + j) as usize].edges.len())
                .sum();
            acc += step_edges.div_ceil(batch_size);
        }
        let builder = model.batch_builder();
        let report = pipe.run_epoch(
            plan,
            buffer,
            epoch_seed,
            |ctx, step_rng, sink| {
                let mut step_edges: Vec<Edge> = Vec::new();
                for &(i, j) in &plan.bucket_assignment[ctx.step] {
                    step_edges.extend_from_slice(&buckets[(i * p + j) as usize].edges);
                }
                shuffle_in_place(&mut step_edges, step_rng);
                for (k, chunk) in step_edges.chunks(batch_size).enumerate() {
                    if max_batches > 0 && batch_offsets[ctx.step] + k >= max_batches {
                        break;
                    }
                    sink(builder.prepare(&ctx.subgraph, chunk, &ctx.candidates, step_rng));
                }
            },
            |buffer, _ctx, prepared| {
                let stats = model.train_prepared(buffer, prepared);
                Self::accumulate(epoch, &stats);
            },
        )?;
        epoch.partition_loads += report.partition_loads;
        epoch.io_wait_time += report.compute_stall;
        epoch.stall_time += report.prefetch_stall + report.sample_stall;
        epoch.overlap = report.overlap_ratio();
        Ok(())
    }

    /// Trains out-of-core with a partition buffer driven by the configured
    /// replacement policy (the M-GNN_Disk configuration). Runs on the staged
    /// pipeline runtime when `self.pipeline.enabled`, otherwise sequentially.
    pub fn train_disk(&self, data: &ScaledDataset, disk: &DiskConfig) -> Result<ExperimentReport> {
        let mut rng = StdRng::seed_from_u64(self.train.seed);
        let label = match disk.policy {
            PolicyKind::Comet => "M-GNN_Disk (COMET)",
            PolicyKind::Beta => "M-GNN_Disk (BETA)",
            PolicyKind::NodeCache => {
                return Err(StorageError::InvalidPlan {
                    reason: "node-cache policy applies to node classification only".into(),
                })
            }
        };
        let mut report = ExperimentReport::new(label, data.spec.name.clone());

        // Partition the graph and materialise the on-disk layout.
        let partitioner = Partitioner::new(disk.num_partitions).map_err(graph_err)?;
        let assignment = partitioner.random(data.num_nodes(), &mut rng);
        let train_graph = marius_graph::EdgeList::from_edges(
            data.num_nodes(),
            data.spec.num_relations,
            data.train_edges.clone(),
        )
        .map_err(graph_err)?;
        let buckets = partitioner
            .build_buckets(&train_graph, &assignment)
            .map_err(graph_err)?;
        let store = PartitionStore::open_temp(&format!(
            "lp-{}-{}",
            data.spec.name.replace('.', "-"),
            label.replace([' ', '(', ')'], "")
        ))?;
        let store = if self.emulate_device {
            store.with_emulated_device(self.io_model)
        } else {
            store
        };
        store.clear()?;
        let mut buffer = PartitionBuffer::new(
            store.clone(),
            assignment.clone(),
            self.model.input_dim,
            disk.buffer_capacity,
            true,
        )
        .with_learning_rate(self.model.embedding_learning_rate);
        buffer.initialize_random(0.1, &mut rng)?;
        buffer.initialize_buckets(&buckets)?;

        let mut model = LinkPredictionModel::new(&self.model, data.spec.num_relations, &mut rng)
            .with_negatives(self.train.num_negatives);
        let pipeline = self
            .pipeline
            .enabled
            .then(|| Pipeline::new(self.pipeline.clone()));

        // Evaluation uses the full graph structure (read-only) with embeddings
        // reassembled from disk after each epoch.
        let eval_subgraph = InMemorySubgraph::from_edges(&data.train_edges);
        let eval_candidates: Vec<NodeId> = (0..data.num_nodes()).collect();

        let p = disk.num_partitions;
        for epoch_idx in 0..self.train.epochs {
            let mut epoch = EpochReport {
                epoch: epoch_idx,
                ..Default::default()
            };
            store.reset_io_stats();
            let start = Instant::now();

            let plan = match disk.policy {
                PolicyKind::Comet => {
                    let policy = if disk.num_logical == 0 {
                        CometPolicy::auto(p, disk.buffer_capacity)
                    } else {
                        CometPolicy::new(disk.buffer_capacity, disk.num_logical)
                    };
                    policy.plan(p, &mut rng)?
                }
                PolicyKind::Beta => BetaPolicy::new(disk.buffer_capacity).plan(p, &mut rng)?,
                PolicyKind::NodeCache => unreachable!("rejected above"),
            };
            // Every random draw inside the epoch derives from this seed (per
            // step), so the sequential and pipelined executors are
            // interchangeable bit-for-bit.
            let epoch_seed: u64 = rng.gen();
            match &pipeline {
                Some(pipe) => self.run_epoch_pipelined(
                    pipe,
                    &plan,
                    &mut buffer,
                    &buckets,
                    p,
                    epoch_seed,
                    &mut model,
                    &mut epoch,
                )?,
                None => self.run_epoch_sequential(
                    &plan,
                    &mut buffer,
                    &buckets,
                    p,
                    epoch_seed,
                    &mut model,
                    &mut epoch,
                )?,
            }
            buffer.flush()?;
            epoch.epoch_time = start.elapsed();

            let io = store.io_stats();
            epoch.io_bytes_read = io.bytes_read;
            epoch.io_bytes_written = io.bytes_written;
            epoch.io_time = self.io_model.stats_time(&io);

            // Full-graph evaluation with embeddings reassembled from disk.
            let flat = read_all_embeddings(&store, &assignment, self.model.input_dim)?;
            let eval_source =
                TableSource::new(EmbeddingTable::from_rows(flat, self.model.input_dim));
            epoch.metric = model.evaluate_mrr(
                &eval_source,
                &eval_subgraph,
                &data.test_edges,
                &eval_candidates,
                self.train.eval_negatives,
                &mut rng,
            );
            Self::finalize(&mut epoch);
            report.epochs.push(epoch);
        }
        let _ = store.clear();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::datasets::DatasetSpec;
    use std::time::Duration;

    fn tiny_dataset() -> ScaledDataset {
        ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.015), 3)
    }

    fn quick_trainer(layers: usize) -> LinkPredictionTrainer {
        let mut model = ModelConfig::paper_link_prediction_graphsage(12).shrunk(5, 12);
        if layers == 0 {
            model = ModelConfig::paper_distmult(12);
        }
        let mut train = TrainConfig::quick(2, 9);
        train.batch_size = 128;
        train.num_negatives = 32;
        train.eval_negatives = 64;
        LinkPredictionTrainer::new(model, train)
    }

    #[test]
    fn in_memory_training_produces_improving_mrr() {
        let data = tiny_dataset();
        let trainer = quick_trainer(0);
        let report = trainer.train_in_memory(&data);
        assert_eq!(report.epochs.len(), 2);
        assert!(report.final_metric() > 0.1, "MRR {}", report.final_metric());
        assert!(report.epochs[0].examples > 0);
        assert!(report.epochs[0].sample_time > Duration::ZERO);
    }

    #[test]
    fn disk_training_with_comet_runs_and_learns() {
        let data = tiny_dataset();
        let trainer = quick_trainer(1);
        let disk = DiskConfig::comet(8, 4);
        let report = trainer.train_disk(&data, &disk).unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert!(report.epochs[0].partition_loads >= 4);
        assert!(report.epochs[0].io_bytes_read > 0);
        assert!(
            report.final_metric() > 0.05,
            "disk MRR {}",
            report.final_metric()
        );
    }

    #[test]
    fn disk_training_with_beta_runs() {
        let data = tiny_dataset();
        let trainer = quick_trainer(1);
        let disk = DiskConfig::beta(8, 4);
        let report = trainer.train_disk(&data, &disk).unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert!(report.system.contains("BETA"));
        assert!(report.final_metric() > 0.0);
    }

    #[test]
    fn disk_training_rejects_node_cache_policy() {
        let data = tiny_dataset();
        let trainer = quick_trainer(1);
        let err = trainer
            .train_disk(&data, &DiskConfig::node_cache(8, 4))
            .unwrap_err();
        assert!(format!("{err}").contains("node classification"));
    }

    #[test]
    fn pipelined_disk_training_matches_sequential_losses() {
        let data = tiny_dataset();
        let disk = DiskConfig::comet(8, 4);
        let sequential = quick_trainer(1).train_disk(&data, &disk).unwrap();
        let pipelined = quick_trainer(1)
            .with_pipeline(marius_pipeline::PipelineConfig::with_workers(1))
            .train_disk(&data, &disk)
            .unwrap();
        for (a, b) in sequential.epochs.iter().zip(&pipelined.epochs) {
            assert_eq!(a.loss, b.loss, "epoch {} loss drifted", a.epoch);
            assert_eq!(a.metric, b.metric, "epoch {} metric drifted", a.epoch);
            assert_eq!(a.examples, b.examples);
        }
        assert!(pipelined.epochs[0].overlap > 0.0);
    }
}
