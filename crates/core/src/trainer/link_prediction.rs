//! Link-prediction training: in-memory and out-of-core epoch loops.

use super::{read_all_embeddings, shuffle_in_place};
use crate::config::{DiskConfig, ModelConfig, PolicyKind, TrainConfig};
use crate::models::{BatchStats, LinkPredictionModel};
use crate::report::{EpochReport, ExperimentReport};
use crate::source::TableSource;
use marius_gnn::EmbeddingTable;
use marius_graph::datasets::ScaledDataset;
use marius_graph::{Edge, InMemorySubgraph, NodeId, Partitioner};
use marius_storage::policy::ReplacementPolicy;
use marius_storage::{BetaPolicy, CometPolicy, IoCostModel, PartitionBuffer, PartitionStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Orchestrates link-prediction training for one model configuration.
pub struct LinkPredictionTrainer {
    /// Model architecture.
    pub model: ModelConfig,
    /// Batch/epoch configuration.
    pub train: TrainConfig,
    /// IO cost model used to estimate disk time for reports.
    pub io_model: IoCostModel,
}

impl LinkPredictionTrainer {
    /// Creates a trainer.
    pub fn new(model: ModelConfig, train: TrainConfig) -> Self {
        LinkPredictionTrainer {
            model,
            train,
            io_model: IoCostModel::default(),
        }
    }

    fn accumulate(epoch: &mut EpochReport, stats: &BatchStats) {
        epoch.loss += stats.loss * stats.examples as f64;
        epoch.examples += stats.examples;
        epoch.sample_time += stats.sample_time;
        epoch.compute_time += stats.compute_time;
        epoch.nodes_sampled += stats.nodes_sampled;
        epoch.edges_sampled += stats.edges_sampled;
    }

    fn finalize(epoch: &mut EpochReport) {
        if epoch.examples > 0 {
            epoch.loss /= epoch.examples as f64;
        }
    }

    /// Trains with the full graph in memory (the M-GNN_Mem configuration).
    pub fn train_in_memory(&self, data: &ScaledDataset) -> ExperimentReport {
        let mut rng = StdRng::seed_from_u64(self.train.seed);
        let mut report = ExperimentReport::new("M-GNN_Mem", data.spec.name.clone());

        let subgraph = InMemorySubgraph::from_edges(&data.train_edges);
        let candidates: Vec<NodeId> = (0..data.num_nodes()).collect();
        let mut model = LinkPredictionModel::new(&self.model, data.spec.num_relations, &mut rng)
            .with_negatives(self.train.num_negatives);
        let table = EmbeddingTable::new(
            data.num_nodes() as usize,
            self.model.input_dim,
            0.1,
            &mut rng,
        )
        .with_learning_rate(self.model.embedding_learning_rate);
        let mut source = TableSource::new(table);

        let mut train_edges: Vec<Edge> = data.train_edges.clone();
        for epoch_idx in 0..self.train.epochs {
            let mut epoch = EpochReport {
                epoch: epoch_idx,
                ..Default::default()
            };
            let start = Instant::now();
            shuffle_in_place(&mut train_edges, &mut rng);
            for (i, batch) in train_edges.chunks(self.train.batch_size).enumerate() {
                if self.train.max_batches_per_epoch > 0 && i >= self.train.max_batches_per_epoch {
                    break;
                }
                let stats = model.train_batch(&mut source, &subgraph, batch, &candidates, &mut rng);
                Self::accumulate(&mut epoch, &stats);
            }
            epoch.epoch_time = start.elapsed();
            epoch.metric = model.evaluate_mrr(
                &source,
                &subgraph,
                &data.test_edges,
                &candidates,
                self.train.eval_negatives,
                &mut rng,
            );
            Self::finalize(&mut epoch);
            report.epochs.push(epoch);
        }
        report
    }

    /// Trains out-of-core with a partition buffer driven by the configured
    /// replacement policy (the M-GNN_Disk configuration).
    pub fn train_disk(&self, data: &ScaledDataset, disk: &DiskConfig) -> ExperimentReport {
        let mut rng = StdRng::seed_from_u64(self.train.seed);
        let label = match disk.policy {
            PolicyKind::Comet => "M-GNN_Disk (COMET)",
            PolicyKind::Beta => "M-GNN_Disk (BETA)",
            PolicyKind::NodeCache => "M-GNN_Disk (node-cache)",
        };
        let mut report = ExperimentReport::new(label, data.spec.name.clone());

        // Partition the graph and materialise the on-disk layout.
        let partitioner = Partitioner::new(disk.num_partitions).expect("positive partition count");
        let assignment = partitioner.random(data.num_nodes(), &mut rng);
        let train_graph = marius_graph::EdgeList::from_edges(
            data.num_nodes(),
            data.spec.num_relations,
            data.train_edges.clone(),
        )
        .expect("train edges in range");
        let buckets = partitioner
            .build_buckets(&train_graph, &assignment)
            .expect("bucket construction");
        let store = PartitionStore::open_temp(&format!(
            "lp-{}-{}",
            data.spec.name.replace('.', "-"),
            label.replace([' ', '(', ')'], "")
        ))
        .expect("temp store");
        store.clear().expect("clean store");
        let mut buffer = PartitionBuffer::new(
            store.clone(),
            assignment.clone(),
            self.model.input_dim,
            disk.buffer_capacity,
            true,
        )
        .with_learning_rate(self.model.embedding_learning_rate);
        buffer
            .initialize_random(0.1, &mut rng)
            .expect("initial embeddings");
        buffer.initialize_buckets(&buckets).expect("bucket files");

        let mut model = LinkPredictionModel::new(&self.model, data.spec.num_relations, &mut rng)
            .with_negatives(self.train.num_negatives);

        // Evaluation uses the full graph structure (read-only) with embeddings
        // reassembled from disk after each epoch.
        let eval_subgraph = InMemorySubgraph::from_edges(&data.train_edges);
        let eval_candidates: Vec<NodeId> = (0..data.num_nodes()).collect();

        let p = disk.num_partitions;
        for epoch_idx in 0..self.train.epochs {
            let mut epoch = EpochReport {
                epoch: epoch_idx,
                ..Default::default()
            };
            store.reset_io_stats();
            let start = Instant::now();

            let plan = match disk.policy {
                PolicyKind::Comet => {
                    let policy = if disk.num_logical == 0 {
                        CometPolicy::auto(p, disk.buffer_capacity)
                    } else {
                        CometPolicy::new(disk.buffer_capacity, disk.num_logical)
                    };
                    policy.plan(p, &mut rng).expect("valid COMET plan")
                }
                PolicyKind::Beta => BetaPolicy::new(disk.buffer_capacity)
                    .plan(p, &mut rng)
                    .expect("valid BETA plan"),
                PolicyKind::NodeCache => {
                    panic!("node-cache policy applies to node classification only")
                }
            };

            let mut batch_counter = 0usize;
            for (set, assigned) in plan.partition_sets.iter().zip(&plan.bucket_assignment) {
                let loads = buffer.load_set(set).expect("load partition set");
                epoch.partition_loads += loads;
                // Collect this step's training examples (edges of the assigned
                // buckets) and shuffle them for mini-batch generation.
                let mut step_edges: Vec<Edge> = Vec::new();
                for &(i, j) in assigned {
                    step_edges.extend_from_slice(&buckets[(i * p + j) as usize].edges);
                }
                shuffle_in_place(&mut step_edges, &mut rng);
                let candidates = buffer.resident_nodes();
                for batch in step_edges.chunks(self.train.batch_size) {
                    if self.train.max_batches_per_epoch > 0
                        && batch_counter >= self.train.max_batches_per_epoch
                    {
                        break;
                    }
                    let subgraph_snapshot = buffer.subgraph().clone();
                    let stats = model.train_batch(
                        &mut buffer,
                        &subgraph_snapshot,
                        batch,
                        &candidates,
                        &mut rng,
                    );
                    Self::accumulate(&mut epoch, &stats);
                    batch_counter += 1;
                }
            }
            buffer.flush().expect("flush partitions");
            epoch.epoch_time = start.elapsed();

            let io = store.io_stats();
            epoch.io_bytes_read = io.bytes_read;
            epoch.io_bytes_written = io.bytes_written;
            epoch.io_time = self.io_model.stats_time(&io);

            // Full-graph evaluation with embeddings reassembled from disk.
            let flat = read_all_embeddings(&store, &assignment, self.model.input_dim);
            let eval_source =
                TableSource::new(EmbeddingTable::from_rows(flat, self.model.input_dim));
            epoch.metric = model.evaluate_mrr(
                &eval_source,
                &eval_subgraph,
                &data.test_edges,
                &eval_candidates,
                self.train.eval_negatives,
                &mut rng,
            );
            Self::finalize(&mut epoch);
            report.epochs.push(epoch);
        }
        let _ = store.clear();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::datasets::DatasetSpec;
    use std::time::Duration;

    fn tiny_dataset() -> ScaledDataset {
        ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.015), 3)
    }

    fn quick_trainer(layers: usize) -> LinkPredictionTrainer {
        let mut model = ModelConfig::paper_link_prediction_graphsage(12).shrunk(5, 12);
        if layers == 0 {
            model = ModelConfig::paper_distmult(12);
        }
        let mut train = TrainConfig::quick(2, 9);
        train.batch_size = 128;
        train.num_negatives = 32;
        train.eval_negatives = 64;
        LinkPredictionTrainer::new(model, train)
    }

    #[test]
    fn in_memory_training_produces_improving_mrr() {
        let data = tiny_dataset();
        let trainer = quick_trainer(0);
        let report = trainer.train_in_memory(&data);
        assert_eq!(report.epochs.len(), 2);
        assert!(report.final_metric() > 0.1, "MRR {}", report.final_metric());
        assert!(report.epochs[0].examples > 0);
        assert!(report.epochs[0].sample_time > Duration::ZERO);
    }

    #[test]
    fn disk_training_with_comet_runs_and_learns() {
        let data = tiny_dataset();
        let trainer = quick_trainer(1);
        let disk = DiskConfig::comet(8, 4);
        let report = trainer.train_disk(&data, &disk);
        assert_eq!(report.epochs.len(), 2);
        assert!(report.epochs[0].partition_loads >= 4);
        assert!(report.epochs[0].io_bytes_read > 0);
        assert!(
            report.final_metric() > 0.05,
            "disk MRR {}",
            report.final_metric()
        );
    }

    #[test]
    fn disk_training_with_beta_runs() {
        let data = tiny_dataset();
        let trainer = quick_trainer(1);
        let disk = DiskConfig::beta(8, 4);
        let report = trainer.train_disk(&data, &disk);
        assert_eq!(report.epochs.len(), 2);
        assert!(report.system.contains("BETA"));
        assert!(report.final_metric() > 0.0);
    }
}
