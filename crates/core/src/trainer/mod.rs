//! The task-generic training engine: one [`Trainer`] for every workload.
//!
//! The trainer follows the structure of Figure 2: the storage side produces a
//! sequence of in-memory subgraphs (a single one for in-memory training, one
//! per partition set for disk-based training) and the processing side consumes
//! the training examples assigned to each subgraph as mini batches. Everything
//! task-specific — what an example is, how batches are prepared and applied,
//! how storage is partitioned, how the model is evaluated — lives behind the
//! [`Task`] trait, so the three epoch executors below exist
//! exactly once:
//!
//! * **In-memory** ([`Trainer::train_in_memory`]) — the full graph and all
//!   base representations stay resident (the M-GNN_Mem configuration).
//! * **Sequential disk** ([`Trainer::train_disk`] with
//!   [`crate::config::PipelineConfig::enabled`]` = false`, the default):
//!   partition swaps, DENSE sampling and compute run back-to-back on the
//!   calling thread, so epoch time is the *sum* of the three phases. This
//!   path is also the determinism oracle for the pipeline.
//! * **Pipelined disk** (`enabled = true`): the epoch runs on
//!   [`marius_pipeline::Pipeline`] — a prefetcher thread walks the policy's
//!   `EpochPlan` ahead of the consumer issuing `PartitionStore` reads, a pool
//!   of workers builds batches (shuffle, negative sampling, DENSE multi-hop
//!   sampling), the calling thread applies `train_prepared`, and evicted
//!   dirty partitions are detached to a write-back drain thread that flushes
//!   them while the next step computes — the compute stage performs no disk
//!   IO at all, so epoch time approaches the *max* phase.
//!
//! Both disk executors derive every in-epoch random draw from
//! [`marius_pipeline::step_seed`]`(epoch_seed, step)`, which makes their loss
//! trajectories bit-identical for a fixed training seed and any worker count
//! (asserted by the `pipeline_determinism` and `task_equivalence` integration
//! tests at the workspace root). Disk-path failures (missing or truncated
//! partition files, invalid plans) propagate as
//! [`marius_storage::StorageError`] instead of panicking.
//!
//! The concrete trainers of earlier revisions survive as deprecated aliases:
//! [`LinkPredictionTrainer`] and [`NodeClassificationTrainer`] are
//! `Trainer<LinkPredictionTask>` and `Trainer<NodeClassificationTask>`.

use crate::checkpoint::{CheckpointSnapshot, ResumeState, StateDict, StorageKind, StreamState};
use crate::config::{DiskConfig, ModelConfig, PipelineConfig, TrainConfig};
use crate::models::BatchStats;
use crate::report::{EpochReport, ExperimentReport};
use crate::task::{DiskSetup, LinkPredictionTask, NodeClassificationTask, Task};
use marius_graph::datasets::ScaledDataset;
use marius_graph::PartitionAssignment;
use marius_pipeline::{step_seed, writeback_safe_point, Pipeline};
use marius_storage::{
    FaultInjector, IoCostModel, IoFaultPlan, PartitionStore, Result, RetryPolicy, StorageError,
};
use marius_telemetry::{Telemetry, NO_LABEL};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A callback invoked after every completed epoch (metrics are final for the
/// epoch when it runs). Used by the `marius::Session` facade for progress
/// reporting. A hook failure aborts training and propagates as the run's
/// [`StorageError`] — hooks that write to disk (progress mirrors, metrics
/// exporters) surface their IO errors instead of panicking or being dropped.
pub type EpochHook = Box<dyn Fn(&EpochReport) -> Result<()> + Send + Sync>;

/// A callback invoked at each disk-epoch boundary at the write-back safe
/// point (every detached write-back drained, bucket files and in-memory
/// buckets in agreement) — the one moment the training-edge set may grow.
/// Receives the mutable [`DiskSetup`] (so staged edge deltas can be applied
/// to both the in-memory buckets and the store's bucket files) and the
/// zero-based epoch index just trained; returns the number of edges ingested
/// at this boundary (`0` when the boundary is not an ingest point). The hook
/// must not consume trainer RNG — it runs outside the seeded epoch executors,
/// which is what keeps sequential and pipelined streamed runs bit-identical.
pub type IngestHook = Box<dyn Fn(&mut DiskSetup, usize) -> Result<u64> + Send + Sync>;

/// Blob name of the in-memory example-order permutation (the cross-epoch
/// shuffle state of [`Trainer::train_in_memory`]).
const EXAMPLE_ORDER_BLOB: &str = "trainer.example_order";

/// Reads every node partition back from disk and assembles a flat
/// `num_nodes × dim` embedding buffer indexed by global node id. Used to run
/// full-graph evaluation after a disk-based training epoch, and by the
/// serving layer to materialise a checkpoint's partition snapshot in memory.
///
/// Rows are copied one maximal run of consecutive node ids at a time: for the
/// common case where a partition's nodes are contiguous (e.g. the §5.2
/// training-nodes-first layout) the whole partition lands in one
/// `copy_from_slice`, and arbitrary mixed layouts degrade gracefully to
/// per-run copies.
pub fn read_all_embeddings(
    store: &PartitionStore,
    assignment: &PartitionAssignment,
    dim: usize,
) -> Result<Vec<f32>> {
    let mut flat = vec![0.0f32; assignment.num_nodes() as usize * dim];
    for p in 0..assignment.num_partitions() {
        let (values, _state) = store.read_partition(p)?;
        let nodes = assignment.nodes_in(p);
        let mut start = 0usize;
        while start < nodes.len() {
            let mut end = start + 1;
            while end < nodes.len() && nodes[end] == nodes[end - 1] + 1 {
                end += 1;
            }
            let dst_start = nodes[start] as usize * dim;
            flat[dst_start..dst_start + (end - start) * dim]
                .copy_from_slice(&values[start * dim..end * dim]);
            start = end;
        }
    }
    Ok(flat)
}

fn accumulate(epoch: &mut EpochReport, stats: &BatchStats) {
    epoch.loss += stats.loss * stats.examples as f64;
    epoch.examples += stats.examples;
    epoch.sample_time += stats.sample_time;
    epoch.compute_time += stats.compute_time;
    epoch.nodes_sampled += stats.nodes_sampled;
    epoch.edges_sampled += stats.edges_sampled;
}

fn finalize(epoch: &mut EpochReport) {
    if epoch.examples > 0 {
        epoch.loss /= epoch.examples as f64;
    }
}

/// Orchestrates training for one model configuration of any [`Task`].
pub struct Trainer<T: Task> {
    /// The workload being trained.
    pub task: T,
    /// Model architecture.
    pub model: ModelConfig,
    /// Batch/epoch configuration.
    pub train: TrainConfig,
    /// IO cost model used to estimate disk time for reports.
    pub io_model: IoCostModel,
    /// Staged-runtime configuration for disk-based training; disabled selects
    /// the sequential fallback.
    pub pipeline: PipelineConfig,
    /// When `true`, the partition store emulates the `io_model` device
    /// (reads/writes sleep to the modeled transfer time) instead of running at
    /// page-cache speed. Used by benchmarks that measure IO/compute overlap.
    pub emulate_device: bool,
    /// Evaluate the task metric every `eval_every` epochs (and always after
    /// the final epoch). `0` and `1` both evaluate every epoch. Skipped epochs
    /// report `metric = f64::NAN`. Note that evaluation consumes RNG draws, so
    /// changing the cadence changes subsequent epochs' trajectories.
    pub eval_every: usize,
    epoch_hook: Option<EpochHook>,
    /// Deterministic IO fault injector attached to the run's partition store
    /// (chaos testing); `None` trains against the healthy device.
    faults: Option<Arc<FaultInjector>>,
    /// Retry policy applied to the store's transient-IO failures.
    retry: RetryPolicy,
    /// Full durable checkpoints (root directory, cadence in epochs) written at
    /// epoch boundaries; see [`crate::checkpoint`] for the layout.
    checkpoint: Option<(PathBuf, usize)>,
    /// When set, training continues a checkpointed run instead of starting
    /// fresh: construction replays deterministically, then the saved state and
    /// RNG cursor are overlaid.
    resume: Option<ResumeState>,
    /// Telemetry recorder cloned into every layer of the run (pipeline
    /// stages, partition store/buffer, the epoch loop). Disabled (zero
    /// overhead) by default.
    telemetry: Telemetry,
    /// Streaming ingest callback fired at every disk-epoch boundary (see
    /// [`IngestHook`]); `None` trains over a frozen dataset.
    ingest_hook: Option<IngestHook>,
    /// Shared stream cursor recorded into checkpoint manifests so a streamed
    /// run can be resumed by deterministic replay. The ingest hook advances
    /// it; [`Trainer::write_checkpoint`] reads it at checkpoint time (the
    /// hook runs before the boundary's checkpoint, so the cursor and the
    /// snapshotted bucket files always agree).
    stream_state: Option<Arc<Mutex<StreamState>>>,
}

impl<T: Task + Default> Trainer<T> {
    /// Creates a trainer (sequential disk path by default) for a stateless
    /// task.
    pub fn new(model: ModelConfig, train: TrainConfig) -> Self {
        Trainer::with_task(T::default(), model, train)
    }
}

impl<T: Task> Trainer<T> {
    /// Creates a trainer for an explicit task value.
    pub fn with_task(task: T, model: ModelConfig, train: TrainConfig) -> Self {
        Trainer {
            task,
            model,
            train,
            io_model: IoCostModel::default(),
            pipeline: PipelineConfig::disabled(),
            emulate_device: false,
            eval_every: 1,
            epoch_hook: None,
            faults: None,
            retry: RetryPolicy::default_transient(),
            checkpoint: None,
            resume: None,
            telemetry: Telemetry::disabled(),
            ingest_hook: None,
            stream_state: None,
        }
    }

    /// Selects the pipelined disk-training runtime.
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Attaches a telemetry recorder to the run: the epoch loop, checkpoint
    /// writes, the staged pipeline's stage threads and queues, and the
    /// partition store/buffer all record spans and metrics into it. Recording
    /// never consumes randomness, so trajectories are bit-identical with
    /// telemetry on or off. A disabled handle (the default) costs nothing.
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// The telemetry recorder attached to this trainer (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Runs disk training against an emulated `model` device instead of the
    /// raw local filesystem (see `PartitionStore::with_emulated_device`).
    pub fn with_emulated_device(mut self, model: IoCostModel) -> Self {
        self.io_model = model;
        self.emulate_device = true;
        self
    }

    /// Evaluates the task metric only every `every` epochs (plus the final
    /// epoch). See [`Trainer::eval_every`] for the RNG caveat.
    pub fn with_eval_every(mut self, every: usize) -> Self {
        self.eval_every = every;
        self
    }

    /// Arms a deterministic IO fault plan on the run's partition store: disk
    /// training (and its checkpoint placement) then experiences the plan's
    /// seeded schedule of transient failures, torn writes and latency spikes.
    /// Faults are injected entirely inside the store, so the loss trajectory
    /// stays bit-identical to a fault-free run as long as every fault is
    /// absorbed by the retry layer. See [`marius_storage::fault`].
    pub fn with_fault_plan(self, plan: IoFaultPlan) -> Self {
        self.with_fault_injector(plan.build())
    }

    /// Attaches an existing fault injector (shared so callers can read its
    /// counters, or arm outage/permanent windows mid-run).
    pub fn with_fault_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.faults = Some(injector);
        self
    }

    /// Overrides the bounded-exponential-backoff retry policy the partition
    /// store applies to transient IO failures
    /// ([`RetryPolicy::default_transient`] otherwise).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// The fault injector attached to this trainer, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// The epoch index a resumed run starts at, when this trainer continues a
    /// checkpointed run ([`Trainer::with_resume`]).
    pub fn resume_start_epoch(&self) -> Option<usize> {
        self.resume.as_ref().map(|r| r.start_epoch)
    }

    /// Installs a callback invoked after every completed epoch.
    pub fn with_epoch_hook(mut self, hook: impl Fn(&EpochReport) + Send + Sync + 'static) -> Self {
        self.epoch_hook = Some(Box::new(move |epoch| {
            hook(epoch);
            Ok(())
        }));
        self
    }

    /// Installs a fallible epoch callback: an `Err` aborts the run and
    /// propagates to the `train_*` caller.
    pub fn with_fallible_epoch_hook(
        mut self,
        hook: impl Fn(&EpochReport) -> Result<()> + Send + Sync + 'static,
    ) -> Self {
        self.epoch_hook = Some(Box::new(hook));
        self
    }

    /// Writes a full durable checkpoint (model parameters, optimizer state,
    /// embedding store, RNG cursor, progress) under `dir` every `every`
    /// epochs, and always after the final epoch. See [`crate::checkpoint`]
    /// for the on-disk layout and [`Trainer::with_resume`] for the way back.
    pub fn with_checkpoint(mut self, dir: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint = Some((dir.into(), every.max(1)));
        self
    }

    /// Continues a checkpointed run: training starts at the checkpoint's
    /// epoch counter with the saved model/source state and RNG cursor, and
    /// the returned report covers the prior epochs too. The trainer's
    /// configuration must match the checkpointed run's (the
    /// `marius::Session::resume_from` facade guarantees this by rebuilding
    /// the configuration from the manifest).
    pub fn with_resume(mut self, resume: ResumeState) -> Self {
        self.resume = Some(resume);
        self
    }

    /// Installs a streaming ingest callback fired at every disk-epoch
    /// boundary at the write-back safe point (see [`IngestHook`]). A `&mut`
    /// setter rather than a consuming builder so driver code can arm it on an
    /// already-configured trainer.
    pub fn set_ingest_hook(
        &mut self,
        hook: impl Fn(&mut DiskSetup, usize) -> Result<u64> + Send + Sync + 'static,
    ) {
        self.ingest_hook = Some(Box::new(hook));
    }

    /// Shares a stream cursor with the trainer: checkpoints written by this
    /// trainer record its current value in their manifests (`"stream"`
    /// field), making the streamed run resumable by replay.
    pub fn set_stream_state(&mut self, state: Arc<Mutex<StreamState>>) {
        self.stream_state = Some(state);
    }

    /// Whether epoch `epoch_idx` evaluates because the cadence says so
    /// (ignoring the forced final-epoch evaluation).
    fn cadence_evaluates(&self, epoch_idx: usize) -> bool {
        (epoch_idx + 1).is_multiple_of(self.eval_every.max(1))
    }

    fn should_evaluate(&self, epoch_idx: usize) -> bool {
        self.cadence_evaluates(epoch_idx) || epoch_idx + 1 == self.train.epochs
    }

    /// The RNG cursor a checkpoint written after epoch `epoch_idx` must
    /// record. A final-epoch evaluation that the cadence alone would not have
    /// performed is *off-stream*: a longer run never makes those draws at
    /// this epoch, so leaking them into the cursor would make a
    /// `resume_from_until` continuation diverge from the longer run's
    /// trajectory. Cadence evaluations' draws are part of every run's stream
    /// and are kept.
    fn checkpoint_rng_state(&self, epoch_idx: usize, pre_eval: [u64; 4], rng: &StdRng) -> [u64; 4] {
        if self.cadence_evaluates(epoch_idx) {
            rng.state()
        } else {
            pre_eval
        }
    }

    fn should_checkpoint(&self, epoch_idx: usize) -> bool {
        match &self.checkpoint {
            Some((_, every)) => {
                (epoch_idx + 1).is_multiple_of(*every) || epoch_idx + 1 == self.train.epochs
            }
            None => false,
        }
    }

    fn epoch_done(&self, report: &ExperimentReport) -> Result<()> {
        if let (Some(hook), Some(epoch)) = (&self.epoch_hook, report.epochs.last()) {
            hook(epoch)?;
        }
        Ok(())
    }

    /// Mirrors one finalized [`EpochReport`] into `trainer.*` counters, so
    /// `metrics.json` aggregates agree with the summed report fields exactly.
    fn mirror_epoch(&self, epoch: &EpochReport) {
        if !self.telemetry.is_enabled() {
            return;
        }
        let t = &self.telemetry;
        t.counter("trainer.epochs").incr();
        t.counter("trainer.examples").add(epoch.examples as u64);
        t.counter("trainer.epoch_time_ns")
            .add_duration(epoch.epoch_time);
        t.counter("trainer.io_wait_ns")
            .add_duration(epoch.io_wait_time);
        t.counter("trainer.stall_ns").add_duration(epoch.stall_time);
        t.counter("trainer.writeback_ns")
            .add_duration(epoch.writeback_time);
        t.counter("trainer.throttle_wait_ns")
            .add_duration(epoch.throttle_wait_time);
        t.counter("trainer.buffer_hits").add(epoch.buffer_hits);
        t.counter("trainer.buffer_misses").add(epoch.buffer_misses);
        t.counter("trainer.buffer_evictions")
            .add(epoch.buffer_evictions);
    }

    /// The one generic checkpoint code path both executors funnel through:
    /// assembles the manifest payload and writes a versioned checkpoint.
    /// `state` carries the task's model blobs plus any executor-specific
    /// blobs (in-memory source dump, example order); `store` is the partition
    /// store to snapshot (disk runs with write-back), which must be at a
    /// write-back safe point.
    #[allow(clippy::too_many_arguments)]
    fn write_checkpoint(
        &self,
        data: &ScaledDataset,
        storage: &StorageKind,
        epochs_completed: usize,
        rng_state: [u64; 4],
        state: &StateDict,
        store: Option<&PartitionStore>,
        report: &ExperimentReport,
    ) -> Result<()> {
        let (dir, every) = self
            .checkpoint
            .as_ref()
            .expect("write_checkpoint called without a checkpoint configuration");
        let snapshot = CheckpointSnapshot {
            task_slug: self.task.slug(),
            epochs_completed,
            every: *every,
            eval_every: self.eval_every,
            rng_state,
            emulated_device: self.emulate_device.then_some(&self.io_model),
            model: &self.model,
            train: &self.train,
            storage,
            pipeline: &self.pipeline,
            data,
            state,
            store,
            report,
            stream: self
                .stream_state
                .as_ref()
                .map(|s| *s.lock().expect("stream state poisoned")),
        };
        crate::checkpoint::write_versioned(dir, &snapshot)?;
        Ok(())
    }

    /// Trains with the full graph in memory (the M-GNN_Mem configuration).
    pub fn train_in_memory(&self, data: &ScaledDataset) -> Result<ExperimentReport> {
        let mut rng = StdRng::seed_from_u64(self.train.seed);
        let mut report = ExperimentReport::new("M-GNN_Mem", data.spec.name.clone());

        let subgraph = std::sync::Arc::new(self.task.in_memory_subgraph(data));
        let candidates = self.task.in_memory_candidates(data);
        let mut model = self
            .task
            .build_model(&self.model, &self.train, data, &mut rng)?;
        let mut source = self.task.in_memory_source(&self.model, data, &mut rng)?;
        let builder = self.task.batch_builder(&model);
        // In-memory training evaluates over the training graph itself, so the
        // evaluation context shares the subgraph instead of rebuilding it.
        let eval_ctx = self.task.in_memory_eval_context(data, &subgraph);
        let examples = self.task.in_memory_examples(data);
        // The shuffle permutes an index vector rather than the examples, so
        // the cross-epoch shuffle state is a compact, checkpointable value
        // (shuffling draws only depend on length, so trajectories are
        // unchanged relative to shuffling the examples directly). The
        // permuted examples are materialised once per epoch into a reused
        // scratch buffer, keeping the batch loop allocation-free.
        let mut order: Vec<u64> = (0..examples.len() as u64).collect();
        let mut permuted: Vec<T::Example> = Vec::with_capacity(examples.len());

        let mut span = self.telemetry.scope("trainer");

        // Resuming: construction above replayed the fresh run's RNG draws;
        // now overlay the checkpointed state and jump to its epoch.
        let mut start_epoch = 0usize;
        if let Some(resume) = &self.resume {
            span.begin("resume.load", NO_LABEL, NO_LABEL);
            self.task.load_state(&mut model, &resume.state)?;
            source.load_state(&resume.state)?;
            let saved_order = resume.state.require_u64(EXAMPLE_ORDER_BLOB)?;
            if saved_order.len() != examples.len() {
                return Err(StorageError::checkpoint(format!(
                    "checkpointed example order covers {} examples, dataset has {}",
                    saved_order.len(),
                    examples.len()
                )));
            }
            order = saved_order;
            rng = StdRng::from_raw_state(resume.rng_state);
            start_epoch = resume.start_epoch;
            report.epochs = resume.prior_epochs.clone();
            span.end();
        }

        for epoch_idx in start_epoch..self.train.epochs {
            let mut epoch = EpochReport {
                epoch: epoch_idx,
                ..Default::default()
            };
            span.begin("epoch", epoch_idx as i64, NO_LABEL);
            span.begin("epoch.train", epoch_idx as i64, NO_LABEL);
            let start = Instant::now();
            order.shuffle(&mut rng);
            permuted.clear();
            permuted.extend(order.iter().map(|&i| examples[i as usize].clone()));
            for (i, batch) in permuted.chunks(self.train.batch_size).enumerate() {
                if self.train.max_batches_per_epoch > 0 && i >= self.train.max_batches_per_epoch {
                    break;
                }
                let prepared =
                    self.task
                        .prepare(&builder, data, &subgraph, batch, &candidates, &mut rng);
                let stats = self
                    .task
                    .train_prepared(&mut model, source.as_mut(), prepared);
                accumulate(&mut epoch, &stats);
            }
            epoch.epoch_time = start.elapsed();
            span.end(); // epoch.train
            let pre_eval_rng = rng.state();
            epoch.metric = if self.should_evaluate(epoch_idx) {
                span.timed("epoch.eval", epoch_idx as i64, NO_LABEL, || {
                    self.task.evaluate(
                        &model,
                        source.as_ref(),
                        &eval_ctx,
                        data,
                        &self.train,
                        &mut rng,
                    )
                })
            } else {
                f64::NAN
            };
            finalize(&mut epoch);
            self.mirror_epoch(&epoch);
            report.epochs.push(epoch);
            self.epoch_done(&report)?;
            if self.should_checkpoint(epoch_idx) {
                span.begin("epoch.checkpoint", epoch_idx as i64, NO_LABEL);
                let mut state = StateDict::new();
                self.task.save_state(&model, &mut state);
                source.save_state(&mut state);
                state.push_u64(EXAMPLE_ORDER_BLOB, &order);
                self.write_checkpoint(
                    data,
                    &StorageKind::InMemory,
                    epoch_idx + 1,
                    self.checkpoint_rng_state(epoch_idx, pre_eval_rng, &rng),
                    &state,
                    None,
                    &report,
                )?;
                span.end();
            }
            span.end(); // epoch
        }
        Ok(report)
    }

    /// One sequential disk epoch: swaps, sampling and compute interleaved on
    /// the calling thread. Serves as the determinism oracle for the pipelined
    /// executor: both derive per-step RNGs from `step_seed(epoch_seed, step)`
    /// and therefore produce bit-identical loss trajectories.
    fn run_epoch_sequential(
        &self,
        data: &ScaledDataset,
        plan: &marius_storage::EpochPlan,
        setup: &mut DiskSetup,
        epoch_seed: u64,
        model: &mut T::Model,
        epoch: &mut EpochReport,
    ) -> Result<()> {
        let p = setup.assignment.num_partitions();
        let builder = self.task.batch_builder(model);
        let mut batch_counter = 0usize;
        for (s, set) in plan.partition_sets.iter().enumerate() {
            let mut step_rng = StdRng::seed_from_u64(step_seed(epoch_seed, s as u64));
            epoch.partition_loads += setup.buffer.load_set(set)?;
            // Collect this step's training examples and shuffle them for
            // mini-batch generation. Steps that only stage partitions into the
            // buffer carry no examples.
            let mut examples = self.task.step_examples(data, &setup.buckets, p, plan, s);
            if examples.is_empty() {
                continue;
            }
            examples.shuffle(&mut step_rng);
            let candidates = setup.buffer.resident_nodes();
            // One shared snapshot per step (the subgraph only changes on
            // load_set); the Arc handle lets each batch borrow the buffer
            // mutably without deep-copying the CSR structures.
            let snapshot = setup.buffer.subgraph_arc();
            for batch in examples.chunks(self.train.batch_size) {
                if self.train.max_batches_per_epoch > 0
                    && batch_counter >= self.train.max_batches_per_epoch
                {
                    break;
                }
                let prepared =
                    self.task
                        .prepare(&builder, data, &snapshot, batch, &candidates, &mut step_rng);
                let stats = self.task.train_prepared(model, &mut setup.buffer, prepared);
                accumulate(epoch, &stats);
                batch_counter += 1;
            }
        }
        Ok(())
    }

    /// One pipelined disk epoch on the staged runtime: stage 2 workers shuffle
    /// the step's examples and build prepared batches (negatives + DENSE
    /// sampling) while stage 1 prefetches upcoming partition sets and this
    /// thread consumes `train_prepared` updates.
    #[allow(clippy::too_many_arguments)]
    fn run_epoch_pipelined(
        &self,
        pipe: &Pipeline,
        data: &ScaledDataset,
        plan: &marius_storage::EpochPlan,
        setup: &mut DiskSetup,
        epoch_seed: u64,
        model: &mut T::Model,
        epoch: &mut EpochReport,
    ) -> Result<()> {
        let p = setup.assignment.num_partitions();
        let batch_size = self.train.batch_size;
        let max_batches = self.train.max_batches_per_epoch;
        // Per-step start offsets into the global batch budget so the cap is
        // applied identically to the sequential counter even though workers
        // build steps concurrently.
        let mut batch_offsets = Vec::with_capacity(plan.partition_sets.len());
        let mut acc = 0usize;
        for s in 0..plan.partition_sets.len() {
            batch_offsets.push(acc);
            acc += self
                .task
                .step_example_count(data, &setup.buckets, p, plan, s)
                .div_ceil(batch_size);
        }
        let builder = self.task.batch_builder(model);
        let task = &self.task;
        let buckets = &setup.buckets;
        let report = pipe.run_epoch(
            plan,
            &mut setup.buffer,
            epoch_seed,
            |ctx, step_rng, sink| {
                let mut examples = task.step_examples(data, buckets, p, plan, ctx.step);
                if examples.is_empty() {
                    return;
                }
                examples.shuffle(step_rng);
                for (k, chunk) in examples.chunks(batch_size).enumerate() {
                    if max_batches > 0 && batch_offsets[ctx.step] + k >= max_batches {
                        break;
                    }
                    sink(task.prepare(
                        &builder,
                        data,
                        &ctx.subgraph,
                        chunk,
                        &ctx.candidates,
                        step_rng,
                    ));
                }
            },
            |buffer, _ctx, prepared| {
                let stats = task.train_prepared(model, buffer, prepared);
                accumulate(epoch, &stats);
            },
        )?;
        epoch.partition_loads += report.partition_loads;
        epoch.io_wait_time += report.compute_stall;
        // The drain's own queue wait (`writeback_stall`) is deliberately not
        // folded in: that lane idles between one small write burst per step,
        // so its wait is "no work yet", not back-pressure, and including it
        // would swamp the stall signal tracked across bench trajectories.
        epoch.stall_time += report.prefetch_stall + report.sample_stall;
        epoch.writeback_time += report.writeback_busy;
        epoch.overlap = report.overlap_ratio();
        Ok(())
    }

    /// Trains out-of-core with a partition buffer driven by the task's
    /// replacement policy (the M-GNN_Disk configuration). Runs on the staged
    /// pipeline runtime when `self.pipeline.enabled`, otherwise sequentially.
    pub fn train_disk(&self, data: &ScaledDataset, disk: &DiskConfig) -> Result<ExperimentReport> {
        let mut rng = StdRng::seed_from_u64(self.train.seed);
        let label = self.task.disk_label(disk)?;
        let mut report = ExperimentReport::new(label.clone(), data.spec.name.clone());

        let store = PartitionStore::open_temp(&format!(
            "{}-{}-{}",
            self.task.slug(),
            data.spec.name.replace('.', "-"),
            label.replace([' ', '(', ')'], "")
        ))?;
        let store = if self.emulate_device {
            store.with_emulated_device(self.io_model)
        } else {
            store
        };
        let store = match &self.faults {
            Some(injector) => store.with_fault_injector(Arc::clone(injector)),
            None => store,
        };
        let store = store
            .with_retry_policy(self.retry)
            .with_telemetry(&self.telemetry);
        store.clear()?;
        let mut setup = self
            .task
            .disk_setup(&self.model, data, disk, store, &mut rng)?;
        setup.buffer.attach_telemetry(&self.telemetry);
        let mut model = self
            .task
            .build_model(&self.model, &self.train, data, &mut rng)?;
        let pipeline = self
            .pipeline
            .enabled
            .then(|| Pipeline::new(self.pipeline.clone()).with_telemetry(&self.telemetry));
        let eval_ctx = self.task.eval_context(data);
        // Non-writeback buffers hold fixed representations that never change
        // on disk, so their evaluation source is built once; learnable ones
        // are reassembled from disk after each epoch's flush.
        let mut static_eval_source: Option<Box<dyn crate::source::RepresentationSource>> = None;

        let mut span = self.telemetry.scope("trainer");

        // Resuming: disk_setup/build_model above replayed the fresh run's RNG
        // draws (reproducing the partition assignment the snapshot's files
        // are laid out by); now overlay the checkpointed partition bytes and
        // model state, restore the RNG cursor, and jump to the saved epoch.
        let mut start_epoch = 0usize;
        if let Some(resume) = &self.resume {
            span.begin("resume.load", NO_LABEL, NO_LABEL);
            if let Some(snapshot) = &resume.store_snapshot {
                setup.store.restore_from(snapshot)?;
            }
            self.task.load_state(&mut model, &resume.state)?;
            rng = StdRng::from_raw_state(resume.rng_state);
            start_epoch = resume.start_epoch;
            report.epochs = resume.prior_epochs.clone();
            span.end();
        }

        for epoch_idx in start_epoch..self.train.epochs {
            let mut epoch = EpochReport {
                epoch: epoch_idx,
                ..Default::default()
            };
            setup.store.reset_io_stats();
            setup.buffer.reset_stats();
            span.begin("epoch", epoch_idx as i64, NO_LABEL);
            span.begin("epoch.train", epoch_idx as i64, NO_LABEL);
            let start = Instant::now();
            let plan = self.task.epoch_plan(disk, &setup, &mut rng)?;
            // Every random draw inside the epoch derives from this seed (per
            // step), so the sequential and pipelined executors are
            // interchangeable bit-for-bit.
            let epoch_seed: u64 = rng.gen();
            match &pipeline {
                Some(pipe) => self.run_epoch_pipelined(
                    pipe, data, &plan, &mut setup, epoch_seed, &mut model, &mut epoch,
                )?,
                None => self.run_epoch_sequential(
                    data, &plan, &mut setup, epoch_seed, &mut model, &mut epoch,
                )?,
            }
            span.end(); // epoch.train
            if setup.writeback {
                span.timed("epoch.flush", epoch_idx as i64, NO_LABEL, || {
                    setup.buffer.flush()
                })?;
            }
            if let Some(hook) = &self.ingest_hook {
                // Staged edge deltas are applied exactly here: after the
                // epoch's flush (so the write-back ledger is drained and the
                // store's bucket files agree with the in-memory buckets) and
                // before evaluation and the boundary's checkpoint. The hook
                // draws no trainer RNG, so the loss trajectory up to this
                // boundary is identical to a frozen-dataset run's.
                writeback_safe_point(&setup.buffer)?;
                span.begin("epoch.ingest", epoch_idx as i64, NO_LABEL);
                epoch.edges_ingested = hook(&mut setup, epoch_idx)?;
                span.end();
            }
            epoch.epoch_time = start.elapsed();

            let io = setup.store.io_stats();
            epoch.io_bytes_read = io.bytes_read;
            epoch.io_bytes_written = io.bytes_written;
            epoch.io_time = self.io_model.stats_time(&io);
            epoch.io_retries = io.io_retries;
            epoch.faults_injected = io.faults_injected;
            epoch.throttle_wait_time = io.throttle_wait;
            let buffer_stats = setup.buffer.stats();
            epoch.buffer_hits = buffer_stats.hits;
            epoch.buffer_misses = buffer_stats.misses;
            epoch.buffer_evictions = buffer_stats.evictions;

            let pre_eval_rng = rng.state();
            epoch.metric = if self.should_evaluate(epoch_idx) {
                span.begin("epoch.eval", epoch_idx as i64, NO_LABEL);
                let fresh_eval_source;
                let eval_source: &dyn crate::source::RepresentationSource = if setup.writeback {
                    fresh_eval_source = self.task.disk_eval_source(&self.model, data, &setup)?;
                    fresh_eval_source.as_ref()
                } else {
                    if static_eval_source.is_none() {
                        static_eval_source =
                            Some(self.task.disk_eval_source(&self.model, data, &setup)?);
                    }
                    static_eval_source.as_deref().expect("populated above")
                };
                let metric =
                    self.task
                        .evaluate(&model, eval_source, &eval_ctx, data, &self.train, &mut rng);
                span.end();
                metric
            } else {
                f64::NAN
            };
            finalize(&mut epoch);
            self.mirror_epoch(&epoch);
            report.epochs.push(epoch);
            self.epoch_done(&report)?;
            if self.should_checkpoint(epoch_idx) {
                span.begin("epoch.checkpoint", epoch_idx as i64, NO_LABEL);
                // The post-epoch flush above already drained the write-back
                // ledger; assert the safe point all the same before linking
                // the store's files into the snapshot (a partition with a
                // detached write-back in flight has stale bytes on disk).
                writeback_safe_point(&setup.buffer)?;
                let mut state = StateDict::new();
                self.task.save_state(&model, &mut state);
                self.write_checkpoint(
                    data,
                    &StorageKind::Disk(disk.clone()),
                    epoch_idx + 1,
                    self.checkpoint_rng_state(epoch_idx, pre_eval_rng, &rng),
                    &state,
                    setup.writeback.then_some(&setup.store),
                    &report,
                )?;
                span.end();
            }
            span.end(); // epoch
        }
        let _ = setup.store.clear();
        Ok(report)
    }
}

/// The link-prediction trainer of earlier revisions.
#[deprecated(note = "use `Trainer<LinkPredictionTask>` (or the `marius::Session` facade)")]
pub type LinkPredictionTrainer = Trainer<LinkPredictionTask>;

/// The node-classification trainer of earlier revisions.
#[deprecated(note = "use `Trainer<NodeClassificationTask>` (or the `marius::Session` facade)")]
pub type NodeClassificationTrainer = Trainer<NodeClassificationTask>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DiskConfig;
    use marius_graph::datasets::{DatasetSpec, ScaledDataset};
    use marius_graph::Partitioner;
    use marius_storage::PartitionStore;
    use std::time::Duration;

    fn lp_dataset() -> ScaledDataset {
        ScaledDataset::generate(&DatasetSpec::fb15k_237().scaled(0.015), 3)
    }

    fn lp_trainer(layers: usize) -> Trainer<LinkPredictionTask> {
        let mut model = ModelConfig::paper_link_prediction_graphsage(12).shrunk(5, 12);
        if layers == 0 {
            model = ModelConfig::paper_distmult(12);
        }
        let mut train = TrainConfig::quick(2, 9);
        train.batch_size = 128;
        train.num_negatives = 32;
        train.eval_negatives = 64;
        Trainer::new(model, train)
    }

    fn nc_dataset() -> ScaledDataset {
        ScaledDataset::generate(&DatasetSpec::ogbn_arxiv().scaled(0.008), 21)
    }

    fn nc_trainer() -> Trainer<NodeClassificationTask> {
        let mut model = ModelConfig::paper_node_classification(128, 16);
        model.num_layers = 2;
        model.fanouts = vec![8, 5];
        let mut train = TrainConfig::quick(2, 13);
        train.batch_size = 128;
        Trainer::new(model, train)
    }

    #[test]
    fn in_memory_link_prediction_produces_improving_mrr() {
        let data = lp_dataset();
        let report = lp_trainer(0).train_in_memory(&data).unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert!(report.final_metric() > 0.1, "MRR {}", report.final_metric());
        assert!(report.epochs[0].examples > 0);
        assert!(report.epochs[0].sample_time > Duration::ZERO);
    }

    #[test]
    fn disk_link_prediction_with_comet_runs_and_learns() {
        let data = lp_dataset();
        let disk = DiskConfig::comet(8, 4);
        let report = lp_trainer(1).train_disk(&data, &disk).unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert!(report.epochs[0].partition_loads >= 4);
        assert!(report.epochs[0].io_bytes_read > 0);
        assert!(
            report.final_metric() > 0.05,
            "disk MRR {}",
            report.final_metric()
        );
    }

    #[test]
    fn disk_link_prediction_with_beta_runs() {
        let data = lp_dataset();
        let report = lp_trainer(1)
            .train_disk(&data, &DiskConfig::beta(8, 4))
            .unwrap();
        assert_eq!(report.epochs.len(), 2);
        assert!(report.system.contains("BETA"));
        assert!(report.final_metric() > 0.0);
    }

    #[test]
    fn disk_link_prediction_rejects_node_cache_policy() {
        let data = lp_dataset();
        let err = lp_trainer(1)
            .train_disk(&data, &DiskConfig::node_cache(8, 4))
            .unwrap_err();
        assert!(format!("{err}").contains("node classification"));
    }

    #[test]
    fn pipelined_link_prediction_matches_sequential_losses() {
        let data = lp_dataset();
        let disk = DiskConfig::comet(8, 4);
        let sequential = lp_trainer(1).train_disk(&data, &disk).unwrap();
        let pipelined = lp_trainer(1)
            .with_pipeline(marius_pipeline::PipelineConfig::with_workers(1))
            .train_disk(&data, &disk)
            .unwrap();
        for (a, b) in sequential.epochs.iter().zip(&pipelined.epochs) {
            assert_eq!(a.loss, b.loss, "epoch {} loss drifted", a.epoch);
            assert_eq!(a.metric, b.metric, "epoch {} metric drifted", a.epoch);
            assert_eq!(a.examples, b.examples);
        }
        assert!(pipelined.epochs[0].overlap > 0.0);
    }

    #[test]
    fn in_memory_node_classification_beats_random_guessing() {
        let data = nc_dataset();
        let report = nc_trainer().train_in_memory(&data).unwrap();
        assert_eq!(report.epochs.len(), 2);
        let chance = 1.0 / data.spec.num_classes.unwrap() as f64;
        assert!(
            report.final_metric() > 2.0 * chance,
            "accuracy {} should beat chance {}",
            report.final_metric(),
            chance
        );
        assert!(report.epochs[0].epoch_time > Duration::ZERO);
    }

    #[test]
    fn disk_node_classification_with_node_cache_runs_and_learns() {
        let data = nc_dataset();
        let disk = DiskConfig::node_cache(8, 6);
        let report = nc_trainer().train_disk(&data, &disk).unwrap();
        assert_eq!(report.epochs.len(), 2);
        // The caching policy loads the buffer once per epoch and performs no
        // swaps during it.
        assert!(report.epochs[0].partition_loads <= 6);
        let chance = 1.0 / data.spec.num_classes.unwrap() as f64;
        assert!(report.final_metric() > 1.5 * chance);
    }

    #[test]
    fn disk_node_classification_rejects_non_cache_policy() {
        let data = nc_dataset();
        let err = nc_trainer()
            .train_disk(&data, &DiskConfig::comet(8, 4))
            .unwrap_err();
        assert!(format!("{err}").contains("training-node caching policy"));
    }

    #[test]
    fn pipelined_node_classification_matches_sequential_losses() {
        let data = nc_dataset();
        let disk = DiskConfig::node_cache(8, 6);
        let sequential = nc_trainer().train_disk(&data, &disk).unwrap();
        let pipelined = nc_trainer()
            .with_pipeline(marius_pipeline::PipelineConfig::with_workers(1))
            .train_disk(&data, &disk)
            .unwrap();
        for (a, b) in sequential.epochs.iter().zip(&pipelined.epochs) {
            assert_eq!(a.loss, b.loss, "epoch {} loss drifted", a.epoch);
            assert_eq!(a.metric, b.metric, "epoch {} metric drifted", a.epoch);
        }
    }

    #[test]
    fn eval_cadence_skips_intermediate_epochs_and_keeps_the_final_one() {
        let data = lp_dataset();
        let mut trainer = lp_trainer(0);
        trainer.train.epochs = 3;
        let report = trainer.with_eval_every(3).train_in_memory(&data).unwrap();
        assert!(report.epochs[0].metric.is_nan());
        assert!(report.epochs[1].metric.is_nan());
        assert!(report.epochs[2].metric.is_finite());
    }

    #[test]
    fn epoch_hook_fires_once_per_epoch() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let data = lp_dataset();
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let report = lp_trainer(0)
            .with_epoch_hook(move |e| {
                assert!(e.examples > 0);
                seen.fetch_add(1, Ordering::SeqCst);
            })
            .train_in_memory(&data)
            .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), report.epochs.len());
    }

    #[test]
    fn deprecated_trainer_aliases_still_construct() {
        #![allow(deprecated)]
        let t: LinkPredictionTrainer =
            LinkPredictionTrainer::new(ModelConfig::paper_distmult(8), TrainConfig::quick(1, 1));
        assert_eq!(t.train.epochs, 1);
        let t: NodeClassificationTrainer = NodeClassificationTrainer::new(
            ModelConfig::paper_node_classification(16, 8),
            TrainConfig::quick(1, 2),
        );
        assert_eq!(t.train.seed, 2);
    }

    #[test]
    fn read_all_embeddings_reassembles_by_node_id() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        let partitioner = Partitioner::new(3).unwrap();
        let assignment = partitioner.random(9, &mut rng);
        let store = PartitionStore::open_temp("read-all").unwrap();
        store.clear().unwrap();
        let dim = 2usize;
        // Write each partition with rows equal to the node id.
        for p in 0..3u32 {
            let nodes = assignment.nodes_in(p);
            let values: Vec<f32> = nodes.iter().flat_map(|&n| vec![n as f32; dim]).collect();
            let state = vec![0.0; values.len()];
            store.write_partition(p, &values, &state).unwrap();
        }
        let flat = read_all_embeddings(&store, &assignment, dim).unwrap();
        for n in 0..9usize {
            assert_eq!(flat[n * dim], n as f32);
        }
    }

    #[test]
    fn read_all_embeddings_handles_contiguous_and_mixed_partitions() {
        use marius_graph::PartitionAssignment;
        // Partition 0: nodes {0,1,2,7} (a run of three plus a gap);
        // partition 1: nodes {3,4,5,6} (fully contiguous).
        let assignment = PartitionAssignment::from_vec(vec![0, 0, 0, 1, 1, 1, 1, 0], 2).unwrap();
        let store = PartitionStore::open_temp("read-all-mixed").unwrap();
        store.clear().unwrap();
        let dim = 3usize;
        for p in 0..2u32 {
            let nodes = assignment.nodes_in(p);
            let values: Vec<f32> = nodes
                .iter()
                .flat_map(|&n| (0..dim).map(move |d| n as f32 * 10.0 + d as f32))
                .collect();
            let state = vec![0.0; values.len()];
            store.write_partition(p, &values, &state).unwrap();
        }
        let flat = read_all_embeddings(&store, &assignment, dim).unwrap();
        for n in 0..8usize {
            for d in 0..dim {
                assert_eq!(
                    flat[n * dim + d],
                    n as f32 * 10.0 + d as f32,
                    "node {n} dim {d}"
                );
            }
        }
    }
}
