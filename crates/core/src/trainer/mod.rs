//! Epoch orchestration for in-memory and disk-based training.
//!
//! Both trainers follow the structure of Figure 2: the storage side produces a
//! sequence of in-memory subgraphs (a single one for in-memory training, one per
//! partition set for disk-based training) and the processing side consumes the
//! training examples assigned to each subgraph as mini batches. Timing is broken
//! down into sampling, compute and (estimated) IO so the benchmark harnesses can
//! report the same columns as the paper's tables.
//!
//! # Sequential versus pipelined disk epochs
//!
//! Each disk-based trainer has two epoch executors selected by
//! [`crate::config::PipelineConfig::enabled`]:
//!
//! * **Sequential** (`enabled = false`, the default): partition swaps, DENSE
//!   sampling and compute run back-to-back on the calling thread, so epoch
//!   time is the *sum* of the three phases. This path is also the determinism
//!   oracle for the pipeline.
//! * **Pipelined** (`enabled = true`): the epoch runs on
//!   [`marius_pipeline::Pipeline`] — a prefetcher thread walks the policy's
//!   `EpochPlan` ahead of the consumer issuing `PartitionStore` reads, a pool
//!   of workers builds batches (shuffle, negative sampling, DENSE multi-hop
//!   sampling), and the calling thread applies `train_prepared` and enqueues
//!   dirty-partition write-backs — so epoch time approaches the *max* phase.
//!
//! Both executors derive every in-epoch random draw from
//! [`marius_pipeline::step_seed`]`(epoch_seed, step)`, which makes their loss
//! trajectories bit-identical for a fixed training seed (asserted by the
//! `pipeline_determinism` integration test at the workspace root). Disk-path
//! failures (missing or truncated partition files, invalid plans) propagate as
//! [`marius_storage::StorageError`] instead of panicking.

mod link_prediction;
mod node_classification;

pub use link_prediction::LinkPredictionTrainer;
pub use node_classification::NodeClassificationTrainer;

use marius_graph::PartitionAssignment;
use marius_storage::{PartitionStore, Result};

/// Reads every node partition back from disk and assembles a flat
/// `num_nodes × dim` embedding buffer indexed by global node id. Used to run
/// full-graph evaluation after a disk-based training epoch.
pub(crate) fn read_all_embeddings(
    store: &PartitionStore,
    assignment: &PartitionAssignment,
    dim: usize,
) -> Result<Vec<f32>> {
    let mut flat = vec![0.0f32; assignment.num_nodes() as usize * dim];
    for p in 0..assignment.num_partitions() {
        let (values, _state) = store.read_partition(p)?;
        for (offset, &node) in assignment.nodes_in(p).iter().enumerate() {
            let src = &values[offset * dim..(offset + 1) * dim];
            let dst_start = node as usize * dim;
            flat[dst_start..dst_start + dim].copy_from_slice(src);
        }
    }
    Ok(flat)
}

/// Deterministically shuffles a vector of items using the provided RNG.
pub(crate) fn shuffle_in_place<T, R: rand::Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(1);
        shuffle_in_place(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn read_all_embeddings_reassembles_by_node_id() {
        use marius_graph::Partitioner;
        let mut rng = StdRng::seed_from_u64(2);
        let partitioner = Partitioner::new(3).unwrap();
        let assignment = partitioner.random(9, &mut rng);
        let store = PartitionStore::open_temp("read-all").unwrap();
        store.clear().unwrap();
        let dim = 2usize;
        // Write each partition with rows equal to the node id.
        for p in 0..3u32 {
            let nodes = assignment.nodes_in(p);
            let values: Vec<f32> = nodes.iter().flat_map(|&n| vec![n as f32; dim]).collect();
            let state = vec![0.0; values.len()];
            store.write_partition(p, &values, &state).unwrap();
        }
        let flat = read_all_embeddings(&store, &assignment, dim).unwrap();
        for n in 0..9usize {
            assert_eq!(flat[n * dim], n as f32);
        }
    }
}
