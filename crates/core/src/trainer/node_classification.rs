//! Node-classification training: in-memory and out-of-core epoch loops.

use super::shuffle_in_place;
use crate::config::{DiskConfig, ModelConfig, PolicyKind, TrainConfig};
use crate::models::{BatchStats, NodeClassificationModel};
use crate::report::{EpochReport, ExperimentReport};
use crate::source::FixedFeatureSource;
use marius_graph::datasets::ScaledDataset;
use marius_graph::{InMemorySubgraph, NodeId, Partitioner};
use marius_storage::policy::ReplacementPolicy;
use marius_storage::{IoCostModel, NodeCachePolicy, PartitionBuffer, PartitionStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Orchestrates node-classification training for one model configuration.
pub struct NodeClassificationTrainer {
    /// Model architecture.
    pub model: ModelConfig,
    /// Batch/epoch configuration.
    pub train: TrainConfig,
    /// IO cost model used to estimate disk time for reports.
    pub io_model: IoCostModel,
}

impl NodeClassificationTrainer {
    /// Creates a trainer.
    pub fn new(model: ModelConfig, train: TrainConfig) -> Self {
        NodeClassificationTrainer {
            model,
            train,
            io_model: IoCostModel::default(),
        }
    }

    fn accumulate(epoch: &mut EpochReport, stats: &BatchStats) {
        epoch.loss += stats.loss * stats.examples as f64;
        epoch.examples += stats.examples;
        epoch.sample_time += stats.sample_time;
        epoch.compute_time += stats.compute_time;
        epoch.nodes_sampled += stats.nodes_sampled;
        epoch.edges_sampled += stats.edges_sampled;
    }

    fn finalize(epoch: &mut EpochReport) {
        if epoch.examples > 0 {
            epoch.loss /= epoch.examples as f64;
        }
    }

    fn labels_for(data: &ScaledDataset, nodes: &[NodeId]) -> Vec<u32> {
        let labels = data.labels.as_ref().expect("node classification labels");
        nodes.iter().map(|&n| labels[n as usize]).collect()
    }

    /// Trains with the full graph in memory (the M-GNN_Mem configuration).
    pub fn train_in_memory(&self, data: &ScaledDataset) -> ExperimentReport {
        let mut rng = StdRng::seed_from_u64(self.train.seed);
        let mut report = ExperimentReport::new("M-GNN_Mem", data.spec.name.clone());
        let num_classes = data.spec.num_classes.expect("classification dataset");

        let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
        let mut model = NodeClassificationModel::new(&self.model, num_classes, &mut rng);
        let mut source = FixedFeatureSource::new(
            data.features
                .clone()
                .expect("fixed features for node classification"),
        );

        let mut train_nodes = data.node_split.train.clone();
        let test_labels = Self::labels_for(data, &data.node_split.test);
        for epoch_idx in 0..self.train.epochs {
            let mut epoch = EpochReport {
                epoch: epoch_idx,
                ..Default::default()
            };
            let start = Instant::now();
            shuffle_in_place(&mut train_nodes, &mut rng);
            for (i, batch) in train_nodes.chunks(self.train.batch_size).enumerate() {
                if self.train.max_batches_per_epoch > 0 && i >= self.train.max_batches_per_epoch {
                    break;
                }
                let batch_labels = Self::labels_for(data, batch);
                let stats =
                    model.train_batch(&mut source, &subgraph, batch, &batch_labels, &mut rng);
                Self::accumulate(&mut epoch, &stats);
            }
            epoch.epoch_time = start.elapsed();
            epoch.metric = model.evaluate_accuracy(
                &source,
                &subgraph,
                &data.node_split.test,
                &test_labels,
                &mut rng,
            );
            Self::finalize(&mut epoch);
            report.epochs.push(epoch);
        }
        report
    }

    /// Trains out-of-core using the training-node caching policy of §5.2 (the
    /// M-GNN_Disk configuration for node classification).
    pub fn train_disk(&self, data: &ScaledDataset, disk: &DiskConfig) -> ExperimentReport {
        assert_eq!(
            disk.policy,
            PolicyKind::NodeCache,
            "node classification uses the training-node caching policy"
        );
        let mut rng = StdRng::seed_from_u64(self.train.seed);
        let mut report = ExperimentReport::new("M-GNN_Disk", data.spec.name.clone());
        let num_classes = data.spec.num_classes.expect("classification dataset");
        let features = data
            .features
            .as_ref()
            .expect("fixed features for node classification");

        // Partition with training nodes packed into the leading partitions.
        let partitioner = Partitioner::new(disk.num_partitions).expect("positive partition count");
        let (assignment, k) =
            partitioner.training_nodes_first(data.num_nodes(), &data.node_split.train, &mut rng);
        let buckets = partitioner
            .build_buckets(&data.graph, &assignment)
            .expect("bucket construction");
        let store = PartitionStore::open_temp(&format!("nc-{}", data.spec.name.replace('.', "-")))
            .expect("temp store");
        store.clear().expect("clean store");
        let mut buffer = PartitionBuffer::new(
            store.clone(),
            assignment,
            self.model.input_dim,
            disk.buffer_capacity,
            false,
        );
        buffer
            .initialize_from_features(features.data())
            .expect("feature partitions");
        buffer.initialize_buckets(&buckets).expect("bucket files");

        let mut model = NodeClassificationModel::new(&self.model, num_classes, &mut rng);
        let policy = NodeCachePolicy::new(disk.buffer_capacity, k);

        // Evaluation runs over the full graph with the fixed features.
        let eval_subgraph = InMemorySubgraph::from_edges(data.graph.edges());
        let eval_source = FixedFeatureSource::new(features.clone());
        let test_labels = Self::labels_for(data, &data.node_split.test);

        let mut train_nodes = data.node_split.train.clone();
        for epoch_idx in 0..self.train.epochs {
            let mut epoch = EpochReport {
                epoch: epoch_idx,
                ..Default::default()
            };
            store.reset_io_stats();
            let start = Instant::now();
            let plan = policy
                .plan(disk.num_partitions, &mut rng)
                .expect("valid node-cache plan");
            // One partition set per epoch: load it, then train on all labeled
            // nodes (all of which are resident by construction).
            for set in &plan.partition_sets {
                let loads = buffer.load_set(set).expect("load partition set");
                epoch.partition_loads += loads;
            }
            shuffle_in_place(&mut train_nodes, &mut rng);
            let subgraph_snapshot = buffer.subgraph().clone();
            for (i, batch) in train_nodes.chunks(self.train.batch_size).enumerate() {
                if self.train.max_batches_per_epoch > 0 && i >= self.train.max_batches_per_epoch {
                    break;
                }
                let batch_labels = Self::labels_for(data, batch);
                let stats = model.train_batch(
                    &mut buffer,
                    &subgraph_snapshot,
                    batch,
                    &batch_labels,
                    &mut rng,
                );
                Self::accumulate(&mut epoch, &stats);
            }
            epoch.epoch_time = start.elapsed();
            let io = store.io_stats();
            epoch.io_bytes_read = io.bytes_read;
            epoch.io_bytes_written = io.bytes_written;
            epoch.io_time = self.io_model.stats_time(&io);
            epoch.metric = model.evaluate_accuracy(
                &eval_source,
                &eval_subgraph,
                &data.node_split.test,
                &test_labels,
                &mut rng,
            );
            Self::finalize(&mut epoch);
            report.epochs.push(epoch);
        }
        let _ = store.clear();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::datasets::DatasetSpec;
    use std::time::Duration;

    fn tiny_dataset() -> ScaledDataset {
        ScaledDataset::generate(&DatasetSpec::ogbn_arxiv().scaled(0.008), 21)
    }

    fn quick_trainer() -> NodeClassificationTrainer {
        let mut model = ModelConfig::paper_node_classification(128, 16);
        model.num_layers = 2;
        model.fanouts = vec![8, 5];
        let mut train = TrainConfig::quick(2, 13);
        train.batch_size = 128;
        NodeClassificationTrainer::new(model, train)
    }

    #[test]
    fn in_memory_training_beats_random_guessing() {
        let data = tiny_dataset();
        let trainer = quick_trainer();
        let report = trainer.train_in_memory(&data);
        assert_eq!(report.epochs.len(), 2);
        let chance = 1.0 / data.spec.num_classes.unwrap() as f64;
        assert!(
            report.final_metric() > 2.0 * chance,
            "accuracy {} should beat chance {}",
            report.final_metric(),
            chance
        );
        assert!(report.epochs[0].epoch_time > Duration::ZERO);
    }

    #[test]
    fn disk_training_with_node_cache_runs_and_learns() {
        let data = tiny_dataset();
        let trainer = quick_trainer();
        let disk = DiskConfig::node_cache(8, 6);
        let report = trainer.train_disk(&data, &disk);
        assert_eq!(report.epochs.len(), 2);
        // The caching policy loads the buffer once per epoch and performs no
        // swaps during it.
        assert!(report.epochs[0].partition_loads <= 6);
        let chance = 1.0 / data.spec.num_classes.unwrap() as f64;
        assert!(report.final_metric() > 1.5 * chance);
    }

    #[test]
    #[should_panic(expected = "node classification uses the training-node caching policy")]
    fn disk_training_rejects_non_cache_policy() {
        let data = tiny_dataset();
        let trainer = quick_trainer();
        let disk = DiskConfig::comet(8, 4);
        let _ = trainer.train_disk(&data, &disk);
    }
}
