//! Node-classification training: in-memory and out-of-core epoch loops.

use super::link_prediction::graph_err;
use super::shuffle_in_place;
use crate::config::{DiskConfig, ModelConfig, PipelineConfig, PolicyKind, TrainConfig};
use crate::models::{BatchStats, NodeClassificationModel};
use crate::report::{EpochReport, ExperimentReport};
use crate::source::FixedFeatureSource;
use marius_graph::datasets::ScaledDataset;
use marius_graph::{InMemorySubgraph, NodeId, Partitioner};
use marius_pipeline::{step_seed, Pipeline};
use marius_storage::policy::ReplacementPolicy;
use marius_storage::{
    EpochPlan, IoCostModel, NodeCachePolicy, PartitionBuffer, PartitionStore, Result, StorageError,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Orchestrates node-classification training for one model configuration.
pub struct NodeClassificationTrainer {
    /// Model architecture.
    pub model: ModelConfig,
    /// Batch/epoch configuration.
    pub train: TrainConfig,
    /// IO cost model used to estimate disk time for reports.
    pub io_model: IoCostModel,
    /// Staged-runtime configuration for disk-based training; disabled selects
    /// the sequential fallback.
    pub pipeline: PipelineConfig,
    /// When `true`, the partition store emulates the `io_model` device
    /// (reads/writes sleep to the modeled transfer time) instead of running at
    /// page-cache speed. Used by benchmarks that measure IO/compute overlap.
    pub emulate_device: bool,
}

impl NodeClassificationTrainer {
    /// Creates a trainer (sequential disk path by default).
    pub fn new(model: ModelConfig, train: TrainConfig) -> Self {
        NodeClassificationTrainer {
            model,
            train,
            io_model: IoCostModel::default(),
            pipeline: PipelineConfig::disabled(),
            emulate_device: false,
        }
    }

    /// Selects the pipelined disk-training runtime.
    pub fn with_pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Runs disk training against an emulated `model` device instead of the
    /// raw local filesystem (see `PartitionStore::with_emulated_device`).
    pub fn with_emulated_device(mut self, model: IoCostModel) -> Self {
        self.io_model = model;
        self.emulate_device = true;
        self
    }

    fn accumulate(epoch: &mut EpochReport, stats: &BatchStats) {
        epoch.loss += stats.loss * stats.examples as f64;
        epoch.examples += stats.examples;
        epoch.sample_time += stats.sample_time;
        epoch.compute_time += stats.compute_time;
        epoch.nodes_sampled += stats.nodes_sampled;
        epoch.edges_sampled += stats.edges_sampled;
    }

    fn finalize(epoch: &mut EpochReport) {
        if epoch.examples > 0 {
            epoch.loss /= epoch.examples as f64;
        }
    }

    fn labels_for(data: &ScaledDataset, nodes: &[NodeId]) -> Vec<u32> {
        let labels = data.labels.as_ref().expect("node classification labels");
        nodes.iter().map(|&n| labels[n as usize]).collect()
    }

    /// Trains with the full graph in memory (the M-GNN_Mem configuration).
    pub fn train_in_memory(&self, data: &ScaledDataset) -> ExperimentReport {
        let mut rng = StdRng::seed_from_u64(self.train.seed);
        let mut report = ExperimentReport::new("M-GNN_Mem", data.spec.name.clone());
        let num_classes = data.spec.num_classes.expect("classification dataset");

        let subgraph = InMemorySubgraph::from_edges(data.graph.edges());
        let mut model = NodeClassificationModel::new(&self.model, num_classes, &mut rng);
        let mut source = FixedFeatureSource::new(
            data.features
                .clone()
                .expect("fixed features for node classification"),
        );

        let mut train_nodes = data.node_split.train.clone();
        let test_labels = Self::labels_for(data, &data.node_split.test);
        for epoch_idx in 0..self.train.epochs {
            let mut epoch = EpochReport {
                epoch: epoch_idx,
                ..Default::default()
            };
            let start = Instant::now();
            shuffle_in_place(&mut train_nodes, &mut rng);
            for (i, batch) in train_nodes.chunks(self.train.batch_size).enumerate() {
                if self.train.max_batches_per_epoch > 0 && i >= self.train.max_batches_per_epoch {
                    break;
                }
                let batch_labels = Self::labels_for(data, batch);
                let stats =
                    model.train_batch(&mut source, &subgraph, batch, &batch_labels, &mut rng);
                Self::accumulate(&mut epoch, &stats);
            }
            epoch.epoch_time = start.elapsed();
            epoch.metric = model.evaluate_accuracy(
                &source,
                &subgraph,
                &data.node_split.test,
                &test_labels,
                &mut rng,
            );
            Self::finalize(&mut epoch);
            report.epochs.push(epoch);
        }
        report
    }

    /// One sequential disk epoch: loads the cached working set, then trains on
    /// every labeled node batch inline. Mirrors the pipelined executor's RNG
    /// discipline (`step_seed(epoch_seed, last_step)`) so both produce
    /// bit-identical loss trajectories.
    fn run_epoch_sequential(
        &self,
        plan: &EpochPlan,
        buffer: &mut PartitionBuffer,
        data: &ScaledDataset,
        epoch_seed: u64,
        model: &mut NodeClassificationModel,
        epoch: &mut EpochReport,
    ) -> Result<()> {
        for set in &plan.partition_sets {
            epoch.partition_loads += buffer.load_set(set)?;
        }
        let last = plan.partition_sets.len().saturating_sub(1);
        let mut step_rng = StdRng::seed_from_u64(step_seed(epoch_seed, last as u64));
        let mut train_nodes = data.node_split.train.clone();
        shuffle_in_place(&mut train_nodes, &mut step_rng);
        let subgraph_snapshot = buffer.subgraph_arc();
        for (i, batch) in train_nodes.chunks(self.train.batch_size).enumerate() {
            if self.train.max_batches_per_epoch > 0 && i >= self.train.max_batches_per_epoch {
                break;
            }
            let batch_labels = Self::labels_for(data, batch);
            let stats = model.train_batch(
                buffer,
                &subgraph_snapshot,
                batch,
                &batch_labels,
                &mut step_rng,
            );
            Self::accumulate(epoch, &stats);
        }
        Ok(())
    }

    /// One pipelined disk epoch: the prefetcher loads the cached working set's
    /// partitions ahead of the consumer, stage-2 workers run DENSE sampling
    /// over the labeled-node batches, and this thread applies the updates. All
    /// training batches belong to the plan's final step (earlier steps only
    /// stage partitions into the buffer).
    #[allow(clippy::too_many_arguments)]
    fn run_epoch_pipelined(
        &self,
        pipe: &Pipeline,
        plan: &EpochPlan,
        buffer: &mut PartitionBuffer,
        data: &ScaledDataset,
        epoch_seed: u64,
        model: &mut NodeClassificationModel,
        epoch: &mut EpochReport,
    ) -> Result<()> {
        let last = plan.partition_sets.len().saturating_sub(1);
        let batch_size = self.train.batch_size;
        let max_batches = self.train.max_batches_per_epoch;
        let builder = model.batch_builder();
        let base_nodes = &data.node_split.train;
        let report = pipe.run_epoch(
            plan,
            buffer,
            epoch_seed,
            |ctx, step_rng, sink| {
                if ctx.step != last {
                    return;
                }
                let mut train_nodes = base_nodes.clone();
                shuffle_in_place(&mut train_nodes, step_rng);
                for (i, batch) in train_nodes.chunks(batch_size).enumerate() {
                    if max_batches > 0 && i >= max_batches {
                        break;
                    }
                    let batch_labels = Self::labels_for(data, batch);
                    sink(builder.prepare(&ctx.subgraph, batch, &batch_labels, step_rng));
                }
            },
            |buffer, _ctx, prepared| {
                let stats = model.train_prepared(buffer, prepared);
                Self::accumulate(epoch, &stats);
            },
        )?;
        epoch.partition_loads += report.partition_loads;
        epoch.io_wait_time += report.compute_stall;
        epoch.stall_time += report.prefetch_stall + report.sample_stall;
        epoch.overlap = report.overlap_ratio();
        Ok(())
    }

    /// Trains out-of-core using the training-node caching policy of §5.2 (the
    /// M-GNN_Disk configuration for node classification). Runs on the staged
    /// pipeline runtime when `self.pipeline.enabled`, otherwise sequentially.
    pub fn train_disk(&self, data: &ScaledDataset, disk: &DiskConfig) -> Result<ExperimentReport> {
        if disk.policy != PolicyKind::NodeCache {
            return Err(StorageError::InvalidPlan {
                reason: "node classification uses the training-node caching policy".into(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.train.seed);
        let mut report = ExperimentReport::new("M-GNN_Disk", data.spec.name.clone());
        // Disk paths return errors rather than panicking on malformed input.
        let num_classes = data
            .spec
            .num_classes
            .ok_or_else(|| StorageError::InvalidPlan {
                reason: "dataset has no class count; node classification needs a labeled dataset"
                    .into(),
            })?;
        let features = data
            .features
            .as_ref()
            .ok_or_else(|| StorageError::InvalidPlan {
                reason: "dataset has no fixed feature matrix for node classification".into(),
            })?;
        if data.labels.is_none() {
            return Err(StorageError::InvalidPlan {
                reason: "dataset has no node labels for node classification".into(),
            });
        }

        // Partition with training nodes packed into the leading partitions.
        let partitioner = Partitioner::new(disk.num_partitions).map_err(graph_err)?;
        let (assignment, k) =
            partitioner.training_nodes_first(data.num_nodes(), &data.node_split.train, &mut rng);
        let buckets = partitioner
            .build_buckets(&data.graph, &assignment)
            .map_err(graph_err)?;
        let store = PartitionStore::open_temp(&format!("nc-{}", data.spec.name.replace('.', "-")))?;
        let store = if self.emulate_device {
            store.with_emulated_device(self.io_model)
        } else {
            store
        };
        store.clear()?;
        let mut buffer = PartitionBuffer::new(
            store.clone(),
            assignment,
            self.model.input_dim,
            disk.buffer_capacity,
            false,
        );
        buffer.initialize_from_features(features.data())?;
        buffer.initialize_buckets(&buckets)?;

        let mut model = NodeClassificationModel::new(&self.model, num_classes, &mut rng);
        let policy = NodeCachePolicy::new(disk.buffer_capacity, k);
        let pipeline = self
            .pipeline
            .enabled
            .then(|| Pipeline::new(self.pipeline.clone()));

        // Evaluation runs over the full graph with the fixed features.
        let eval_subgraph = InMemorySubgraph::from_edges(data.graph.edges());
        let eval_source = FixedFeatureSource::new(features.clone());
        let test_labels = Self::labels_for(data, &data.node_split.test);

        for epoch_idx in 0..self.train.epochs {
            let mut epoch = EpochReport {
                epoch: epoch_idx,
                ..Default::default()
            };
            store.reset_io_stats();
            let start = Instant::now();
            let plan = policy.plan(disk.num_partitions, &mut rng)?;
            // Every random draw inside the epoch derives from this seed, so
            // the sequential and pipelined executors are interchangeable
            // bit-for-bit.
            let epoch_seed: u64 = rng.gen();
            match &pipeline {
                Some(pipe) => self.run_epoch_pipelined(
                    pipe,
                    &plan,
                    &mut buffer,
                    data,
                    epoch_seed,
                    &mut model,
                    &mut epoch,
                )?,
                None => self.run_epoch_sequential(
                    &plan,
                    &mut buffer,
                    data,
                    epoch_seed,
                    &mut model,
                    &mut epoch,
                )?,
            }
            epoch.epoch_time = start.elapsed();
            let io = store.io_stats();
            epoch.io_bytes_read = io.bytes_read;
            epoch.io_bytes_written = io.bytes_written;
            epoch.io_time = self.io_model.stats_time(&io);
            epoch.metric = model.evaluate_accuracy(
                &eval_source,
                &eval_subgraph,
                &data.node_split.test,
                &test_labels,
                &mut rng,
            );
            Self::finalize(&mut epoch);
            report.epochs.push(epoch);
        }
        let _ = store.clear();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marius_graph::datasets::DatasetSpec;
    use std::time::Duration;

    fn tiny_dataset() -> ScaledDataset {
        ScaledDataset::generate(&DatasetSpec::ogbn_arxiv().scaled(0.008), 21)
    }

    fn quick_trainer() -> NodeClassificationTrainer {
        let mut model = ModelConfig::paper_node_classification(128, 16);
        model.num_layers = 2;
        model.fanouts = vec![8, 5];
        let mut train = TrainConfig::quick(2, 13);
        train.batch_size = 128;
        NodeClassificationTrainer::new(model, train)
    }

    #[test]
    fn in_memory_training_beats_random_guessing() {
        let data = tiny_dataset();
        let trainer = quick_trainer();
        let report = trainer.train_in_memory(&data);
        assert_eq!(report.epochs.len(), 2);
        let chance = 1.0 / data.spec.num_classes.unwrap() as f64;
        assert!(
            report.final_metric() > 2.0 * chance,
            "accuracy {} should beat chance {}",
            report.final_metric(),
            chance
        );
        assert!(report.epochs[0].epoch_time > Duration::ZERO);
    }

    #[test]
    fn disk_training_with_node_cache_runs_and_learns() {
        let data = tiny_dataset();
        let trainer = quick_trainer();
        let disk = DiskConfig::node_cache(8, 6);
        let report = trainer.train_disk(&data, &disk).unwrap();
        assert_eq!(report.epochs.len(), 2);
        // The caching policy loads the buffer once per epoch and performs no
        // swaps during it.
        assert!(report.epochs[0].partition_loads <= 6);
        let chance = 1.0 / data.spec.num_classes.unwrap() as f64;
        assert!(report.final_metric() > 1.5 * chance);
    }

    #[test]
    fn disk_training_rejects_non_cache_policy() {
        let data = tiny_dataset();
        let trainer = quick_trainer();
        let err = trainer
            .train_disk(&data, &DiskConfig::comet(8, 4))
            .unwrap_err();
        assert!(format!("{err}").contains("training-node caching policy"));
    }

    #[test]
    fn pipelined_disk_training_matches_sequential_losses() {
        let data = tiny_dataset();
        let disk = DiskConfig::node_cache(8, 6);
        let sequential = quick_trainer().train_disk(&data, &disk).unwrap();
        let pipelined = quick_trainer()
            .with_pipeline(marius_pipeline::PipelineConfig::with_workers(1))
            .train_disk(&data, &disk)
            .unwrap();
        for (a, b) in sequential.epochs.iter().zip(&pipelined.epochs) {
            assert_eq!(a.loss, b.loss, "epoch {} loss drifted", a.epoch);
            assert_eq!(a.metric, b.metric, "epoch {} metric drifted", a.epoch);
        }
    }
}
