//! A minimal JSON reader for checkpoint manifests.
//!
//! The workspace vendors a no-op `serde` shim (no network access to the real
//! crate), so manifests are written with `format!` and read back with this
//! hand-rolled recursive-descent parser. Numbers keep their raw token text so
//! `u64` values round-trip without passing through `f64`.

use marius_storage::{Result, StorageError};

fn bad(reason: impl Into<String>) -> StorageError {
    StorageError::checkpoint(reason)
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (insertion-ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (rejecting trailing garbage).
    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(bad(format!("trailing bytes at offset {}", p.pos)));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn field(&self, name: &str) -> Result<&Json> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| bad(format!("missing field {name:?}"))),
            _ => Err(bad(format!("expected an object looking up {name:?}"))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(bad(format!("expected a string, found {other:?}"))),
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(bad(format!("expected an array, found {other:?}"))),
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(bad(format!("expected a bool, found {other:?}"))),
        }
    }

    /// The value as an exact `u64` (numbers only, no float detour).
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|_| bad(format!("expected an unsigned integer, found {raw:?}"))),
            other => Err(bad(format!("expected a number, found {other:?}"))),
        }
    }

    /// The value as an `f64`. Finite floats written with Rust's shortest
    /// display formatting parse back to identical bits.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Num(raw) => raw
                .parse::<f64>()
                .map_err(|_| bad(format!("expected a number, found {raw:?}"))),
            other => Err(bad(format!("expected a number, found {other:?}"))),
        }
    }

    /// A `"0x…"` hex string as a `u64` — the encoding used for bit patterns
    /// (RNG words, f64 bits, checksums).
    pub fn as_hex_u64(&self) -> Result<u64> {
        let s = self.as_str()?;
        let digits = s
            .strip_prefix("0x")
            .ok_or_else(|| bad(format!("expected a 0x-prefixed hex string, found {s:?}")))?;
        u64::from_str_radix(digits, 16).map_err(|_| bad(format!("invalid hex string {s:?}")))
    }

    /// Shorthand: `field(name)?.as_str()`.
    pub fn str_field(&self, name: &str) -> Result<&str> {
        self.field(name)?.as_str()
    }

    /// Shorthand: `field(name)?.as_u64()`.
    pub fn u64_field(&self, name: &str) -> Result<u64> {
        self.field(name)?.as_u64()
    }

    /// Shorthand: `field(name)?.as_f64()`.
    pub fn f64_field(&self, name: &str) -> Result<f64> {
        self.field(name)?.as_f64()
    }

    /// Shorthand: `field(name)?.as_bool()`.
    pub fn bool_field(&self, name: &str) -> Result<bool> {
        self.field(name)?.as_bool()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Result<u8> {
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| bad("unexpected end of document"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? != b {
            return Err(bad(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(bad(format!(
                "unexpected byte {:?} at offset {}",
                other as char, self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(bad(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                _ => break,
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| bad("non-UTF8 number token"))?;
        if raw.is_empty() || raw.parse::<f64>().is_err() {
            return Err(bad(format!("invalid number {raw:?} at offset {start}")));
        }
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek()?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek()?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(bad("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| bad("non-UTF8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| bad(format!("invalid \\u escape {hex:?}")))?;
                            self.pos += 4;
                            // Surrogate pairs do not occur in our manifests
                            // (all strings are ASCII-escaped control chars at
                            // most); map unpaired surrogates to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(bad(format!("invalid escape \\{}", other as char)));
                        }
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 code point starting at pos - 1.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| bad("non-UTF8 string content"))?;
                    let c = s.chars().next().ok_or_else(|| bad("empty code point"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(bad(format!(
                        "expected ',' or ']' in array, found {:?}",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => {
                    return Err(bad(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other as char
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = Json::parse(
            r#"{"a": 1, "b": [true, false, null], "c": {"d": "x\n\"y\"", "e": -2.5e3}}"#,
        )
        .unwrap();
        assert_eq!(doc.u64_field("a").unwrap(), 1);
        let arr = doc.field("b").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[0].as_bool().unwrap());
        assert_eq!(arr[2], Json::Null);
        let c = doc.field("c").unwrap();
        assert_eq!(c.str_field("d").unwrap(), "x\n\"y\"");
        assert_eq!(c.f64_field("e").unwrap(), -2500.0);
    }

    #[test]
    fn u64_values_round_trip_exactly() {
        let doc = Json::parse(&format!("{{\"v\":{}}}", u64::MAX)).unwrap();
        assert_eq!(doc.u64_field("v").unwrap(), u64::MAX);
    }

    #[test]
    fn hex_strings_decode_bit_patterns() {
        let doc = Json::parse(r#"{"bits":"0x400be30c0fb23703"}"#).unwrap();
        assert_eq!(
            doc.field("bits").unwrap().as_hex_u64().unwrap(),
            0x400be30c0fb23703
        );
        assert!(Json::parse(r#"{"bits":"nope"}"#)
            .unwrap()
            .field("bits")
            .unwrap()
            .as_hex_u64()
            .is_err());
    }

    #[test]
    fn f64_display_round_trips_through_parse() {
        for v in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0] {
            let doc = Json::parse(&format!("{{\"v\":{v}}}")).unwrap();
            assert_eq!(doc.f64_field("v").unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn rejects_truncated_and_trailing_input() {
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn report_json_escapes_parse_back() {
        let escaped = crate::report::json_escape("a\"b\\c\nd\te\u{1}");
        let doc = Json::parse(&format!("{{\"s\":\"{escaped}\"}}")).unwrap();
        assert_eq!(doc.str_field("s").unwrap(), "a\"b\\c\nd\te\u{1}");
    }
}
